"""Ablation: graph compression (§4.2.3).

"Many nodes in the dataflow graph are simple ... We implemented an
optimization that identifies and deletes these." This ablation builds
the dataflow graph for an ACL-rich fat-tree with compression on and
off, and measures graph size and end-to-end query time.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import print_table, timed
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table, timed
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.fattree import fattree


@pytest.fixture(scope="module")
def prepared():
    snapshot = load_snapshot_from_texts(fattree(k=6, with_acls=True))
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    assert dataplane.converged
    return dataplane, compute_fibs(dataplane)


@pytest.mark.parametrize("compress", [True, False], ids=["compressed", "raw"])
def test_multipath_with_and_without_compression(benchmark, prepared, compress):
    dataplane, fibs = prepared

    def run():
        analyzer = NetworkAnalyzer(dataplane, fibs=fibs, compress=compress)
        sources = dict(list(analyzer.all_sources().items())[:10])
        return analyzer.multipath_consistency(sources)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_compression_preserves_answers(prepared):
    """Compression is purely an optimization: answers must not change."""
    dataplane, fibs = prepared
    compressed = NetworkAnalyzer(dataplane, fibs=fibs, compress=True)
    raw = NetworkAnalyzer(
        dataplane, fibs=fibs, compress=False, encoder=compressed.encoder
    )
    sources_c = dict(list(compressed.all_sources().items())[:6])
    for source, space in sources_c.items():
        answer_c = compressed.reachability({source: space})
        answer_r = raw.reachability({source: space})
        assert answer_c.success_set() == answer_r.success_set()
        assert answer_c.failure_set() == answer_r.failure_set()


def test_compression_shrinks_graph(prepared):
    dataplane, fibs = prepared
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs, compress=True)
    stats = analyzer.compression
    assert stats.nodes_removed > 0
    assert stats.nodes_after < stats.nodes_before


def main():
    snapshot = load_snapshot_from_texts(fattree(k=6, with_acls=True))
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    fibs = compute_fibs(dataplane)
    rows = []
    for compress in (False, True):
        def run():
            analyzer = NetworkAnalyzer(dataplane, fibs=fibs, compress=compress)
            sources = dict(list(analyzer.all_sources().items())[:10])
            analyzer.multipath_consistency(sources)
            return analyzer

        seconds, analyzer = timed(run)
        rows.append(
            [
                "on" if compress else "off",
                str(analyzer.graph.num_nodes()),
                str(analyzer.graph.num_edges()),
                str(analyzer.compression.nodes_removed if analyzer.compression else 0),
                f"{seconds:.2f}s",
            ]
        )
    print_table(
        "Ablation: graph compression (fat-tree k=6 with ACLs, "
        "10-source multipath query)",
        ["compression", "nodes", "edges", "removed", "build+query time"],
        rows,
    )


if __name__ == "__main__":
    main()
