"""Ablation: route-attribute interning (§4.1.3).

"Moving 13 properties of a BGP route into a single interned object
reduces the memory size of each route by 88 bytes, and there are
typically 10x-20x fewer combinations of those properties than routes.
This technique reduces memory consumption in typical networks by 50%."

We run a BGP-heavy WAN, report the interning-pool statistics (unique
attribute bundles vs. BGP routes in RIBs), and apply the paper's memory
model to estimate the saving.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import print_table
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table
from repro.config.loader import load_snapshot_from_texts
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.routing.route import (
    BgpRoute,
    estimate_route_memory,
    interning_stats,
    reset_interning,
)
from repro.synth.wan import wan


def _measure():
    reset_interning()
    snapshot = load_snapshot_from_texts(wan(num_core=6, num_edge=16, num_externals=3))
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    assert dataplane.converged
    bgp_routes = sum(
        1
        for state in dataplane.nodes.values()
        for route in state.main_rib.routes()
        if isinstance(route, BgpRoute)
    )
    candidates = sum(
        state.bgp_rib.candidate_count()
        for state in dataplane.nodes.values()
        if state.bgp_rib is not None
    )
    stats = interning_stats()
    reset_interning()
    return bgp_routes, candidates, stats


def test_interning_sharing_ratio(benchmark):
    bgp_routes, candidates, stats = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    unique = stats["bgp-attributes"]["unique"]
    assert unique > 0
    # The paper's observation: attribute combinations are far fewer than
    # routes. On the WAN the candidate routes share bundles heavily.
    assert candidates / unique > 2


def main():
    bgp_routes, candidates, stats = _measure()
    unique = stats["bgp-attributes"]["unique"]
    interned = estimate_route_memory(candidates, unique, interned=True)
    flat = estimate_route_memory(candidates, unique, interned=False)
    print_table(
        "Ablation: route-attribute interning (WAN, 6 core / 16 edge / 3 providers)",
        ["metric", "value"],
        [
            ["BGP routes in main RIBs", str(bgp_routes)],
            ["BGP candidate routes held", str(candidates)],
            ["unique attribute bundles", str(unique)],
            ["sharing ratio", f"{candidates / max(unique, 1):.1f}x"],
            ["attribute-bundle intern requests",
             str(stats["bgp-attributes"]["requests"])],
            ["unique AS paths", str(stats["as-paths"]["unique"])],
            ["unique community sets", str(stats["community-sets"]["unique"])],
            ["estimated route memory (interned)", f"{interned:,} bytes"],
            ["estimated route memory (flat)", f"{flat:,} bytes"],
            ["estimated saving", f"{100 * (1 - interned / flat):.0f}%"],
        ],
    )


if __name__ == "__main__":
    main()
