"""Ablation: BDD variable order (§4.2.2).

"A key choice that we need to make is the BDD variable order, which
dramatically affects the size of the resulting BDD. ... we order header
fields based on how frequently they are constrained."

We encode a realistic batch of ACLs under three orderings — the paper's
heuristic, the exact reverse, and a pessimized order with the most-
constrained fields last — and compare total BDD nodes allocated and
encoding time.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import pytest

try:
    from benchmarks.benchlib import print_table
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table
from repro.config.loader import parse_config_text
from repro.dataplane.acl import acl_permit_space
from repro.hdr import fields as f
from repro.hdr.fields import HEADER_FIELDS, HeaderLayout
from repro.hdr.headerspace import PacketEncoder

_ORDERS = {
    "paper (most-constrained first)": None,
    "reversed": tuple(reversed(HEADER_FIELDS)),
    "ports-and-ips last": (
        f.TCP_FLAGS, f.PACKET_LENGTH, f.DSCP, f.ECN, f.ICMP_CODE, f.ICMP_TYPE,
        f.IP_PROTOCOL, f.SRC_PORT, f.DST_PORT, f.SRC_IP, f.DST_IP,
    ),
}


def _acl_workload() -> List:
    """A batch of ACLs with realistic match structure."""
    lines = []
    for i in range(40):
        lines.append(
            f" permit tcp 10.{i}.0.0 0.0.255.255 any eq {80 + i}"
        )
        lines.append(
            f" deny udp any 172.16.{i}.0 0.0.0.255 range {1000 + i} {2000 + i}"
        )
        lines.append(f" permit tcp any host 192.0.2.{i} established")
    text = "hostname bench\nip access-list extended BIG\n" + "\n".join(lines) + "\n"
    device, _warnings = parse_config_text(text)
    return [device.acls["BIG"]]


def _encode_all(order) -> Tuple[int, float]:
    layout = HeaderLayout(field_order=order)
    encoder = PacketEncoder(layout=layout)
    started = time.perf_counter()
    for acl in _acl_workload():
        acl_permit_space(acl, encoder)
    elapsed = time.perf_counter() - started
    return encoder.engine.num_nodes(), elapsed


@pytest.mark.parametrize("order_name", list(_ORDERS))
def test_encoding_under_order(benchmark, order_name):
    nodes, _ = benchmark.pedantic(
        _encode_all, args=(_ORDERS[order_name],), rounds=3, iterations=1
    )
    assert nodes > 0


def test_paper_order_is_not_worst():
    sizes = {name: _encode_all(order)[0] for name, order in _ORDERS.items()}
    paper = sizes["paper (most-constrained first)"]
    assert paper <= max(sizes.values())


def main():
    rows = []
    for name, order in _ORDERS.items():
        nodes, seconds = _encode_all(order)
        rows.append([name, str(nodes), f"{seconds * 1000:.1f}ms"])
    print_table(
        "Ablation: BDD variable order (120-line ACL workload)",
        ["order", "BDD nodes allocated", "encode time"],
        rows,
    )


if __name__ == "__main__":
    main()
