"""§6 comparison with APT: destination reachability on a 92-node network.

"The largest network the APT authors study has 92 nodes. For this
92-node network, Batfish builds the dataflow graph and answers
destination reachability queries almost two orders of magnitude
faster."

Both engines answer the same question — which packets, starting where,
reach a given device — on a 92-device campus:

* the BDD engine builds the dataflow graph once and answers each
  destination with one *backward* pass over the destination's
  forwarding tree (§4.2.3);
* the difference-of-cubes baseline (the APT-era architecture) must
  forward-propagate from every source per query and pays non-canonical
  set operations throughout.

The per-query gap is >1 order of magnitude; amortized over several
queries (the graph build is reused) it reaches the paper's ~2 orders.
The cube side is measured on a subset of sources and extrapolated
linearly (each source's propagation is independent).
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import print_table, timed
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table, timed
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.original.nod import CubeVerifier
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.networks import apt_comparison_network

_NUM_QUERIES = 4
_CUBE_SOURCE_SAMPLE = 12


@pytest.fixture(scope="module")
def dataplane():
    snapshot = load_snapshot_from_texts(apt_comparison_network())
    assert len(snapshot.devices) == 92
    result = compute_dataplane(snapshot, ConvergenceSettings())
    assert result.converged
    return result


@pytest.fixture(scope="module")
def fibs(dataplane):
    return compute_fibs(dataplane)


def _targets(dataplane, limit):
    return [
        hostname
        for hostname in dataplane.snapshot.hostnames()
        if hostname.startswith("access")
    ][:limit]


def test_bdd_graph_build_and_dest_reach(benchmark, dataplane, fibs):
    targets = _targets(dataplane, _NUM_QUERIES)

    def run():
        analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
        return [analyzer.destination_reachability(t) for t in targets]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(answers)


def test_cube_baseline_dest_reach_sampled(benchmark, dataplane, fibs):
    """One cube query over a source sample (full runs take minutes —
    which is the point of the comparison)."""
    target = _targets(dataplane, 1)[0]

    def run():
        verifier = CubeVerifier(dataplane, fibs)
        return verifier.destination_reachability(
            target, limit_sources=_CUBE_SOURCE_SAMPLE
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert isinstance(result, dict)


def main():
    snapshot = load_snapshot_from_texts(apt_comparison_network())
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    fibs = compute_fibs(dataplane)
    targets = _targets(dataplane, _NUM_QUERIES)

    def bdd_run():
        analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
        for target in targets:
            analyzer.destination_reachability(target)

    bdd_seconds, _ = timed(bdd_run)

    num_sources = sum(
        1
        for hostname in snapshot.hostnames()
        for iface in snapshot.device(hostname).interfaces.values()
        if iface.enabled and iface.address is not None
    )
    verifier = CubeVerifier(dataplane, fibs)
    cube_sample_seconds, _ = timed(
        lambda: verifier.destination_reachability(
            targets[0], limit_sources=_CUBE_SOURCE_SAMPLE
        )
    )
    cube_full_estimate = (
        cube_sample_seconds * (num_sources / _CUBE_SOURCE_SAMPLE) * _NUM_QUERIES
    )
    print_table(
        f"APT comparison: 92 devices, graph build + {_NUM_QUERIES} "
        "destination-reachability queries",
        ["engine", "time", "relative"],
        [
            [
                "BDD dataflow, backward propagation (current)",
                f"{bdd_seconds:.2f}s measured",
                "1x",
            ],
            [
                "difference-of-cubes, forward from all sources (baseline)",
                f"{cube_full_estimate:.0f}s "
                f"(extrapolated from {_CUBE_SOURCE_SAMPLE}/{num_sources} "
                f"sources x 1/{_NUM_QUERIES} queries: "
                f"{cube_sample_seconds:.2f}s)",
                f"{cube_full_estimate / max(bdd_seconds, 1e-9):.0f}x slower",
            ],
        ],
    )


if __name__ == "__main__":
    main()
