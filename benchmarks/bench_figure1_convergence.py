"""Figure 1 / §4.1.2: deterministic convergence techniques.

Runs the two pathological routing patterns of Figure 1 and a BGP-heavy
mesh under four scheduling regimes:

* ``lockstep`` (uncontrolled parallelism) with and without logical
  clocks — expect the Figure 1b border-router pattern to oscillate;
* ``colored`` (protocol-specific graph coloring) with and without
  clocks — expect deterministic convergence, with clocks reducing the
  number of BGP routes processed (re-advertisement churn) on the
  equally-good-routes pattern of Figure 1a.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import print_table
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table
from repro.config.loader import load_snapshot_from_texts
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.isp import isp
from repro.synth.special import figure1a, figure1b

_SCENARIOS = {
    "fig1a-route-reflectors": figure1a,
    "fig1b-border-routers": figure1b,
    "isp-mesh": lambda: isp(num_core=4, num_customers=6, num_peers=2),
}

_REGIMES = [
    ("lockstep", False),
    ("lockstep", True),
    ("colored", False),
    ("colored", True),
]


def _run(scenario: str, schedule: str, clocks: bool):
    snapshot = load_snapshot_from_texts(_SCENARIOS[scenario]())
    settings = ConvergenceSettings(
        schedule=schedule, use_logical_clocks=clocks, max_iterations=60
    )
    return compute_dataplane(snapshot, settings)


@pytest.mark.parametrize("schedule,clocks", _REGIMES)
def test_figure1a_converges_everywhere(benchmark, schedule, clocks):
    """The RR pattern converges under every regime; the cost differs."""
    result = benchmark.pedantic(
        _run, args=("fig1a-route-reflectors", schedule, clocks),
        rounds=1, iterations=1,
    )
    assert result.converged


def test_figure1b_lockstep_oscillates(benchmark):
    result = benchmark.pedantic(
        _run, args=("fig1b-border-routers", "lockstep", True),
        rounds=1, iterations=1,
    )
    assert not result.converged
    assert result.oscillating_prefixes


def test_figure1b_coloring_converges(benchmark):
    result = benchmark.pedantic(
        _run, args=("fig1b-border-routers", "colored", True),
        rounds=1, iterations=1,
    )
    assert result.converged


def test_clocks_reduce_churn_on_equally_good_routes():
    """Figure 1a: without arrival-time tie-breaking, equally good
    advertisements displace each other (newest wins), causing extra
    best-route churn that the clocks remove."""
    without = _run("fig1a-route-reflectors", "lockstep", False)
    with_clocks = _run("fig1a-route-reflectors", "lockstep", True)
    assert with_clocks.converged and without.converged
    assert (
        with_clocks.stats.best_route_changes
        < without.stats.best_route_changes
    )


def test_colored_schedule_is_deterministic():
    outcomes = set()
    for _ in range(3):
        result = _run("isp-mesh", "colored", True)
        routes = tuple(
            route.describe()
            for node in sorted(result.nodes)
            for route in result.main_rib(node).routes()
        )
        outcomes.add(routes)
    assert len(outcomes) == 1


def main():
    rows = []
    for scenario in _SCENARIOS:
        for schedule, clocks in _REGIMES:
            result = _run(scenario, schedule, clocks)
            rows.append(
                [
                    scenario,
                    schedule,
                    "on" if clocks else "off",
                    "yes" if result.converged else "NO (oscillates)",
                    str(result.stats.iterations),
                    str(result.stats.bgp_routes_processed),
                    str(result.stats.best_route_changes),
                ]
            )
    print_table(
        "Figure 1 / §4.1.2: convergence under scheduling regimes",
        ["scenario", "schedule", "clocks", "converged", "iterations",
         "routes processed", "best-route churn"],
        rows,
    )


if __name__ == "__main__":
    main()
