"""Figure 3: current vs. original Batfish on NET1.

The paper: "Data plane verification sped up by 12x because we replaced
NoD and Z3 with a BDD-based engine. ... Data plane generation sped up
by 1500x because we replaced Datalog" with imperative code.

We reproduce both comparisons on NET1 (the only network whose feature
set the original architecture supports):

* DP generation: the Datalog control-plane model
  (:mod:`repro.original.cp_model`) vs. the imperative fixed-point
  engine — expect orders of magnitude.
* Verification: multipath consistency on the difference-of-cubes
  backend (:mod:`repro.original.nod`) vs. the BDD engine — expect
  roughly one order of magnitude.

Absolute ratios depend on scale (the Datalog gap *grows* with network
size, which is exactly why it was a production roadblock).
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import print_table, timed
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import print_table, timed
from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.original.cp_model import compute_dataplane_datalog
from repro.original.nod import CubeVerifier
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.special import net1


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot_from_texts(net1(num_spurs=4))


@pytest.fixture(scope="module")
def dataplane(snapshot):
    return compute_dataplane(snapshot, ConvergenceSettings())


def test_dp_generation_new(benchmark, snapshot):
    result = benchmark.pedantic(
        compute_dataplane, args=(snapshot, ConvergenceSettings()),
        rounds=3, iterations=1,
    )
    assert result.converged


def test_dp_generation_original_datalog(benchmark, snapshot):
    result = benchmark.pedantic(
        compute_dataplane_datalog, args=(snapshot,), rounds=1, iterations=1
    )
    assert result.forwards  # the Datalog model derived forwarding state


def test_verification_new_bdd(benchmark, dataplane):
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    violations = benchmark.pedantic(
        analyzer.multipath_consistency, rounds=3, iterations=1
    )
    assert violations  # NET1 has a deliberate inconsistency

def test_verification_original_cubes(benchmark, dataplane):
    fibs = compute_fibs(dataplane)
    verifier = CubeVerifier(dataplane, fibs)
    violations = benchmark.pedantic(
        verifier.multipath_consistency, rounds=1, iterations=1
    )
    assert violations


def test_engines_agree_on_violations(dataplane):
    """Both verification engines must flag the same inconsistency."""
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    bdd_violations = analyzer.multipath_consistency()
    cube_violations = CubeVerifier(dataplane, fibs).multipath_consistency()
    bdd_sources = {(v.source[1], v.source[2]) for v in bdd_violations}
    cube_sources = {v.source for v in cube_violations}
    assert bdd_sources & cube_sources


def main():
    snapshot = load_snapshot_from_texts(net1(num_spurs=4))
    new_dp_seconds, dataplane = timed(
        lambda: compute_dataplane(snapshot, ConvergenceSettings())
    )
    old_dp_seconds, datalog_result = timed(
        lambda: compute_dataplane_datalog(snapshot)
    )
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    new_verify_seconds, bdd_violations = timed(analyzer.multipath_consistency)
    verifier = CubeVerifier(dataplane, fibs)
    old_verify_seconds, cube_violations = timed(verifier.multipath_consistency)
    print_table(
        "Figure 3: original vs current Batfish (NET1)",
        ["phase", "original", "current", "speedup"],
        [
            [
                "data plane generation",
                f"{old_dp_seconds:.3f}s (datalog, {datalog_result.total_facts} facts retained)",
                f"{new_dp_seconds:.3f}s (imperative)",
                f"{old_dp_seconds / max(new_dp_seconds, 1e-9):.0f}x",
            ],
            [
                "verification (multipath)",
                f"{old_verify_seconds:.3f}s (cubes, {len(cube_violations)} violations)",
                f"{new_verify_seconds:.3f}s (BDD, {len(bdd_violations)} violations)",
                f"{old_verify_seconds / max(new_verify_seconds, 1e-9):.0f}x",
            ],
        ],
    )


if __name__ == "__main__":
    main()
