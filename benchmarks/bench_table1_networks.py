"""Table 1: the networks we study.

Regenerates the inventory table: network name, type, device count,
configuration lines, total main-RIB routes, vendors, and protocols —
the same columns the paper reports for its 11 real networks (ours are
the synthetic equivalents; see DESIGN.md for the substitution).
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import cached_pipeline, pmap_rows, print_table
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import cached_pipeline, pmap_rows, print_table
from repro.synth.networks import NETWORKS

_FAST_NETWORKS = ["NET1", "NET2", "NET5", "NET7", "NET8"]


@pytest.mark.parametrize("name", [spec.name for spec in NETWORKS])
def test_network_builds_and_converges(benchmark, name):
    """Benchmark snapshot parsing for every Table 1 network, asserting
    the control plane converges."""
    pipeline = cached_pipeline(name)  # warm build outside the timer
    from repro.config.loader import load_snapshot_from_texts

    result = benchmark.pedantic(
        load_snapshot_from_texts, args=(pipeline.configs,), rounds=3, iterations=1
    )
    assert result.hostnames() == pipeline.snapshot.hostnames()
    assert pipeline.dataplane.converged


def _table1_row(name: str):
    spec = next(s for s in NETWORKS if s.name == name)
    pipeline = cached_pipeline(name)
    return [
        spec.name,
        spec.network_type,
        str(pipeline.num_devices),
        str(pipeline.config_lines),
        str(pipeline.total_routes),
        "+".join(spec.vendors),
        "+".join(spec.protocols),
    ]


def table1_rows():
    # One worker process per network; rows come back in registry order.
    return pmap_rows(_table1_row, [spec.name for spec in NETWORKS])


def main():
    print_table(
        "Table 1: networks studied (synthetic equivalents, scale=1)",
        ["network", "type", "nodes", "LoC", "routes", "vendors", "protocols"],
        table1_rows(),
    )


if __name__ == "__main__":
    main()
