"""Table 2: performance of current Batfish.

For every Table 1 network, times the paper's four phases: configuration
parsing, data-plane generation ("DP gen"), destination reachability
("Dest reach" — backward propagation to one delivery location), and
multipath consistency (the all-forwarding-rules verification query).
The paper's headline — analysis completes in minutes even on the
largest networks, dominated by DP generation — should hold in shape.
"""

from __future__ import annotations

import pytest

try:
    from benchmarks.benchlib import cached_pipeline, print_table, timed
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.benchlib import cached_pipeline, print_table, timed
from repro.config.loader import load_snapshot_from_texts
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.networks import NETWORKS

#: Subset benchmarked under pytest-benchmark (full table via main()).
_BENCH_NETWORKS = ["NET1", "NET2", "NET5", "NET6", "NET7"]


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_parse(benchmark, name):
    pipeline = cached_pipeline(name)
    benchmark.pedantic(
        load_snapshot_from_texts, args=(pipeline.configs,), rounds=3, iterations=1
    )


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_dataplane_generation(benchmark, name):
    pipeline = cached_pipeline(name)
    result = benchmark.pedantic(
        compute_dataplane,
        args=(pipeline.snapshot, ConvergenceSettings()),
        rounds=3,
        iterations=1,
    )
    assert result.converged


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_destination_reachability(benchmark, name):
    pipeline = cached_pipeline(name)
    analyzer = pipeline.analyzer
    target = _first_delivery_location(analyzer)
    result = benchmark.pedantic(
        analyzer.destination_reachability, args=target, rounds=3, iterations=1
    )
    assert isinstance(result, dict)


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_multipath_consistency(benchmark, name):
    pipeline = cached_pipeline(name)
    analyzer = pipeline.analyzer
    benchmark.pedantic(analyzer.multipath_consistency, rounds=1, iterations=1)


def _first_delivery_location(analyzer):
    for node in analyzer.graph.sink_nodes():
        if node[0] == "sink":
            return (node[1], node[2])
    # No host subnets: fall back to accepting at the first device.
    hostname = analyzer.dataplane.snapshot.hostnames()[0]
    return (hostname, None)


def table2_rows():
    rows = []
    for spec in NETWORKS:
        pipeline = cached_pipeline(spec.name)
        analyzer = pipeline.analyzer
        dest_seconds, _ = timed(
            lambda: analyzer.destination_reachability(
                *_first_delivery_location(analyzer)
            )
        )
        multipath_seconds, violations = timed(analyzer.multipath_consistency)
        rows.append(
            [
                spec.name,
                str(pipeline.num_devices),
                f"{pipeline.parse_seconds:.2f}s",
                f"{pipeline.dataplane_seconds:.2f}s",
                f"{pipeline.graph_seconds:.2f}s",
                f"{dest_seconds:.3f}s",
                f"{multipath_seconds:.2f}s",
                str(len(violations)),
            ]
        )
    return rows


def main():
    print_table(
        "Table 2: performance of the current pipeline",
        [
            "network", "nodes", "parse", "DP gen", "graph",
            "dest reach", "multipath", "violations",
        ],
        table2_rows(),
    )


if __name__ == "__main__":
    main()
