"""Table 2: performance of current Batfish.

For every Table 1 network, times the paper's four phases: configuration
parsing, data-plane generation ("DP gen"), destination reachability
("Dest reach" — backward propagation to one delivery location), and
multipath consistency (the all-forwarding-rules verification query).
The paper's headline — analysis completes in minutes even on the
largest networks, dominated by DP generation — should hold in shape.

Beyond the printed table, running this module as a script measures each
network in its own worker process (``REPRO_JOBS``-wide fan-out via
``repro.parallel.pmap``), adds cold- vs. warm-cache timings through the
content-addressed snapshot cache, and writes the machine-readable
``BENCH_table2.json`` artifact (wall-clock per phase, peak RSS per
worker, route-object memory saved by ``__slots__``). ``--smoke`` limits
the sweep to one small network for CI.
"""

from __future__ import annotations

import gc
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional

import pytest

try:
    from benchmarks import benchlib
except ImportError:  # running as `python benchmarks/bench_*.py`
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks import benchlib
from benchmarks.benchlib import cached_pipeline, print_table, timed
from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.core.session import Session
from repro.delta.edits import irrelevant_edit, relevant_edit
from repro.lint import lint_snapshot
from repro.lint.dataflow import analyze as dataflow_analyze
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.synth.networks import NETWORKS

#: Subset benchmarked under pytest-benchmark (full table via main()).
_BENCH_NETWORKS = ["NET1", "NET2", "NET5", "NET6", "NET7"]

#: The single network used by ``--smoke`` (CI: one small cold+warm run).
_SMOKE_NETWORK = "NET1"

#: Networks that also measure the resilience-sweep phase (pruned sweep
#: vs brute-force enumeration), with per-network universes. NET1 (the
#: smoke network) sweeps its full link+interface space — small enough
#: that brute force is tractable and rich enough that all three pruning
#: classes fire; NET3/NET11 are the paper-scale pair, capped like the
#: CI validator so the brute side stays bounded.
_SWEEP_K = 2
_SWEEP_SPECS = {
    _SMOKE_NETWORK: {"kinds": ("link", "interface"), "max_elements": None},
    "NET3": {"kinds": ("link",), "max_elements": 8},
    "NET11": {"kinds": ("link",), "max_elements": 8},
}


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_parse(benchmark, name):
    pipeline = cached_pipeline(name)
    benchmark.pedantic(
        load_snapshot_from_texts, args=(pipeline.configs,), rounds=3, iterations=1
    )


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_dataplane_generation(benchmark, name):
    pipeline = cached_pipeline(name)
    result = benchmark.pedantic(
        compute_dataplane,
        args=(pipeline.snapshot, ConvergenceSettings()),
        rounds=3,
        iterations=1,
    )
    assert result.converged


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_destination_reachability(benchmark, name):
    pipeline = cached_pipeline(name)
    analyzer = pipeline.analyzer
    target = _first_delivery_location(analyzer)
    result = benchmark.pedantic(
        analyzer.destination_reachability, args=target, rounds=3, iterations=1
    )
    assert isinstance(result, dict)


@pytest.mark.parametrize("name", _BENCH_NETWORKS)
def test_multipath_consistency(benchmark, name):
    pipeline = cached_pipeline(name)
    analyzer = pipeline.analyzer
    benchmark.pedantic(analyzer.multipath_consistency, rounds=1, iterations=1)


def _first_delivery_location(analyzer):
    for node in analyzer.graph.sink_nodes():
        if node[0] == "sink":
            return (node[1], node[2])
    # No host subnets: fall back to accepting at the first device.
    hostname = analyzer.dataplane.snapshot.hostnames()[0]
    return (hostname, None)


def measure_network(name: str) -> Dict[str, object]:
    """All Table 2 measurements for one network, in one process.

    Phase timings come from a direct (uncached) pipeline run; the
    cold/warm pair then exercises the content-addressed cache over the
    stages it covers (parse + data-plane generation) against a fresh
    cache directory, so "cold" is genuinely cold and "warm" is a pure
    disk load of the same snapshot.
    """
    spec = next(s for s in NETWORKS if s.name == name)
    pipeline = benchlib.run_pipeline(spec)
    analyzer = pipeline.analyzer
    dest_seconds, _ = timed(
        lambda: analyzer.destination_reachability(*_first_delivery_location(analyzer))
    )
    multipath_seconds, violations = timed(analyzer.multipath_consistency)
    lint_seconds, lint_report = timed(
        lambda: lint_snapshot(pipeline.snapshot)
    )
    # The dataflow fixpoint in isolation (the lint phase above runs it
    # too, as one rule-scope among many): wall-clock of a cold
    # propagation-graph fixpoint plus its worklist iteration count — a
    # deterministic algorithmic signal benchdiff gates on directly.
    dataflow_seconds, dataflow_analysis = timed(
        lambda: dataflow_analyze(pipeline.snapshot)
    )

    cache_dir = tempfile.mkdtemp(prefix=f"repro-bench-{name}-")
    try:
        started = time.perf_counter()
        cold_session = Session.from_texts(pipeline.configs, cache=cache_dir)
        cold_session.dataplane
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm_session = Session.from_texts(pipeline.configs, cache=cache_dir)
        warm_session.dataplane
        warm_seconds = time.perf_counter() - started
        warm_hits = (warm_session.cache_stats or {}).get("hits", 0)

        # Incremental phase: one-line edit, delta engine vs cold full
        # recompute of the edited snapshot (both timed through to FIBs).
        # The inert edit (NTP) is the paper's review workload — most
        # config review diffs can't move a route; the routing edit
        # (static route) forces actual re-simulation of its protocol
        # component.
        cold_session.fibs  # base FIBs outside the timed region
        target = sorted(pipeline.configs)[0]
        delta_results = {}
        for label, edit in (
            ("inert", irrelevant_edit), ("routing", relevant_edit)
        ):
            edited = edit(pipeline.configs[target])
            started = time.perf_counter()
            full_session = Session.from_texts(
                {**pipeline.configs, target: edited}
            )
            full_session.fibs
            full_seconds = time.perf_counter() - started
            started = time.perf_counter()
            delta_session = cold_session.delta({target: edited})
            delta_session.fibs
            delta_seconds = time.perf_counter() - started
            delta_results[label] = {
                "full_seconds": round(full_seconds, 4),
                "delta_seconds": round(delta_seconds, 4),
                "speedup": round(full_seconds / max(delta_seconds, 1e-9), 2),
                "dirty_devices": len(delta_session.delta_info.dirty_devices),
                "reused_devices": delta_session.delta_info.reused_devices,
                "fallback": delta_session.delta_info.fallback,
            }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Resilience-sweep phase: the pruned sweep (equivalence classes +
    # delta warm-start) against brute-force enumeration of the same
    # capped scenario universe. Runs serially here (this function is
    # already inside a pmap worker), so scenarios/sec is per-core.
    sweep_results = None
    if name in _SWEEP_SPECS:
        from repro.sweep.validate import validate_network

        sweep_spec = _SWEEP_SPECS[name]
        validation, result = validate_network(
            name,
            pipeline.configs,
            k=_SWEEP_K,
            kinds=sweep_spec["kinds"],
            max_elements=sweep_spec["max_elements"],
        )
        sweep_results = {
            "k": _SWEEP_K,
            "kinds": list(sweep_spec["kinds"]),
            "max_elements": sweep_spec["max_elements"],
            "scenarios": result.stats.scenarios,
            "evaluated": result.stats.evaluated,
            "pruned_fraction": round(result.stats.pruned_fraction, 4),
            "scenarios_per_second": round(
                result.stats.scenarios / max(validation.sweep_seconds, 1e-9),
                3,
            ),
            "sweep_seconds": round(validation.sweep_seconds, 4),
            "brute_seconds": round(validation.brute_seconds, 4),
            "speedup": round(validation.speedup, 2),
            "verdicts_match": validation.ok,
            "minimal_failing_sets": len(result.minimal_failing_sets),
        }

    return {
        "network": name,
        "devices": pipeline.num_devices,
        "config_lines": pipeline.config_lines,
        "routes": pipeline.total_routes,
        "violations": len(violations),
        "seconds": {
            "parse": round(pipeline.parse_seconds, 4),
            "dataplane": round(pipeline.dataplane_seconds, 4),
            "graph": round(pipeline.graph_seconds, 4),
            "dest_reach": round(dest_seconds, 4),
            "multipath": round(multipath_seconds, 4),
            "lint": round(lint_seconds, 4),
            "lint_dataflow": round(dataflow_seconds, 4),
            "cache_cold": round(cold_seconds, 4),
            "cache_warm": round(warm_seconds, 4),
            "delta": delta_results["inert"]["delta_seconds"],
            "delta_full": delta_results["inert"]["full_seconds"],
        },
        "delta": delta_results,
        "sweep": sweep_results,
        "lint_dataflow": {
            "iterations": dataflow_analysis.iterations,
            "nodes": len(dataflow_analysis.graph.nodes),
            "edges": len(dataflow_analysis.graph.edges),
        },
        "lint_findings": len(lint_report.active()),
        "cache_warm_hits": warm_hits,
        "peak_rss_kb": benchlib.peak_rss_kb(),
        "route_memory": benchlib.route_memory_stats(pipeline.dataplane),
    }


def collect_measurements(
    names: List[str], jobs: Optional[int] = None
) -> List[Dict[str, object]]:
    """Measure the named networks, one worker process per network."""
    return benchlib.pmap_rows(measure_network, names, jobs=jobs)


def measure_obs_overhead(
    name: str = _SMOKE_NETWORK, repeats: int = 3
) -> Dict[str, object]:
    """Cost of the always-on flight recorder with obs otherwise off.

    Runs the same uncached pipeline with the ring recording (the
    production default) and suppressed (the escape hatch); the
    acceptance budget for the difference is < 2%. Measured with
    tracing/metrics disabled so the number isolates exactly the
    component that cannot be turned off.

    The true difference is a handful of deque appends per request, so
    the estimator has to beat machine noise, not the workload:

    * GC runs between samples, disabled inside them (GC pauses aliased
      with naive on/off alternation and produced ±8% phantom deltas);
    * samples interleave in ABBA blocks so slow drift (frequency
      scaling, neighbors on shared CI runners) cancels pairwise;
    * each side takes a 20%-trimmed mean, and the whole measurement
      repeats ``repeats`` times with the median pass reported.
    """
    spec = next(s for s in NETWORKS if s.name == name)
    recorder = obs.flight.recorder()

    def run_once() -> float:
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        benchlib.run_pipeline(spec)
        # The pipeline itself emits no flight events; mirror the volume
        # a service job produces (submit/start/finish plus phase marks)
        # so the ring's append path is actually on the measured path.
        for i in range(8):
            obs.flight.record("bench", "tick", i=i)
        elapsed = time.perf_counter() - started
        gc.enable()
        return elapsed

    def trimmed_mean(samples: List[float]) -> float:
        samples = sorted(samples)
        trim = len(samples) // 5
        kept = samples[trim : len(samples) - trim] or samples
        return sum(kept) / len(kept)

    run_once()  # warm caches (imports, interning pools)
    passes = []
    try:
        for _ in range(repeats):
            on_times: List[float] = []
            off_times: List[float] = []
            for _block in range(20):
                for enabled in (True, False, False, True):
                    recorder.enabled = enabled
                    (on_times if enabled else off_times).append(run_once())
            flight_on = trimmed_mean(on_times)
            flight_off = trimmed_mean(off_times)
            overhead = (
                (flight_on - flight_off) / flight_off if flight_off > 0 else 0.0
            )
            passes.append((overhead, flight_on, flight_off))
    finally:
        recorder.enabled = True
    passes.sort()
    overhead, flight_on, flight_off = passes[len(passes) // 2]
    return {
        "network": name,
        "repeats": repeats,
        "flight_on_seconds": round(flight_on, 4),
        "flight_off_seconds": round(flight_off, 4),
        "overhead_pct": round(overhead * 100, 2),
    }


def collect_phase_percentiles(
    name: str = _SMOKE_NETWORK, repeats: int = 3
) -> None:
    """Populate the labeled ``phase.seconds`` histograms (parse /
    dataplane / bdd / delta / lint) by running the session pipeline with
    metrics-only collection on, so :func:`benchlib.write_bench_json`
    lands p50/p95/p99 in the artifact. Runs after the timed
    measurements — flipping metrics on must not contaminate them."""
    spec = next(s for s in NETWORKS if s.name == name)
    configs = spec.generate(1)
    obs.enable_metrics()
    target = sorted(configs)[0]
    for _ in range(repeats):
        session = Session.from_texts(configs)
        session.analyzer  # parse -> dataplane -> bdd phases
        session.delta({target: irrelevant_edit(configs[target])}).fibs
        lint_snapshot(session.snapshot)


def table2_rows(measurements: List[Dict[str, object]]) -> List[List[str]]:
    rows = []
    for m in measurements:
        seconds = m["seconds"]
        rows.append(
            [
                m["network"],
                str(m["devices"]),
                f"{seconds['parse']:.2f}s",
                f"{seconds['dataplane']:.2f}s",
                f"{seconds['graph']:.2f}s",
                f"{seconds['dest_reach']:.3f}s",
                f"{seconds['multipath']:.2f}s",
                str(m["violations"]),
                f"{seconds['cache_cold']:.2f}s",
                f"{seconds['cache_warm']:.2f}s",
                f"{seconds['delta']:.2f}s",
                f"{m['peak_rss_kb'] / 1024:.0f}MB",
            ]
        )
    return rows


def main(argv: Optional[List[str]] = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    names = [_SMOKE_NETWORK] if smoke else [spec.name for spec in NETWORKS]
    measurements = collect_measurements(names)
    obs_overhead = measure_obs_overhead()
    collect_phase_percentiles()
    print_table(
        "Table 2: performance of the current pipeline",
        [
            "network", "nodes", "parse", "DP gen", "graph", "dest reach",
            "multipath", "violations", "cold", "warm", "delta", "peak RSS",
        ],
        table2_rows(measurements),
    )
    path = benchlib.write_bench_json(
        "table2",
        {
            "smoke": smoke,
            "networks": measurements,
            "obs_overhead": obs_overhead,
        },
    )
    print(f"wrote {path}")
    print(
        f"obs-off overhead (flight recorder, {obs_overhead['network']}): "
        f"{obs_overhead['flight_off_seconds']:.3f}s suppressed -> "
        f"{obs_overhead['flight_on_seconds']:.3f}s recording "
        f"({obs_overhead['overhead_pct']:+.2f}%)"
    )
    slowest = max(measurements, key=lambda m: m["seconds"]["cache_cold"])
    ratio = slowest["seconds"]["cache_cold"] / max(
        slowest["seconds"]["cache_warm"], 1e-9
    )
    print(
        f"cache speedup ({slowest['network']}): cold "
        f"{slowest['seconds']['cache_cold']:.2f}s -> warm "
        f"{slowest['seconds']['cache_warm']:.2f}s ({ratio:.1f}x)"
    )
    largest = max(measurements, key=lambda m: m["devices"])
    for label in ("inert", "routing"):
        d = largest["delta"][label]
        print(
            f"delta speedup ({largest['network']}, {label} 1-line edit): "
            f"full {d['full_seconds']:.2f}s -> delta "
            f"{d['delta_seconds']:.2f}s ({d['speedup']:.1f}x, "
            f"{d['dirty_devices']} dirty / {d['reused_devices']} reused)"
        )
    dataflow = largest["lint_dataflow"]
    print(
        f"dataflow fixpoint ({largest['network']}): "
        f"{dataflow['nodes']} nodes / {dataflow['edges']} edges, "
        f"{dataflow['iterations']} iterations in "
        f"{largest['seconds']['lint_dataflow']:.2f}s"
    )
    for m in measurements:
        sweep = m.get("sweep")
        if not sweep:
            continue
        print(
            f"sweep ({m['network']}, k={sweep['k']}, "
            f"{sweep['scenarios']} scenarios): brute "
            f"{sweep['brute_seconds']:.2f}s -> pruned "
            f"{sweep['sweep_seconds']:.2f}s ({sweep['speedup']:.1f}x, "
            f"{sweep['pruned_fraction']:.0%} pruned, "
            f"{sweep['scenarios_per_second']:.1f}/s, "
            f"verdicts match: {sweep['verdicts_match']})"
        )


if __name__ == "__main__":
    main()
