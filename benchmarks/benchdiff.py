"""Compare two ``BENCH_*.json`` artifacts and flag regressions.

Starts the bench-trajectory story: every benchmark run persists a
``BENCH_<name>.json`` (see :mod:`benchlib`), and this tool diffs a new
artifact against a committed baseline — per-network wall-clock phases,
peak RSS, and (when present) the obs metrics snapshot — printing a
regression table and exiting non-zero when any tracked number grew by
more than the threshold, so CI can gate on it.

Usage::

    python benchmarks/benchdiff.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--rss-threshold 0.25] [--min-seconds 0.05]

* ``--threshold`` — allowed fractional growth for wall-clock numbers
  (0.25 = +25%); timings below ``--min-seconds`` in the baseline are
  reported but never gate (sub-50ms phases are noise-dominated).
* ``--rss-threshold`` — allowed fractional growth for ``peak_rss_kb``.
* obs counters are compared informationally (work counters like
  ``bgp.routes_processed`` moving is a correctness signal, not a
  pass/fail one — they gate only with ``--strict-counters``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def print_table(title: str, header: List[str], rows: List[List[str]]) -> None:
    """Minimal aligned-table printer (duplicated from benchlib so this
    tool stays importable without the repro package on the path — it
    only ever reads JSON artifacts)."""
    widths = [
        max(len(str(header[col])), *(len(str(row[col])) for row in rows))
        for col in range(len(header))
    ]
    print(title)
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print(
            "  " + "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )


def load_bench(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def networks_by_name(payload: Dict) -> Dict[str, Dict]:
    return {
        entry.get("network", f"#{index}"): entry
        for index, entry in enumerate(payload.get("networks", []))
    }


def ratio(baseline: float, current: float) -> Optional[float]:
    """Fractional change vs baseline (None when baseline is zero)."""
    if baseline == 0:
        return None
    return (current - baseline) / baseline


def format_change(change: Optional[float]) -> str:
    if change is None:
        return "n/a"
    return f"{change * +100:+.1f}%"


class Comparison:
    """Accumulates rows and regression verdicts for one artifact pair."""

    def __init__(
        self,
        threshold: float,
        rss_threshold: float,
        min_seconds: float,
        strict_counters: bool,
    ):
        self.threshold = threshold
        self.rss_threshold = rss_threshold
        self.min_seconds = min_seconds
        self.strict_counters = strict_counters
        self.rows: List[List[str]] = []
        self.regressions: List[str] = []

    def compare_seconds(
        self, network: str, baseline: Dict, current: Dict
    ) -> None:
        base_seconds = baseline.get("seconds", {})
        cur_seconds = current.get("seconds", {})
        for phase in sorted(set(base_seconds) | set(cur_seconds)):
            base = float(base_seconds.get(phase, 0.0))
            cur = float(cur_seconds.get(phase, 0.0))
            change = ratio(base, cur)
            gated = base >= self.min_seconds
            verdict = "ok"
            if change is not None and change > self.threshold:
                if gated:
                    verdict = "REGRESSION"
                    self.regressions.append(
                        f"{network} {phase}: {base:.4f}s -> {cur:.4f}s "
                        f"({format_change(change)})"
                    )
                else:
                    verdict = "noise"  # below the gating floor
            self.rows.append(
                [
                    network,
                    f"seconds.{phase}",
                    f"{base:.4f}",
                    f"{cur:.4f}",
                    format_change(change),
                    verdict,
                ]
            )

    def compare_delta(self, network: str, baseline: Dict, current: Dict) -> None:
        """Gate on the incremental engine's speedup collapsing.

        The ``delta`` phase seconds are already gated like any other
        phase; this additionally tracks the full/delta *ratio* per edit
        kind, so a change that slows delta and full analysis equally
        (invisible to the ratio) or speeds full analysis up (ratio
        shrinks legitimately) is distinguishable in the table. Gates
        only when the baseline full run is above the noise floor.
        """
        base_delta = baseline.get("delta", {})
        cur_delta = current.get("delta", {})
        for label in sorted(set(base_delta) & set(cur_delta)):
            base = float(base_delta[label].get("speedup", 0.0))
            cur = float(cur_delta[label].get("speedup", 0.0))
            if base == 0:
                continue
            shrink = (base - cur) / base
            gated = (
                float(base_delta[label].get("full_seconds", 0.0))
                >= self.min_seconds
            )
            verdict = "ok"
            if shrink > self.threshold:
                if gated:
                    verdict = "REGRESSION"
                    self.regressions.append(
                        f"{network} delta.{label}.speedup: {base:.1f}x -> "
                        f"{cur:.1f}x (-{shrink * 100:.1f}%)"
                    )
                else:
                    verdict = "noise"
            self.rows.append(
                [
                    network,
                    f"delta.{label}.speedup",
                    f"{base:.1f}x",
                    f"{cur:.1f}x",
                    format_change(ratio(base, cur)),
                    verdict,
                ]
            )

    def compare_sweep(self, network: str, baseline: Dict, current: Dict) -> None:
        """Gate on the sweep's pruned fraction collapsing.

        Pruning is where the sweep's asymptotic win lives: a change that
        silently stops scenarios from being pruned (a fingerprint field
        dropped, a scope computation widened) keeps results correct but
        forfeits the speedup — wall-clock gating alone would blame it on
        machine noise. Gates when the baseline pruned at least 10% and
        the current run prunes less than half the baseline fraction;
        also fails outright if the differential verdict check inside the
        bench run reported a mismatch.
        """
        base_sweep = baseline.get("sweep") or {}
        cur_sweep = current.get("sweep") or {}
        if not base_sweep or not cur_sweep:
            return
        if cur_sweep.get("verdicts_match") is False:
            self.regressions.append(
                f"{network} sweep: pruned verdicts diverged from brute force"
            )
        base = float(base_sweep.get("pruned_fraction", 0.0))
        cur = float(cur_sweep.get("pruned_fraction", 0.0))
        verdict = "ok"
        if base >= 0.1 and cur < base / 2:
            verdict = "REGRESSION"
            self.regressions.append(
                f"{network} sweep.pruned_fraction collapsed: "
                f"{base:.2f} -> {cur:.2f}"
            )
        self.rows.append(
            [
                network,
                "sweep.pruned_fraction",
                f"{base:.2f}",
                f"{cur:.2f}",
                format_change(ratio(base, cur)),
                verdict,
            ]
        )
        self.rows.append(
            [
                network,
                "sweep.scenarios_per_second",
                f"{float(base_sweep.get('scenarios_per_second', 0.0)):.1f}",
                f"{float(cur_sweep.get('scenarios_per_second', 0.0)):.1f}",
                format_change(
                    ratio(
                        float(base_sweep.get("scenarios_per_second", 0.0)),
                        float(cur_sweep.get("scenarios_per_second", 0.0)),
                    )
                ),
                "info",
            ]
        )

    def compare_dataflow(
        self, network: str, baseline: Dict, current: Dict
    ) -> None:
        """Gate on the dataflow fixpoint's iteration count growing.

        Unlike wall-clock, worklist iterations are deterministic for a
        given network: growth beyond the threshold means the transfer
        functions or the worklist strategy got algorithmically worse
        (e.g. a widening removed, a join that no longer stabilizes),
        not that the runner was noisy. The ``lint_dataflow`` seconds
        are gated like any other phase; this catches regressions that
        wall-clock noise would absolve.
        """
        base_flow = baseline.get("lint_dataflow") or {}
        cur_flow = current.get("lint_dataflow") or {}
        if not base_flow or not cur_flow:
            return
        base = float(base_flow.get("iterations", 0))
        cur = float(cur_flow.get("iterations", 0))
        change = ratio(base, cur)
        # Same-shape graphs are the comparable case; a network whose
        # node/edge counts changed legitimately iterates differently.
        same_graph = base_flow.get("nodes") == cur_flow.get("nodes") and (
            base_flow.get("edges") == cur_flow.get("edges")
        )
        verdict = "ok" if same_graph else "info"
        if (
            same_graph
            and change is not None
            and change > self.threshold
        ):
            verdict = "REGRESSION"
            self.regressions.append(
                f"{network} lint_dataflow.iterations: {base:.0f} -> "
                f"{cur:.0f} ({format_change(change)})"
            )
        self.rows.append(
            [
                network,
                "lint_dataflow.iterations",
                f"{base:.0f}",
                f"{cur:.0f}",
                format_change(change),
                verdict,
            ]
        )

    def compare_rss(self, network: str, baseline: Dict, current: Dict) -> None:
        base = float(baseline.get("peak_rss_kb", 0))
        cur = float(current.get("peak_rss_kb", 0))
        change = ratio(base, cur)
        verdict = "ok"
        if change is not None and change > self.rss_threshold:
            verdict = "REGRESSION"
            self.regressions.append(
                f"{network} peak_rss_kb: {base:.0f} -> {cur:.0f} "
                f"({format_change(change)})"
            )
        self.rows.append(
            [
                network,
                "peak_rss_kb",
                f"{base:.0f}",
                f"{cur:.0f}",
                format_change(change),
                verdict,
            ]
        )

    def compare_percentiles(self, baseline: Dict, current: Dict) -> None:
        """Gate on tail-latency (p95) regressions.

        ``obs_percentiles`` keys are labeled histogram series
        (``phase.seconds{phase="parse"}``, ...); the p95 estimate is
        bucket-interpolated, so compare only when both sides have
        samples and the baseline sits above the noise floor.
        """
        base_pcts = baseline.get("obs_percentiles", {})
        cur_pcts = current.get("obs_percentiles", {})
        for key in sorted(set(base_pcts) & set(cur_pcts)):
            base_entry, cur_entry = base_pcts[key], cur_pcts[key]
            if not base_entry.get("count") or not cur_entry.get("count"):
                continue
            base = float(base_entry.get("p95", 0.0))
            cur = float(cur_entry.get("p95", 0.0))
            change = ratio(base, cur)
            gated = base >= self.min_seconds
            verdict = "ok"
            if change is not None and change > self.threshold:
                if gated:
                    verdict = "REGRESSION"
                    self.regressions.append(
                        f"p95 {key}: {base:.4f}s -> {cur:.4f}s "
                        f"({format_change(change)})"
                    )
                else:
                    verdict = "noise"
            self.rows.append(
                [
                    "-",
                    f"p95.{key}",
                    f"{base:.4f}",
                    f"{cur:.4f}",
                    format_change(change),
                    verdict,
                ]
            )

    def compare_counters(self, baseline: Dict, current: Dict) -> None:
        base_counters = baseline.get("obs_metrics", {}).get("counters", {})
        cur_counters = current.get("obs_metrics", {}).get("counters", {})
        if not base_counters and not cur_counters:
            return
        for name in sorted(set(base_counters) | set(cur_counters)):
            base = float(base_counters.get(name, 0))
            cur = float(cur_counters.get(name, 0))
            if base == cur:
                continue
            change = ratio(base, cur)
            verdict = "info"
            if (
                self.strict_counters
                and change is not None
                and change > self.threshold
            ):
                verdict = "REGRESSION"
                self.regressions.append(
                    f"counter {name}: {base:.0f} -> {cur:.0f} "
                    f"({format_change(change)})"
                )
            self.rows.append(
                [
                    "-",
                    f"counter.{name}",
                    f"{base:.0f}",
                    f"{cur:.0f}",
                    format_change(change),
                    verdict,
                ]
            )


def compare(
    baseline: Dict,
    current: Dict,
    threshold: float = 0.25,
    rss_threshold: float = 0.25,
    min_seconds: float = 0.05,
    strict_counters: bool = False,
) -> Comparison:
    """Diff two bench payloads; the returned comparison holds the table
    rows and the list of gating regressions."""
    comparison = Comparison(
        threshold, rss_threshold, min_seconds, strict_counters
    )
    base_networks = networks_by_name(baseline)
    cur_networks = networks_by_name(current)
    for network in sorted(set(base_networks) & set(cur_networks)):
        comparison.compare_seconds(
            network, base_networks[network], cur_networks[network]
        )
        comparison.compare_delta(
            network, base_networks[network], cur_networks[network]
        )
        comparison.compare_sweep(
            network, base_networks[network], cur_networks[network]
        )
        comparison.compare_dataflow(
            network, base_networks[network], cur_networks[network]
        )
        comparison.compare_rss(
            network, base_networks[network], cur_networks[network]
        )
    for network in sorted(set(base_networks) - set(cur_networks)):
        comparison.rows.append([network, "(network)", "present", "missing", "n/a", "info"])
    for network in sorted(set(cur_networks) - set(base_networks)):
        comparison.rows.append([network, "(network)", "missing", "present", "n/a", "info"])
    comparison.compare_percentiles(baseline, current)
    comparison.compare_counters(baseline, current)
    return comparison


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/benchdiff.py",
        description="Diff two BENCH_*.json artifacts and gate on regressions.",
    )
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional wall-clock growth (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--rss-threshold",
        type=float,
        default=0.25,
        help="allowed fractional peak-RSS growth (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="baseline timings below this never gate (noise floor)",
    )
    parser.add_argument(
        "--strict-counters",
        action="store_true",
        help="also gate on obs counter growth beyond the threshold",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot load bench artifact: {error}", file=sys.stderr)
        return 2
    comparison = compare(
        baseline,
        current,
        threshold=args.threshold,
        rss_threshold=args.rss_threshold,
        min_seconds=args.min_seconds,
        strict_counters=args.strict_counters,
    )
    print_table(
        f"bench diff: {args.baseline} -> {args.current} "
        f"(threshold +{args.threshold * 100:.0f}%)",
        ["network", "metric", "baseline", "current", "change", "verdict"],
        comparison.rows or [["-", "(no comparable data)", "-", "-", "-", "-"]],
    )
    if comparison.regressions:
        print(
            f"\n{len(comparison.regressions)} regression(s):", file=sys.stderr
        )
        for line in comparison.regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
