"""Shared helpers for the benchmark harness.

Every table and figure of the paper's §6 has a module here that (a)
exposes pytest-benchmark tests runnable via
``pytest benchmarks/ --benchmark-only`` and (b) prints the paper-style
table when executed directly (``python benchmarks/bench_*.py``). The
recorded outputs live in EXPERIMENTS.md.

Performance-tracking additions on top of the original harness:

* :func:`pmap_rows` fans independent per-network measurements out over
  the process pool (``REPRO_JOBS``), keeping row order;
* :func:`write_bench_json` persists machine-readable ``BENCH_*.json``
  artifacts (wall-clock, peak RSS, cold/warm cache timings) so the
  perf trajectory is comparable across PRs;
* :func:`peak_rss_kb` and :func:`route_memory_stats` record the memory
  side (the §4.1.3 interning + ``__slots__`` work).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from dataclasses import dataclass, fields as dataclass_fields, make_dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Snapshot
from repro.dataplane.fib import compute_fibs
from repro.parallel import default_jobs, pmap
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import ConvergenceSettings, DataPlane, compute_dataplane
from repro.synth.networks import NETWORKS, NetworkSpec


@dataclass
class TimedPipeline:
    """All pipeline artifacts for one network with phase timings."""

    spec_name: str
    configs: Dict[str, str]
    snapshot: Snapshot
    dataplane: DataPlane
    analyzer: NetworkAnalyzer
    parse_seconds: float
    dataplane_seconds: float
    graph_seconds: float

    @property
    def num_devices(self) -> int:
        return len(self.snapshot.devices)

    @property
    def config_lines(self) -> int:
        return sum(d.config_lines for d in self.snapshot.devices.values())

    @property
    def total_routes(self) -> int:
        return self.dataplane.stats.total_routes


def run_pipeline(spec: NetworkSpec, scale: int = 1) -> TimedPipeline:
    configs = spec.generate(scale)
    # Phase timings come from obs spans: an `obs.Span` measures wall/CPU
    # whether or not tracing is on, and additionally lands in the trace
    # (REPRO_TRACE) so bench runs and traces report identical numbers.
    with obs.Span(f"bench.pipeline.{spec.name}", scale=scale):
        with obs.Span("bench.parse") as parse_span:
            snapshot = load_snapshot_from_texts(configs)
        with obs.Span("bench.dataplane") as dataplane_span:
            dataplane = compute_dataplane(snapshot, ConvergenceSettings())
        with obs.Span("bench.graph") as graph_span:
            fibs = compute_fibs(dataplane)
            analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    parse_seconds = parse_span.wall_s
    dataplane_seconds = dataplane_span.wall_s
    graph_seconds = graph_span.wall_s
    return TimedPipeline(
        spec_name=spec.name,
        configs=configs,
        snapshot=snapshot,
        dataplane=dataplane,
        analyzer=analyzer,
        parse_seconds=parse_seconds,
        dataplane_seconds=dataplane_seconds,
        graph_seconds=graph_seconds,
    )


_pipeline_cache: Dict[Tuple[str, int], TimedPipeline] = {}


def cached_pipeline(name: str, scale: int = 1) -> TimedPipeline:
    """Pipeline artifacts for a registry network, cached per process so
    multiple benchmarks share the expensive build."""
    key = (name, scale)
    if key not in _pipeline_cache:
        spec = next(s for s in NETWORKS if s.name == name)
        _pipeline_cache[key] = run_pipeline(spec, scale)
    return _pipeline_cache[key]


def timed(fn: Callable[[], object]) -> Tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def print_table(title: str, header: List[str], rows: List[List[str]]) -> None:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()


# ----------------------------------------------------------------------
# Parallel per-network measurement


def pmap_rows(worker: Callable, items: Sequence, jobs: Optional[int] = None) -> List:
    """Fan per-network measurements out over the process pool.

    Each item is measured in its own worker process (so per-row peak-RSS
    numbers are honest); results come back in input order. ``jobs``
    defaults to ``REPRO_JOBS`` / the CPU count; ``REPRO_JOBS=1`` runs
    the classic serial sweep.
    """
    return pmap(worker, list(items), jobs=jobs, min_items=2)


# ----------------------------------------------------------------------
# Memory accounting


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux units)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _unslotted_twin(route) -> object:
    """An instance of a ``__dict__``-based clone of a route class,
    carrying the same field values — the honest baseline for measuring
    what ``__slots__`` saves per route object."""
    cls = type(route)
    twin_cls = _UNSLOTTED_TWINS.get(cls)
    if twin_cls is None:
        twin_cls = make_dataclass(
            f"Unslotted{cls.__name__}",
            [f.name for f in dataclass_fields(cls)],
        )
        _UNSLOTTED_TWINS[cls] = twin_cls
    return twin_cls(**{f.name: getattr(route, f.name) for f in dataclass_fields(cls)})


_UNSLOTTED_TWINS: Dict[type, type] = {}


def route_memory_stats(dataplane: DataPlane) -> Dict[str, object]:
    """Per-route object memory with slots vs. an unslotted twin class.

    Counts only the route objects themselves (shared interned attribute
    bundles are already accounted by the §4.1.3 interning ablation).
    """
    slotted_bytes = 0
    unslotted_bytes = 0
    num_routes = 0
    by_class: Dict[str, int] = {}
    for _hostname, state in sorted(dataplane.nodes.items()):
        for route in state.main_rib.routes():
            num_routes += 1
            by_class[type(route).__name__] = by_class.get(type(route).__name__, 0) + 1
            slotted_bytes += sys.getsizeof(route)
            twin = _unslotted_twin(route)
            unslotted_bytes += sys.getsizeof(twin) + sys.getsizeof(twin.__dict__)
    saved = unslotted_bytes - slotted_bytes
    return {
        "routes": num_routes,
        "routes_by_class": by_class,
        "slotted_bytes": slotted_bytes,
        "unslotted_bytes": unslotted_bytes,
        "saved_bytes": saved,
        "saved_pct": round(100.0 * saved / unslotted_bytes, 1) if unslotted_bytes else 0.0,
    }


# ----------------------------------------------------------------------
# Machine-readable artifacts


def bench_output_dir() -> str:
    """Where ``BENCH_*.json`` artifacts land: ``REPRO_BENCH_DIR`` or the
    repository root (the directory holding ``benchmarks/``)."""
    configured = os.environ.get("REPRO_BENCH_DIR", "").strip()
    if configured:
        return configured
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(name: str, payload: Dict) -> str:
    """Persist a benchmark artifact as ``BENCH_<name>.json``.

    The payload is augmented with the environment facts needed to
    compare runs across PRs (job count, CPU count, Python version) and,
    when the obs subsystem is enabled, with the run's metrics snapshot —
    the same counters/gauges/histograms a ``REPRO_TRACE`` trace carries.
    """
    payload = dict(payload)
    payload.setdefault("schema", f"repro-bench-{name}/v1")
    payload.setdefault(
        "environment",
        {
            "jobs": default_jobs(),
            "cpus": os.cpu_count() or 1,
            "python": sys.version.split()[0],
        },
    )
    if obs.active():
        payload.setdefault("obs_metrics", obs.metrics_dump())
        # p50/p95/p99 per labeled bucket histogram (phase.seconds,
        # service.request.seconds, ...) — benchdiff gates on p95.
        percentiles = obs.metrics().percentiles()
        if percentiles:
            payload.setdefault("obs_percentiles", percentiles)
    out_dir = bench_output_dir()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
