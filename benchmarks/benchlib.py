"""Shared helpers for the benchmark harness.

Every table and figure of the paper's §6 has a module here that (a)
exposes pytest-benchmark tests runnable via
``pytest benchmarks/ --benchmark-only`` and (b) prints the paper-style
table when executed directly (``python benchmarks/bench_*.py``). The
recorded outputs live in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.loader import load_snapshot_from_texts
from repro.config.model import Snapshot
from repro.dataplane.fib import compute_fibs
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import ConvergenceSettings, DataPlane, compute_dataplane
from repro.synth.networks import NETWORKS, NetworkSpec


@dataclass
class TimedPipeline:
    """All pipeline artifacts for one network with phase timings."""

    spec_name: str
    configs: Dict[str, str]
    snapshot: Snapshot
    dataplane: DataPlane
    analyzer: NetworkAnalyzer
    parse_seconds: float
    dataplane_seconds: float
    graph_seconds: float

    @property
    def num_devices(self) -> int:
        return len(self.snapshot.devices)

    @property
    def config_lines(self) -> int:
        return sum(d.config_lines for d in self.snapshot.devices.values())

    @property
    def total_routes(self) -> int:
        return self.dataplane.stats.total_routes


def run_pipeline(spec: NetworkSpec, scale: int = 1) -> TimedPipeline:
    configs = spec.generate(scale)
    started = time.perf_counter()
    snapshot = load_snapshot_from_texts(configs)
    parse_seconds = time.perf_counter() - started
    started = time.perf_counter()
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    dataplane_seconds = time.perf_counter() - started
    started = time.perf_counter()
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    graph_seconds = time.perf_counter() - started
    return TimedPipeline(
        spec_name=spec.name,
        configs=configs,
        snapshot=snapshot,
        dataplane=dataplane,
        analyzer=analyzer,
        parse_seconds=parse_seconds,
        dataplane_seconds=dataplane_seconds,
        graph_seconds=graph_seconds,
    )


_pipeline_cache: Dict[Tuple[str, int], TimedPipeline] = {}


def cached_pipeline(name: str, scale: int = 1) -> TimedPipeline:
    """Pipeline artifacts for a registry network, cached per process so
    multiple benchmarks share the expensive build."""
    key = (name, scale)
    if key not in _pipeline_cache:
        spec = next(s for s in NETWORKS if s.name == name)
        _pipeline_cache[key] = run_pipeline(spec, scale)
    return _pipeline_cache[key]


def timed(fn: Callable[[], object]) -> Tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def print_table(title: str, header: List[str], rows: List[List[str]]) -> None:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()
