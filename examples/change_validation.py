"""Proactive change validation: the §5.1.2 manual workflow.

A WAN operator plans to take core router ``wcore1`` out of service for
maintenance. Before touching the network, they validate the candidate
configurations (all of wcore1's interfaces shut down):

1. the post-change control plane still converges,
2. every site subnet keeps end-to-end reachability (sites dual-home),
3. no traffic traverses the router under maintenance afterwards
   (a waypoint query, §4.2.3),
4. a route diff shows exactly what moves — the paper's anecdote is an
   engineer discovering that far more devices needed updates than
   expected; the diff is how such surprises surface before deployment.

Run:  python examples/change_validation.py
"""

from repro import HeaderSpace, Session
from repro.hdr import fields as f
from repro.reachability.graph import src_node
from repro.synth.wan import wan


def _shutdown_device(config: str) -> str:
    """Candidate change: administratively down every interface."""
    lines = []
    for line in config.splitlines():
        lines.append(line)
        if line.strip().startswith("ip address"):
            lines.append(" shutdown")
    return "\n".join(lines) + "\n"


def main():
    before_configs = wan(num_core=4, num_edge=8, num_externals=2)
    after_configs = dict(before_configs)
    after_configs["wcore1"] = _shutdown_device(before_configs["wcore1"])

    before = Session.from_texts(before_configs)
    after = Session.from_texts(after_configs)

    print("== 1. convergence after the change ==")
    after.assert_converged()
    print("post-change control plane converges deterministically")

    print("\n== 2. site reachability is preserved ==")
    encoder = after.encoder
    engine = encoder.engine
    analyzer = after.analyzer
    site_sources = [
        (node, iface)
        for node, iface in (
            (f"wedge{e}", "Ethernet2") for e in range(8)
        )
    ]
    failures = 0
    for node, iface in site_sources:
        space = HeaderSpace.build(protocols=[f.PROTO_TCP]).to_bdd(encoder)
        answer = analyzer.reachability({src_node(node, iface): space})
        # Sites must still reach provider0's service subnet (provider0
        # peers with wcore0, which stays in service).
        external = engine.and_(
            answer.success_set(), encoder.ip_in_prefix(f.DST_IP, "8.0.0.0/24")
        )
        if external == 0:
            failures += 1
            print(f"  FAIL: {node} lost external reachability")
    print(f"checked {len(site_sources)} sites, {failures} failures")

    print("\n== 3. nothing traverses wcore1 after the change ==")
    through, bypass = analyzer.waypoint_reachability(
        {src_node("wedge0", "Ethernet2"): encoder.tcp()},
        waypoint_hostname="wcore1",
    )
    print(f"traffic through wcore1: {'NONE' if through == 0 else 'STILL PRESENT'}")
    before_through, _ = before.analyzer.waypoint_reachability(
        {src_node("wedge0", "Ethernet2"): before.encoder.tcp()},
        waypoint_hostname="wcore1",
    )
    print(f"(before the change it carried traffic: {before_through != 0})")

    print("\n== 4. route diff (what the change moves) ==")
    before_routes = {
        (row.node, row.description) for row in before.routes()
    }
    after_routes = {
        (row.node, row.description) for row in after.routes()
    }
    gone = before_routes - after_routes
    new = after_routes - before_routes
    print(f"routes removed: {len(gone)}, routes added: {len(new)}")
    affected = sorted({node for node, _ in gone | new})
    print(f"devices whose RIBs change: {affected}")
    for node, description in sorted(new)[:5]:
        print(f"  + {node}: {description}")
    for node, description in sorted(gone)[:5]:
        print(f"  - {node}: {description}")


if __name__ == "__main__":
    main()
