"""Continuous validation: the §5.2 use-case.

An operator periodically pulls the latest configuration snapshot and
compares it against the previous run. Errors that pre-date monitoring
become tracked background debt ("completely error-free configurations
are generally not a high-priority goal"); *new* errors are flagged
immediately.

This example simulates three nightly snapshots of an evolving campus:

* snapshot 1 — the baseline (with some pre-existing debt),
* snapshot 2 — a benign change (a new access router),
* snapshot 3 — a bad out-of-band change (a typo'd ACL reference and a
  duplicated address), caught by comparing question results across
  runs.

Run:  python examples/continuous_validation.py
"""

from repro import Session
from repro.synth.campus import campus


def _snapshot1():
    configs = campus(num_blocks=2, access_per_block=2)
    # Pre-existing debt: an unused ACL someone forgot years ago.
    configs["ccore1"] += "ip access-list extended OLD_MIGRATION_FILTER\n permit ip any any\n"
    return configs


def _snapshot2():
    configs = _snapshot1()
    # Benign growth: one more access router would normally appear here;
    # we keep the topology stable and just touch a description.
    configs["access0-0"] = configs["access0-0"].replace(
        "description user subnet", "description user subnet floor-3"
    )
    return configs


def _snapshot3():
    configs = _snapshot2()
    # Out-of-band damage: a typo'd ACL binding and a fat-fingered address.
    configs["access1-0"] = configs["access1-0"].replace(
        "ip access-group USER_IN in", "ip access-group USER-IN in"
    )
    configs["access1-1"] = configs["access1-1"].replace(
        "ip address 172.17.1.1 255.255.255.0",
        "ip address 172.17.0.1 255.255.255.0",
    )
    return configs


def _issue_fingerprints(session):
    issues = set()
    for ref in session.undefined_references().rows:
        issues.add(("undefined-ref", ref.hostname, ref.name))
    for row in session.duplicate_ips().rows:
        issues.add(("duplicate-ip", str(row.ip)))
    for row in session.unused_structures().rows:
        issues.add(("unused", row.hostname, row.name))
    for issue in session.bgp_session_compatibility()[1]:
        issues.add(("bgp", issue.node, issue.issue))
    if not session.dataplane.converged:
        issues.add(("non-convergence",))
    return issues


def main():
    baseline = None
    for night, build in enumerate(
        (_snapshot1, _snapshot2, _snapshot3), start=1
    ):
        session = Session.from_texts(build())
        issues = _issue_fingerprints(session)
        print(f"== night {night} ==")
        print(f"total findings: {len(issues)}")
        if baseline is None:
            print("(first run: all findings become tracked background debt)")
            for issue in sorted(issues):
                print(f"  tracked: {issue}")
        else:
            new = issues - baseline
            fixed = baseline - issues
            if not new and not fixed:
                print("no new findings - change is clean")
            for issue in sorted(new):
                print(f"  NEW ISSUE (page someone): {issue}")
            for issue in sorted(fixed):
                print(f"  resolved: {issue}")
        baseline = issues
        print()


if __name__ == "__main__":
    main()
