"""Data-center validation: the network-CI workflow of §5.1.1.

Auto-generated fat-tree configurations are validated before deployment:

1. the control plane must converge deterministically,
2. every pair of host subnets must have end-to-end reachability (ECMP
   across the Clos fabric),
3. the protected subnet's egress policy must hold (web/ssh out, UDP
   blocked) — checked symbolically over *all* packets,
4. the two independent forwarding engines must agree (§4.3.2) — run
   routinely in CI to catch modeling regressions.

Run:  python examples/datacenter_validation.py
"""

from repro import HeaderSpace, Session
from repro.hdr import fields as f
from repro.reachability.graph import Disposition, src_node
from repro.synth.fattree import fattree, fattree_host_subnets


def main():
    k = 4
    session = Session.from_texts(fattree(k=k, with_acls=True))

    print("== 1. convergence ==")
    session.assert_converged()
    stats = session.dataplane.stats
    print(
        f"converged in {stats.iterations} iterations, "
        f"{stats.total_routes} routes, "
        f"{len([s for s in session.dataplane.sessions if s.established])} "
        "BGP sessions established"
    )

    print("\n== 2. all-pairs host-subnet reachability ==")
    subnets = fattree_host_subnets(k)
    encoder = session.encoder
    engine = encoder.engine
    analyzer = session.analyzer
    failures = 0
    checks = 0
    edges = [(f"edge{pod}-{e}", "Vlan10") for pod in range(k) for e in range(k // 2)]
    for (src_edge, src_iface), src_subnet in zip(edges, subnets):
        space = HeaderSpace.build(
            src=str(src_subnet), protocols=[f.PROTO_TCP]
        ).to_bdd(encoder)
        answer = analyzer.reachability({src_node(src_edge, src_iface): space})
        # Success includes delivery to hosts and acceptance at the
        # gateway address itself.
        success = answer.success_set()
        for dst_subnet in subnets:
            if dst_subnet == src_subnet:
                continue
            checks += 1
            want = engine.and_(
                space, encoder.ip_in_prefix(f.DST_IP, dst_subnet)
            )
            if not engine.implies(want, success):
                failures += 1
                missing = engine.diff(want, success)
                example = encoder.example_packet(missing)
                print(
                    f"  FAIL {src_subnet} -> {dst_subnet}: "
                    f"e.g. {example.describe()}"
                )
    print(f"checked {checks} subnet pairs, {failures} failures")

    print("\n== 3. egress policy on the protected subnet ==")
    # edge0-0's hosts sit behind HOST_PROTECT (outbound to hosts): UDP
    # into that subnet must be blocked, web must be allowed.
    protected = subnets[0]
    udp_in = HeaderSpace.build(
        dst=str(protected), protocols=[f.PROTO_UDP]
    ).to_bdd(encoder)
    web_in = HeaderSpace.build(
        dst=str(protected), dst_ports=[(80, 80)], protocols=[f.PROTO_TCP]
    ).to_bdd(encoder)
    source = src_node("edge1-0", "Vlan10")
    udp_answer = analyzer.reachability({source: udp_in})
    web_answer = analyzer.reachability({source: web_in})
    udp_delivered = udp_answer.by_disposition.get(Disposition.DELIVERED, 0)
    print(f"UDP into protected subnet delivered? {udp_delivered != 0}")
    print(
        "web into protected subnet delivered? "
        f"{web_answer.by_disposition.get(Disposition.DELIVERED, 0) != 0}"
    )

    print("\n== 4. differential engine validation (§4.3.2) ==")
    report = session.validate_engines()
    print(
        f"cross-validated {report.checks} cases, "
        f"{len(report.mismatches)} mismatches"
    )
    for mismatch in report.mismatches[:3]:
        print(f"  {mismatch.describe()}")


if __name__ == "__main__":
    main()
