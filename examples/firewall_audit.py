"""Firewall audit: stateful devices, NAT, and bidirectional
reachability (§4.2.3).

On an enterprise network with a zone-based firewall and source NAT:

1. verify outbound web traffic makes the full round trip (forward
   through zones + NAT, return through the session fast path),
2. verify the firewall blocks unsolicited inbound traffic (the
   security-oriented twin question, §4.4.1),
3. show a concrete NAT'd traceroute for an example flow.

Run:  python examples/firewall_audit.py
"""

from repro import HeaderSpace, Ip, Packet, Session
from repro.hdr import fields as f
from repro.reachability.graph import src_node
from repro.synth.firewall_dc import enterprise_firewall


def main():
    session = Session.from_texts(enterprise_firewall(num_inside_routers=3))
    session.assert_converged()
    analyzer = session.analyzer
    encoder = session.encoder
    engine = encoder.engine

    print("== network ==")
    print(f"devices: {session.snapshot.hostnames()}")
    fw = session.snapshot.device("fw0")
    print(f"fw0 zones: {sorted(fw.zones)}")
    print(f"fw0 zone policies: {sorted(fw.zone_policies)}")

    print("\n== 1. outbound round trip (web) ==")
    outbound = HeaderSpace.build(
        src="172.16.0.0/12",
        dst="198.18.0.0/15",  # an external service range
        protocols=[f.PROTO_TCP],
        dst_ports=[(443, 443)],
    ).to_bdd(encoder)
    sources = {src_node("inside0", "Vlan10"): outbound}
    delivered, roundtrip = analyzer.bidirectional_reachability(
        sources, return_sources=[("fw0", "Ethernet0")]
    )
    print(f"outbound delivered: {delivered != 0}")
    print(f"round trip succeeds: {roundtrip != 0}")
    example = encoder.example_packet(roundtrip)
    if example:
        print(f"  e.g. {example.describe()}")

    print("\n== 2. outbound policy: telnet must be blocked ==")
    telnet = HeaderSpace.build(
        src="172.16.0.0/12", dst="198.18.0.0/15",
        protocols=[f.PROTO_TCP], dst_ports=[(23, 23)],
    ).to_bdd(encoder)
    answer = analyzer.reachability({src_node("inside0", "Vlan10"): telnet})
    print(f"telnet escapes the firewall? {answer.success_set() != 0}")
    denied = answer.failure_set()
    example = encoder.example_packet(denied)
    print(f"  denied, e.g. {example.describe()}")

    print("\n== 3. unsolicited inbound is isolated ==")
    inside_gateway = "172.28.0.1"  # inside0's user-subnet gateway
    isolation = session.service_unreachable(
        inside_gateway, port=22, from_locations=[("fw0", "Ethernet0")]
    )
    print(
        f"inbound ssh to {inside_gateway} isolated? {isolation.isolated}"
    )

    print("\n== 4. concrete NAT'd trace ==")
    packet = Packet(
        src_ip=Ip("172.28.0.10"),
        dst_ip=Ip("198.18.0.1"),  # beyond the provider
        dst_port=443,
        src_port=51000,
    )
    for trace in session.traceroute(packet, "inside0", "Vlan10"):
        print(f"  {trace.describe()}")
        print(f"    final header: {trace.final_packet.describe()}")
        for hop in trace.hops:
            for step in hop.steps:
                if step.kind in ("nat", "zone", "acl"):
                    print(f"    {hop.node}: {step.detail}")


if __name__ == "__main__":
    main()
