"""Quickstart: parse a small network, ask the classic questions.

This walks the four-stage pipeline on the three-router network from
Figure 2 of the paper (R1 has a direct ssh-only link to R3 plus a path
through R2), showing:

* Stage 1 — parsing and configuration questions,
* Stage 2 — data-plane generation,
* Stage 3 — BDD verification (reachability, multipath consistency),
* Stage 4 — explaining a violation with contrasting examples and a
  concrete traceroute.

Run:  python examples/quickstart.py
"""

from repro import HeaderSpace, Ip, Packet, Session
from repro.reachability.examples import differing_fields
from repro.reachability.graph import src_node

CONFIGS = {
    "r1": """
hostname r1
interface i0
 ip address 10.0.1.1 255.255.255.0
interface i1
 ip address 10.0.12.1 255.255.255.0
interface i3
 ip address 10.0.13.1 255.255.255.0
 ip access-group SSH_ONLY out
ip route 10.0.2.0 255.255.255.0 10.0.12.2
ip route 10.0.3.0 255.255.255.0 10.0.13.3
ip route 10.0.3.0 255.255.255.0 10.0.12.2
ip access-list extended SSH_ONLY
 permit tcp any any eq 22
ntp server 192.0.2.123
""",
    "r2": """
hostname r2
interface i0
 ip address 10.0.2.1 255.255.255.0
interface i1
 ip address 10.0.12.2 255.255.255.0
interface i2
 ip address 10.0.23.2 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.12.1
ip route 10.0.3.0 255.255.255.0 10.0.23.3
ntp server 192.0.2.123
""",
    "r3": """
hostname r3
interface i0
 ip address 10.0.3.1 255.255.255.0
interface i2
 ip address 10.0.23.3 255.255.255.0
interface i3
 ip address 10.0.13.3 255.255.255.0
ip route 10.0.1.0 255.255.255.0 10.0.13.1
ip route 10.0.2.0 255.255.255.0 10.0.23.2
""",
}


def main():
    session = Session.from_texts(CONFIGS)

    print("== Stage 1: parse ==")
    print(f"devices: {session.snapshot.hostnames()}")
    print(f"parse warnings: {len(session.parse_warnings)}")
    print(f"undefined references: {len(session.undefined_references().rows)}")
    ntp = session.management_plane_consistency(expected_ntp=["192.0.2.123"])
    for row in ntp.rows:
        print(f"  NTP deviation on {row.hostname}: has {row.values}")

    print("\n== Stage 2: data plane ==")
    session.assert_converged()
    print(f"total routes: {len(session.routes())}")
    for row in session.routes("r1")[:6]:
        print(f"  r1: {row.description}")

    print("\n== Stage 3: verification ==")
    answer = session.reachability(
        HeaderSpace.build(src="10.0.1.0/24", dst="10.0.3.0/24"),
        sources=[("r1", "i0")],
    )
    for disposition, packet_set in sorted(
        answer.by_disposition.items(), key=lambda kv: kv[0].value
    ):
        example = session.encoder.example_packet(packet_set)
        print(f"  {disposition.value}: e.g. {example.describe() if example else '-'}")

    violations = session.analyzer.multipath_consistency(
        {src_node("r1", "i0"): session.encoder.tcp()}
    )
    print(f"\nmultipath-consistency violations: {len(violations)}")

    print("\n== Stage 4: explain the violation ==")
    violation = violations[0]
    bad = violation.example
    print(f"counterexample: {bad.describe()}")
    print(f"  succeeds via: {[d.value for d in violation.success_dispositions]}")
    print(f"  fails via:    {[d.value for d in violation.failure_dispositions]}")
    full_answer = session.analyzer.reachability(
        {src_node("r1", "i0"): session.encoder.tcp()}
    )
    engine = session.encoder.engine
    cleanly_delivered = engine.diff(
        full_answer.success_set(), full_answer.failure_set()
    )
    # Anchor the positive example to the counterexample so the contrast
    # isolates the problematic field (§4.4.3).
    good = session.encoder.example_packet(
        cleanly_delivered,
        [
            session.encoder.ip_eq("dst_ip", bad.dst_ip),
            session.encoder.ip_eq("src_ip", bad.src_ip),
        ],
    )
    print(f"positive example: {good.describe()}")
    print(f"  differing fields: {differing_fields(bad, good)}")
    print("\nconcrete traces of the counterexample:")
    for trace in session.traceroute(bad, "r1", "i0"):
        print(f"  {trace.describe()}")


if __name__ == "__main__":
    main()
