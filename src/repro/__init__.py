"""repro: a from-scratch reproduction of the Batfish configuration
analysis system, as described in "Lessons from the evolution of the
Batfish configuration analysis tool" (SIGCOMM 2023).

Public entry point: :class:`repro.Session`.
"""

from repro.core.session import NotConvergedError, Session
from repro.hdr import HeaderSpace, Ip, Packet, PacketEncoder, Prefix

__version__ = "1.0.0"

__all__ = [
    "Session",
    "NotConvergedError",
    "HeaderSpace",
    "Ip",
    "Packet",
    "PacketEncoder",
    "Prefix",
    "__version__",
]
