"""A reduced, ordered binary decision diagram (ROBDD) engine.

This is the substrate for the data-plane verification engine (§4.2 of the
paper). It is written from scratch because the analysis needs operations
that generic packages do not expose efficiently:

* a fused relational product (``and_exists``) used to apply packet
  transformations (NAT) in a single pass over the operand diagrams,
* order-preserving variable renaming to map transformed (output) variables
  back onto primary (input) variables,
* preference-guided satisfying-assignment selection for picking "likely"
  example packets (§4.4.3).

Design: nodes are hash-consed into parallel lists (level / lo / hi) and
identified by integer ids. Ids ``0`` and ``1`` are the FALSE and TRUE
terminals. Reduction invariants (no redundant node, no duplicate node)
are enforced by :meth:`BddEngine._mk`, making every function canonical:
two BDDs are semantically equal iff their ids are equal. All binary
operations are memoized in operation caches keyed by operand ids, which
exploits that canonicity (the paper: "we exploit canonicity to
short-circuit full BDD traversals using identity-based operation caches").

Recursion depth is bounded by the number of variables (a few hundred for
a packet header), so plain recursive formulations are safe and fast.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

FALSE = 0
TRUE = 1

# Terminals live "below" all variables so level comparisons work uniformly.
_LEAF_LEVEL = 1 << 30


class BddEngine:
    """Manager for a universe of BDD nodes over ``num_vars`` variables.

    Variables are identified by *level* (0 is the root-most / first tested
    variable). The variable order is fixed at construction; choosing it
    well is the caller's job (see :mod:`repro.hdr.fields` for the packet
    ordering heuristic from §4.2.2 of the paper).
    """

    def __init__(self, num_vars: int):
        if num_vars <= 0:
            raise ValueError("num_vars must be positive")
        self.num_vars = num_vars
        # Node store. Index = node id.
        self._level: List[int] = [_LEAF_LEVEL, _LEAF_LEVEL]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches (identity-keyed thanks to canonicity).
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self._rename_cache: Dict[Tuple[int, int], int] = {}
        self._andex_cache: Dict[Tuple[int, int, int], int] = {}
        self._count_cache: Dict[int, int] = {}
        # Interned quantification cubes and rename maps (id -> payload).
        self._cubes: Dict[Tuple[int, ...], int] = {}
        self._cube_list: List[Tuple[int, ...]] = []
        self._maps: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._map_list: List[Dict[int, int]] = []
        # Cached single-variable nodes.
        self._var_nodes: Dict[int, int] = {}
        self._nvar_nodes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)``, enforcing reduction."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The function that is true iff variable ``level`` is 1."""
        node = self._var_nodes.get(level)
        if node is None:
            self._check_level(level)
            node = self._mk(level, FALSE, TRUE)
            self._var_nodes[level] = node
        return node

    def nvar(self, level: int) -> int:
        """The function that is true iff variable ``level`` is 0."""
        node = self._nvar_nodes.get(level)
        if node is None:
            self._check_level(level)
            node = self._mk(level, TRUE, FALSE)
            self._nvar_nodes[level] = node
        return node

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_vars:
            raise ValueError(
                f"variable level {level} out of range [0, {self.num_vars})"
            )

    def num_nodes(self) -> int:
        """Total nodes ever allocated (includes both terminals)."""
        return len(self._level)

    def stats(self) -> Dict[str, int]:
        """Engine size counters for telemetry: allocated nodes, the
        unique-table population, and total memoized operation-cache
        entries across all operation kinds."""
        ops_cached = (
            len(self._and_cache)
            + len(self._or_cache)
            + len(self._xor_cache)
            + len(self._not_cache)
            + len(self._ite_cache)
            + len(self._exists_cache)
            + len(self._rename_cache)
            + len(self._andex_cache)
            + len(self._count_cache)
        )
        return {
            "nodes": self.num_nodes(),
            "unique_table": len(self._unique),
            "ops_cached": ops_cached,
        }

    # ------------------------------------------------------------------
    # Boolean connectives

    def and_(self, a: int, b: int) -> int:
        """Conjunction — set intersection."""
        if a == b:
            return a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        level_a, level_b = self._level[a], self._level[b]
        if level_a == level_b:
            lo = self.and_(self._lo[a], self._lo[b])
            hi = self.and_(self._hi[a], self._hi[b])
            top = level_a
        elif level_a < level_b:
            lo = self.and_(self._lo[a], b)
            hi = self.and_(self._hi[a], b)
            top = level_a
        else:
            lo = self.and_(a, self._lo[b])
            hi = self.and_(a, self._hi[b])
            top = level_b
        result = self._mk(top, lo, hi)
        self._and_cache[key] = result
        return result

    def or_(self, a: int, b: int) -> int:
        """Disjunction — set union."""
        if a == b:
            return a
        if a == TRUE or b == TRUE:
            return TRUE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._or_cache.get(key)
        if cached is not None:
            return cached
        level_a, level_b = self._level[a], self._level[b]
        if level_a == level_b:
            lo = self.or_(self._lo[a], self._lo[b])
            hi = self.or_(self._hi[a], self._hi[b])
            top = level_a
        elif level_a < level_b:
            lo = self.or_(self._lo[a], b)
            hi = self.or_(self._hi[a], b)
            top = level_a
        else:
            lo = self.or_(a, self._lo[b])
            hi = self.or_(a, self._hi[b])
            top = level_b
        result = self._mk(top, lo, hi)
        self._or_cache[key] = result
        return result

    def xor(self, a: int, b: int) -> int:
        """Exclusive or — symmetric set difference."""
        if a == b:
            return FALSE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == TRUE:
            return self.not_(b)
        if b == TRUE:
            return self.not_(a)
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        level_a, level_b = self._level[a], self._level[b]
        if level_a == level_b:
            lo = self.xor(self._lo[a], self._lo[b])
            hi = self.xor(self._hi[a], self._hi[b])
            top = level_a
        elif level_a < level_b:
            lo = self.xor(self._lo[a], b)
            hi = self.xor(self._hi[a], b)
            top = level_a
        else:
            lo = self.xor(a, self._lo[b])
            hi = self.xor(a, self._hi[b])
            top = level_b
        result = self._mk(top, lo, hi)
        self._xor_cache[key] = result
        return result

    def not_(self, a: int) -> int:
        """Complement — set complement over the full variable universe."""
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        cached = self._not_cache.get(a)
        if cached is not None:
            return cached
        result = self._mk(
            self._level[a], self.not_(self._lo[a]), self.not_(self._hi[a])
        )
        self._not_cache[a] = result
        self._not_cache[result] = a
        return result

    def diff(self, a: int, b: int) -> int:
        """Set difference ``a \\ b`` (i.e. ``a AND NOT b``)."""
        return self.and_(a, self.not_(b))

    def implies(self, a: int, b: int) -> bool:
        """True if every assignment in ``a`` is also in ``b``."""
        return self.diff(a, b) == FALSE

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.not_(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._level[f], self._level[g], self._level[h])
        f_lo, f_hi = self._cofactors(f, top)
        g_lo, g_hi = self._cofactors(g, top)
        h_lo, h_hi = self._cofactors(h, top)
        result = self._mk(
            top, self.ite(f_lo, g_lo, h_lo), self.ite(f_hi, g_hi, h_hi)
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, a: int, level: int) -> Tuple[int, int]:
        if a <= TRUE or self._level[a] != level:
            return a, a
        return self._lo[a], self._hi[a]

    def and_all(self, operands: Iterable[int]) -> int:
        """N-ary conjunction via balanced-tree reduction (TRUE for the
        empty collection).

        A left-fold of :meth:`and_` builds one ever-growing accumulator
        that every further operand is merged into; pairing operands in a
        balanced tree keeps intermediate diagrams small and the
        operation caches hot, which is markedly faster for wide folds
        (ACL line unions, per-prefix FIB spaces, own-IP sets). The
        result is identical by canonicity: AND is associative,
        commutative, and idempotent, so operands are also deduplicated
        and id-sorted for deterministic cache keys.
        """
        layer = sorted({op for op in operands if op != TRUE})
        if not layer:
            return TRUE
        if layer[0] == FALSE:
            return FALSE
        while len(layer) > 1:
            reduced: List[int] = []
            for i in range(0, len(layer) - 1, 2):
                result = self.and_(layer[i], layer[i + 1])
                if result == FALSE:
                    return FALSE
                reduced.append(result)
            if len(layer) % 2:
                reduced.append(layer[-1])
            layer = reduced
        return layer[0]

    def or_all(self, operands: Iterable[int]) -> int:
        """N-ary disjunction via balanced-tree reduction (FALSE for the
        empty collection). See :meth:`and_all` for why the tree shape
        beats a left-fold."""
        layer = sorted({op for op in operands if op != FALSE})
        if not layer:
            return FALSE
        if layer[0] == TRUE:
            return TRUE
        while len(layer) > 1:
            reduced: List[int] = []
            for i in range(0, len(layer) - 1, 2):
                result = self.or_(layer[i], layer[i + 1])
                if result == TRUE:
                    return TRUE
                reduced.append(result)
            if len(layer) % 2:
                reduced.append(layer[-1])
            layer = reduced
        return layer[0]

    def all_and(self, operands: Iterable[int]) -> int:
        """Back-compat alias for :meth:`and_all`."""
        return self.and_all(operands)

    def all_or(self, operands: Iterable[int]) -> int:
        """Back-compat alias for :meth:`or_all`."""
        return self.or_all(operands)

    # ------------------------------------------------------------------
    # Quantification, renaming, relational product

    def cube(self, levels: Iterable[int]) -> int:
        """Intern a set of variable levels for quantification; returns a
        cube id usable with :meth:`exists` and :meth:`and_exists`."""
        key = tuple(sorted(set(levels)))
        cube_id = self._cubes.get(key)
        if cube_id is None:
            for level in key:
                self._check_level(level)
            cube_id = len(self._cube_list)
            self._cubes[key] = cube_id
            self._cube_list.append(key)
        return cube_id

    def exists(self, a: int, cube_id: int) -> int:
        """Existentially quantify the cube's variables out of ``a``."""
        return self._exists(a, cube_id, 0)

    def _exists(self, a: int, cube_id: int, idx: int) -> int:
        if a <= TRUE:
            return a
        levels = self._cube_list[cube_id]
        level_a = self._level[a]
        while idx < len(levels) and levels[idx] < level_a:
            idx += 1
        if idx == len(levels):
            return a
        key = (a, (cube_id << 10) | idx)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        if level_a == levels[idx]:
            result = self.or_(
                self._exists(self._lo[a], cube_id, idx + 1),
                self._exists(self._hi[a], cube_id, idx + 1),
            )
        else:
            result = self._mk(
                level_a,
                self._exists(self._lo[a], cube_id, idx),
                self._exists(self._hi[a], cube_id, idx),
            )
        self._exists_cache[key] = result
        return result

    def rename_map(self, mapping: Dict[int, int]) -> int:
        """Intern a variable-to-variable rename map.

        The mapping must be order-preserving over its domain (if
        ``u < v`` then ``mapping[u] < mapping[v]``) so the result stays
        ordered without re-sorting; the transformation variable layout
        guarantees this (paired variables are interleaved).
        """
        items = tuple(sorted(mapping.items()))
        previous_target = -1
        for source, target in items:
            self._check_level(source)
            self._check_level(target)
            if target <= previous_target:
                raise ValueError("rename map must be order-preserving")
            previous_target = target
        map_id = self._maps.get(items)
        if map_id is None:
            map_id = len(self._map_list)
            self._maps[items] = map_id
            self._map_list.append(dict(items))
        return map_id

    def rename(self, a: int, map_id: int) -> int:
        """Rename variables of ``a`` per an interned order-preserving map."""
        if a <= TRUE:
            return a
        key = (a, map_id)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        mapping = self._map_list[map_id]
        level = self._level[a]
        result = self._mk(
            mapping.get(level, level),
            self.rename(self._lo[a], map_id),
            self.rename(self._hi[a], map_id),
        )
        self._rename_cache[key] = result
        return result

    def permute(self, a: int, mapping: Dict[int, int]) -> int:
        """Apply an arbitrary variable bijection (not necessarily
        order-preserving), rebuilding the BDD bottom-up with ITE.

        Unlike :meth:`rename`, this supports permutations such as
        swapping the source/destination endpoint fields (used by
        bidirectional reachability to turn a session set into the
        matching return-traffic set). Worst-case cost is higher than an
        order-preserving rename, but memoization keeps typical
        (near-rectangular) packet sets cheap.
        """
        memo: Dict[int, int] = {}
        return self._permute(a, mapping, memo)

    def _permute(self, a: int, mapping: Dict[int, int], memo: Dict[int, int]) -> int:
        if a <= TRUE:
            return a
        cached = memo.get(a)
        if cached is not None:
            return cached
        level = self._level[a]
        target = mapping.get(level, level)
        result = self.ite(
            self.var(target),
            self._permute(self._hi[a], mapping, memo),
            self._permute(self._lo[a], mapping, memo),
        )
        memo[a] = result
        return result

    def and_exists(self, a: int, b: int, cube_id: int) -> int:
        """Fused relational product: ``exists(cube, a AND b)``.

        This is the optimized single-pass operation the paper describes
        for applying NAT rules: intersect the reachable set with the
        transformation relation and project away the input variables
        without materializing the intermediate conjunction.
        """
        return self._and_exists(a, b, cube_id, 0)

    def _and_exists(self, a: int, b: int, cube_id: int, idx: int) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE and b == TRUE:
            return TRUE
        levels = self._cube_list[cube_id]
        level_a = self._level[a]
        level_b = self._level[b]
        top = level_a if level_a < level_b else level_b
        while idx < len(levels) and levels[idx] < top:
            idx += 1
        if idx == len(levels):
            return self.and_(a, b)
        if a > b:
            a, b = b, a
            level_a, level_b = level_b, level_a
        key = (a, b, (cube_id << 10) | idx)
        cached = self._andex_cache.get(key)
        if cached is not None:
            return cached
        a_lo, a_hi = self._cofactors(a, top)
        b_lo, b_hi = self._cofactors(b, top)
        if top == levels[idx]:
            lo = self._and_exists(a_lo, b_lo, cube_id, idx + 1)
            if lo == TRUE:
                result = TRUE
            else:
                hi = self._and_exists(a_hi, b_hi, cube_id, idx + 1)
                result = self.or_(lo, hi)
        else:
            lo = self._and_exists(a_lo, b_lo, cube_id, idx)
            hi = self._and_exists(a_hi, b_hi, cube_id, idx)
            result = self._mk(top, lo, hi)
        self._andex_cache[key] = result
        return result

    def transform(self, a: int, relation: int, cube_id: int, map_id: int) -> int:
        """Apply a transformation relation to the set ``a``.

        ``relation`` relates input variables (shared with ``a``) to output
        variables; ``cube_id`` names the input variables to project away;
        ``map_id`` renames output variables back onto input variables.
        """
        return self.rename(self.and_exists(a, relation, cube_id), map_id)

    # ------------------------------------------------------------------
    # Satisfiability and model extraction

    def is_empty(self, a: int) -> bool:
        """True if the set ``a`` contains no assignment."""
        return a == FALSE

    def sat_count(self, a: int, over_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over the first ``over_vars``
        variables (default: the whole universe)."""
        if over_vars is None:
            over_vars = self.num_vars
        total = self._sat_count(a)
        # _sat_count computes over all num_vars; scale down if asked for a
        # smaller universe (only valid if a's support fits within it).
        if over_vars > self.num_vars:
            return total << (over_vars - self.num_vars)
        if over_vars < self.num_vars:
            support = self.support(a)
            if support and support[-1] >= over_vars:
                raise ValueError("function depends on variables beyond over_vars")
            return total >> (self.num_vars - over_vars)
        return total

    def _sat_count(self, a: int) -> int:
        """Count assignments over the full universe of ``num_vars`` vars."""
        if a == FALSE:
            return 0
        if a == TRUE:
            return 1 << self.num_vars
        cached = self._count_cache.get(a)
        if cached is not None:
            return cached
        level = self._level[a]
        lo, hi = self._lo[a], self._hi[a]
        lo_level = self._level[lo] if lo > TRUE else self.num_vars
        hi_level = self._level[hi] if hi > TRUE else self.num_vars
        # _sat_count(child) already counts free vars above the child's level;
        # divide out the vars above `level + 1` and re-weight.
        count = (self._sat_count(lo) >> (lo_level)) * (
            1 << (lo_level - level - 1)
        ) + (self._sat_count(hi) >> (hi_level)) * (1 << (hi_level - level - 1))
        result = count << level
        self._count_cache[a] = result
        return result

    def any_sat(self, a: int) -> Optional[Dict[int, int]]:
        """Return one satisfying partial assignment (level -> bit), or
        ``None`` if the set is empty. Unmentioned variables are free."""
        if a == FALSE:
            return None
        assignment: Dict[int, int] = {}
        node = a
        while node > TRUE:
            if self._hi[node] != FALSE:
                assignment[self._level[node]] = 1
                node = self._hi[node]
            else:
                assignment[self._level[node]] = 0
                node = self._lo[node]
        return assignment

    def best_sat(
        self, a: int, preferences: Iterable[int]
    ) -> Optional[Dict[int, int]]:
        """Pick a satisfying assignment guided by preference constraints.

        Each preference is itself a BDD; preferences are applied greedily
        in order, keeping each one only if the intersection stays
        non-empty. This is the paper's example-selection mechanism
        (§4.4.3): "BDDs help to select positive and negative examples
        quickly by intersecting the answer space with preference
        constraints."
        """
        if a == FALSE:
            return None
        current = a
        for preference in preferences:
            narrowed = self.and_(current, preference)
            if narrowed != FALSE:
                current = narrowed
        return self.any_sat(current)

    def support(self, a: int) -> Tuple[int, ...]:
        """Sorted tuple of the variable levels the function depends on."""
        seen = set()
        levels = set()
        stack = [a]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return tuple(sorted(levels))

    def size(self, a: int) -> int:
        """Number of distinct decision nodes reachable from ``a``
        (terminals excluded)."""
        seen = set()
        stack = [a]
        count = 0
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return count

    def restrict(self, a: int, level: int, bit: int) -> int:
        """Cofactor: fix variable ``level`` to ``bit`` in ``a``."""
        self._check_level(level)
        return self._restrict(a, level, bit, {})

    def _restrict(
        self, a: int, level: int, bit: int, memo: Dict[int, int]
    ) -> int:
        if a <= TRUE or self._level[a] > level:
            return a
        cached = memo.get(a)
        if cached is not None:
            return cached
        if self._level[a] == level:
            result = self._hi[a] if bit else self._lo[a]
        else:
            result = self._mk(
                self._level[a],
                self._restrict(self._lo[a], level, bit, memo),
                self._restrict(self._hi[a], level, bit, memo),
            )
        memo[a] = result
        return result

    def eval(self, a: int, assignment: Dict[int, int]) -> bool:
        """Evaluate the function under a total assignment (level -> bit).

        Variables absent from the assignment default to 0.
        """
        node = a
        while node > TRUE:
            if assignment.get(self._level[node], 0):
                node = self._hi[node]
            else:
                node = self._lo[node]
        return node == TRUE

    def from_assignment(self, assignment: Dict[int, int]) -> int:
        """The minterm BDD for a (partial) assignment (level -> bit)."""
        result = TRUE
        for level in sorted(assignment, reverse=True):
            if assignment[level]:
                result = self._mk(level, FALSE, result)
            else:
                result = self._mk(level, result, FALSE)
        return result

    def sat_iter(
        self, a: int, limit: int = 1 << 20
    ) -> Iterator[Dict[int, int]]:
        """Iterate satisfying partial assignments (cubes), up to ``limit``."""
        if a == FALSE:
            return
        emitted = 0
        stack: List[Tuple[int, Dict[int, int]]] = [(a, {})]
        while stack:
            node, partial = stack.pop()
            if node == TRUE:
                yield partial
                emitted += 1
                if emitted >= limit:
                    return
                continue
            if node == FALSE:
                continue
            level = self._level[node]
            if self._hi[node] != FALSE:
                hi_partial = dict(partial)
                hi_partial[level] = 1
                stack.append((self._hi[node], hi_partial))
            if self._lo[node] != FALSE:
                lo_partial = dict(partial)
                lo_partial[level] = 0
                stack.append((self._lo[node], lo_partial))

    def canonical(self, a: int) -> object:
        """Engine-independent structural form of ``a``.

        Returns nested tuples ``(level, lo, hi)`` with the terminals as
        ``0``/``1``. Because ROBDDs are canonical for a fixed variable
        order, two functions built in *different* engines over the same
        variable order are semantically equal iff their canonical forms
        compare equal — the property the dataflow delta validator uses
        to compare a warm-started fixpoint against a from-scratch one.
        """
        memo: Dict[int, object] = {FALSE: 0, TRUE: 1}

        def walk(node: int) -> object:
            got = memo.get(node)
            if got is not None:
                return got
            result = (
                self._level[node],
                walk(self._lo[node]),
                walk(self._hi[node]),
            )
            memo[node] = result
            return result

        return walk(a)

    def clear_caches(self) -> None:
        """Drop all operation caches (useful for memory benchmarks)."""
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._not_cache.clear()
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._rename_cache.clear()
        self._andex_cache.clear()
        self._count_cache.clear()
