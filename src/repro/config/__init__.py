"""Configuration parsing and the vendor-independent model (Stage 1)."""

from repro.config.loader import (
    detect_syntax,
    load_snapshot_from_dir,
    load_snapshot_from_texts,
    parse_config_text,
)
from repro.config.model import Device, Snapshot

__all__ = [
    "detect_syntax",
    "load_snapshot_from_dir",
    "load_snapshot_from_texts",
    "parse_config_text",
    "Device",
    "Snapshot",
]
