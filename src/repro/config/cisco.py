"""Parser for the ``ciscoish`` configuration syntax (IOS-flavoured).

Per the paper's Stage 1, parsing is two-phase:

1. :class:`CiscoParser` turns configuration text into a *vendor-specific*
   representation (:class:`CiscoConfig`) that mirrors the syntax — masks
   are kept as wildcard strings, ports as match tokens, and so on;
2. :func:`cisco_to_vi` converts that representation into the
   vendor-independent model of :mod:`repro.config.model`, normalizing
   wildcards to prefixes, port operators to ranges, and vendor defaults
   to explicit values.

Unrecognized lines never abort parsing; they produce
:class:`~repro.config.model.ParseWarning` records (the "long tail of
situations" from Lesson 3 must degrade gracefully).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.model import (
    Acl,
    AclLine,
    Action,
    AsPathList,
    BgpNeighbor,
    BgpProcess,
    CommunityList,
    Device,
    Interface,
    MatchKind,
    NatKind,
    NatRule,
    OspfProcess,
    ParseWarning,
    PrefixList,
    PrefixListLine,
    Protocol,
    Redistribution,
    RouteMap,
    RouteMapClause,
    RouteMapMatch,
    RouteMapSet,
    SetKind,
    StaticRoute,
    Zone,
    ZonePolicy,
)
from repro.hdr import fields as f
from repro.hdr.ip import Ip, Prefix

_PROTOCOL_NAMES = {
    "ip": None,
    "tcp": f.PROTO_TCP,
    "udp": f.PROTO_UDP,
    "icmp": f.PROTO_ICMP,
    "ospf": f.PROTO_OSPF,
}

_PORT_NAMES = {
    "bgp": 179,
    "domain": 53,
    "ftp": 21,
    "http": 80,
    "www": 80,
    "https": 443,
    "ntp": 123,
    "smtp": 25,
    "snmp": 161,
    "ssh": 22,
    "syslog": 514,
    "telnet": 23,
    "tftp": 69,
}

_REDIST_SOURCES = {
    "connected": Protocol.CONNECTED,
    "static": Protocol.STATIC,
    "ospf": Protocol.OSPF,
    "bgp": Protocol.BGP,
}


# ----------------------------------------------------------------------
# Vendor-specific representation (mirrors the syntax)


@dataclass
class CiscoInterface:
    name: str
    address_words: Optional[Tuple[str, str]] = None  # (ip, mask) or (cidr, "")
    shutdown: bool = False
    description: str = ""
    bandwidth_kbps: Optional[int] = None
    mtu: Optional[int] = None
    access_group_in: Optional[str] = None
    access_group_out: Optional[str] = None
    ospf_cost: Optional[int] = None
    ospf_area: Optional[int] = None
    ospf_passive: bool = False
    ospf_hello_interval: Optional[int] = None
    ospf_dead_interval: Optional[int] = None
    zone_member: Optional[str] = None
    nat_inside: bool = False
    nat_outside: bool = False
    line_number: int = 0


@dataclass
class CiscoAclLine:
    tokens: List[str]
    raw: str
    line_number: int = 0


@dataclass
class CiscoAcl:
    name: str
    standard: bool = False
    lines: List[CiscoAclLine] = field(default_factory=list)
    line_number: int = 0


@dataclass
class CiscoOspf:
    process_id: str
    router_id: Optional[str] = None
    reference_bandwidth_mbps: Optional[int] = None
    passive_interfaces: List[str] = field(default_factory=list)
    networks: List[Tuple[str, str, int]] = field(default_factory=list)
    redistributes: List[Tuple[List[str], int]] = field(default_factory=list)
    default_information_originate: bool = False


@dataclass
class CiscoBgpNeighbor:
    peer: str
    remote_as: Optional[int] = None
    description: str = ""
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    next_hop_self: bool = False
    send_community: bool = False
    route_reflector_client: bool = False
    ebgp_multihop: bool = False
    update_source: Optional[str] = None
    local_as: Optional[int] = None
    line_number: int = 0


@dataclass
class CiscoBgp:
    asn: int
    router_id: Optional[str] = None
    neighbors: Dict[str, CiscoBgpNeighbor] = field(default_factory=dict)
    networks: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    redistributes: List[Tuple[List[str], int]] = field(default_factory=list)
    maximum_paths: int = 1


@dataclass
class CiscoRouteMapClause:
    action: str
    seq: int
    matches: List[List[str]] = field(default_factory=list)
    sets: List[List[str]] = field(default_factory=list)
    line_number: int = 0


@dataclass
class CiscoNatPool:
    name: str
    start: str
    end: str
    prefix_length: int


@dataclass
class CiscoNatRule:
    direction: str  # "inside source" etc.
    acl: Optional[str]
    pool: Optional[str]
    static_pair: Optional[Tuple[str, str]] = None


@dataclass
class CiscoConfig:
    """Vendor-specific parse result for one ciscoish file."""

    hostname: str = ""
    filename: str = "<config>"
    interfaces: Dict[str, CiscoInterface] = field(default_factory=dict)
    acls: Dict[str, CiscoAcl] = field(default_factory=dict)
    prefix_lists: Dict[str, List[List[str]]] = field(default_factory=dict)
    community_lists: Dict[str, List[str]] = field(default_factory=dict)
    as_path_lists: Dict[str, str] = field(default_factory=dict)
    route_maps: Dict[str, List[CiscoRouteMapClause]] = field(default_factory=dict)
    static_routes: List[Tuple[List[str], int]] = field(default_factory=list)
    ospf: Optional[CiscoOspf] = None
    bgp: Optional[CiscoBgp] = None
    zones: List[str] = field(default_factory=list)
    zone_pairs: List[Tuple[str, str, str, int]] = field(default_factory=list)  # from,to,acl,line
    nat_pools: Dict[str, CiscoNatPool] = field(default_factory=dict)
    nat_rules: List[CiscoNatRule] = field(default_factory=list)
    ntp_servers: List[str] = field(default_factory=list)
    dns_servers: List[str] = field(default_factory=list)
    snmp_communities: List[str] = field(default_factory=list)
    line_count: int = 0
    warnings: List[ParseWarning] = field(default_factory=list)
    #: First definition line of named structures, keyed (kind, name).
    definition_lines: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: ``! lint-disable RULE`` directives: (rule_id, line_number).
    lint_disables: List[Tuple[str, int]] = field(default_factory=list)


class CiscoParser:
    """Line-oriented recursive parser for the ciscoish syntax."""

    def __init__(self, text: str, filename: str = "<config>"):
        self._lines = text.splitlines()
        self._filename = filename
        self._index = 0
        self._config = CiscoConfig(
            filename=filename,
            line_count=len([l for l in self._lines if l.strip()]),
        )

    def parse(self) -> CiscoConfig:
        while self._index < len(self._lines):
            raw = self._lines[self._index]
            line = raw.strip()
            self._index += 1
            if not line or line.startswith("!"):
                if line:
                    self._maybe_lint_disable(line)
                continue
            if raw[0].isspace():
                self._warn(raw, "unexpected indented line at top level")
                continue
            self._top_level(line, raw)
        return self._config

    # -- block dispatch -------------------------------------------------

    def _maybe_lint_disable(self, line: str) -> None:
        """Record ``! lint-disable RULE...`` suppression comments."""
        words = line.lstrip("!#").split()
        if words[:1] == ["lint-disable"]:
            rules = words[1:] or ["*"]
            for rule in rules:
                self._config.lint_disables.append((rule, self._index))

    def _top_level(self, line: str, raw: str) -> None:
        tokens = line.split()
        head = tokens[0]
        number = self._index  # 1-based line number of the line just read
        if head == "hostname" and len(tokens) >= 2:
            self._config.hostname = tokens[1]
        elif head == "interface" and len(tokens) >= 2:
            self._parse_interface(tokens[1], number)
        elif line.startswith("router ospf"):
            self._parse_ospf(tokens[2] if len(tokens) > 2 else "1")
        elif line.startswith("router bgp") and len(tokens) >= 3:
            self._parse_bgp(int(tokens[2]))
        elif head == "ip":
            self._parse_ip_line(tokens, raw)
        elif head == "route-map" and len(tokens) >= 3:
            self._parse_route_map(tokens, number)
        elif head == "ntp" and len(tokens) >= 3 and tokens[1] == "server":
            self._config.ntp_servers.append(tokens[2])
        elif head == "snmp-server" and len(tokens) >= 3 and tokens[1] == "community":
            self._config.snmp_communities.append(tokens[2])
        elif line.startswith("zone security") and len(tokens) >= 3:
            self._config.zones.append(tokens[2])
        elif line.startswith("zone-pair security"):
            self._parse_zone_pair(tokens, number)
        elif head == "access-list":
            self._warn(raw, "numbered ACLs are not supported; use named ACLs")
        else:
            self._warn(raw, "unrecognized top-level line")

    def _block_lines(self):
        """Yield the indented lines of the current block."""
        while self._index < len(self._lines):
            raw = self._lines[self._index]
            if not raw.strip() or raw.strip().startswith("!"):
                self._index += 1
                if not raw.strip().startswith("!"):
                    continue
                self._maybe_lint_disable(raw.strip())
                return  # '!' terminates a block
            if not raw[0].isspace():
                return
            self._index += 1
            yield raw.strip(), raw

    # -- interface ------------------------------------------------------

    def _parse_interface(self, name: str, number: int = 0) -> None:
        iface = self._config.interfaces.setdefault(name, CiscoInterface(name=name))
        if not iface.line_number:
            iface.line_number = number
        for line, raw in self._block_lines():
            tokens = line.split()
            if line.startswith("ip address") and len(tokens) >= 3:
                if len(tokens) >= 4:
                    iface.address_words = (tokens[2], tokens[3])
                else:
                    iface.address_words = (tokens[2], "")
            elif line == "no ip address":
                iface.address_words = None
            elif line == "shutdown":
                iface.shutdown = True
            elif line == "no shutdown":
                iface.shutdown = False
            elif tokens[0] == "description":
                iface.description = line.partition(" ")[2]
            elif tokens[0] == "bandwidth" and len(tokens) >= 2:
                iface.bandwidth_kbps = int(tokens[1])
            elif tokens[0] == "mtu" and len(tokens) >= 2:
                iface.mtu = int(tokens[1])
            elif line.startswith("ip access-group") and len(tokens) >= 4:
                if tokens[3] == "in":
                    iface.access_group_in = tokens[2]
                elif tokens[3] == "out":
                    iface.access_group_out = tokens[2]
                else:
                    self._warn(raw, "access-group direction must be in/out")
            elif line.startswith("ip ospf cost") and len(tokens) >= 4:
                iface.ospf_cost = int(tokens[3])
            elif line.startswith("ip ospf area") and len(tokens) >= 4:
                iface.ospf_area = int(tokens[3])
            elif line == "ip ospf passive":
                iface.ospf_passive = True
            elif line.startswith("ip ospf hello-interval") and len(tokens) >= 4:
                iface.ospf_hello_interval = int(tokens[3])
            elif line.startswith("ip ospf dead-interval") and len(tokens) >= 4:
                iface.ospf_dead_interval = int(tokens[3])
            elif line.startswith("zone-member security") and len(tokens) >= 3:
                iface.zone_member = tokens[2]
            elif line == "ip nat inside":
                iface.nat_inside = True
            elif line == "ip nat outside":
                iface.nat_outside = True
            else:
                self._warn(raw, "unrecognized interface line")

    # -- routing processes ---------------------------------------------

    def _parse_ospf(self, process_id: str) -> None:
        # Re-entering `router ospf N` merges into the existing process,
        # matching device behaviour for repeated configuration blocks.
        if self._config.ospf is not None and self._config.ospf.process_id == process_id:
            ospf = self._config.ospf
        else:
            ospf = CiscoOspf(process_id=process_id)
            self._config.ospf = ospf
        for line, raw in self._block_lines():
            tokens = line.split()
            if tokens[0] == "router-id" and len(tokens) >= 2:
                ospf.router_id = tokens[1]
            elif line.startswith("auto-cost reference-bandwidth") and len(tokens) >= 3:
                ospf.reference_bandwidth_mbps = int(tokens[2])
            elif tokens[0] == "passive-interface" and len(tokens) >= 2:
                ospf.passive_interfaces.append(tokens[1])
            elif tokens[0] == "network" and len(tokens) >= 5 and tokens[3] == "area":
                ospf.networks.append((tokens[1], tokens[2], int(tokens[4])))
            elif tokens[0] == "redistribute":
                ospf.redistributes.append((tokens[1:], self._index))
            elif line == "default-information originate":
                ospf.default_information_originate = True
            else:
                self._warn(raw, "unrecognized ospf line")

    def _parse_bgp(self, asn: int) -> None:
        # Re-entering `router bgp ASN` merges into the existing process.
        if self._config.bgp is not None and self._config.bgp.asn == asn:
            bgp = self._config.bgp
        else:
            bgp = CiscoBgp(asn=asn)
            self._config.bgp = bgp
        for line, raw in self._block_lines():
            tokens = line.split()
            if line.startswith("bgp router-id") and len(tokens) >= 3:
                bgp.router_id = tokens[2]
            elif tokens[0] == "neighbor" and len(tokens) >= 3:
                self._parse_bgp_neighbor(bgp, tokens, raw)
            elif tokens[0] == "network" and len(tokens) >= 2:
                mask = tokens[3] if len(tokens) >= 4 and tokens[2] == "mask" else None
                bgp.networks.append((tokens[1], mask))
            elif tokens[0] == "redistribute":
                bgp.redistributes.append((tokens[1:], self._index))
            elif tokens[0] == "maximum-paths" and len(tokens) >= 2:
                bgp.maximum_paths = int(tokens[1])
            else:
                self._warn(raw, "unrecognized bgp line")

    def _parse_bgp_neighbor(self, bgp: CiscoBgp, tokens: List[str], raw: str) -> None:
        peer = tokens[1]
        neighbor = bgp.neighbors.setdefault(peer, CiscoBgpNeighbor(peer=peer))
        if not neighbor.line_number:
            neighbor.line_number = self._index
        directive = tokens[2]
        if directive == "remote-as" and len(tokens) >= 4:
            neighbor.remote_as = int(tokens[3])
        elif directive == "description":
            neighbor.description = " ".join(tokens[3:])
        elif directive == "route-map" and len(tokens) >= 5:
            if tokens[4] == "in":
                neighbor.route_map_in = tokens[3]
            elif tokens[4] == "out":
                neighbor.route_map_out = tokens[3]
            else:
                self._warn(raw, "route-map direction must be in/out")
        elif directive == "next-hop-self":
            neighbor.next_hop_self = True
        elif directive == "send-community":
            neighbor.send_community = True
        elif directive == "route-reflector-client":
            neighbor.route_reflector_client = True
        elif directive == "ebgp-multihop":
            neighbor.ebgp_multihop = True
        elif directive == "update-source" and len(tokens) >= 4:
            neighbor.update_source = tokens[3]
        elif directive == "local-as" and len(tokens) >= 4:
            neighbor.local_as = int(tokens[3])
        else:
            self._warn(raw, "unrecognized bgp neighbor directive")

    # -- ip ... lines -----------------------------------------------------

    def _parse_ip_line(self, tokens: List[str], raw: str) -> None:
        number = self._index
        if len(tokens) >= 2 and tokens[1] == "route":
            self._config.static_routes.append((tokens[2:], number))
        elif len(tokens) >= 4 and tokens[1] == "access-list":
            standard = tokens[2] == "standard"
            if tokens[2] not in ("extended", "standard"):
                self._warn(raw, "access-list must be extended or standard")
                return
            acl = self._config.acls.setdefault(
                tokens[3], CiscoAcl(name=tokens[3], standard=standard)
            )
            if not acl.line_number:
                acl.line_number = number
            for line, inner_raw in self._block_lines():
                acl.lines.append(
                    CiscoAclLine(
                        tokens=line.split(), raw=line, line_number=self._index
                    )
                )
        elif len(tokens) >= 3 and tokens[1] == "prefix-list":
            name = tokens[2]
            self._config.definition_lines.setdefault(("prefix-list", name), number)
            self._config.prefix_lists.setdefault(name, []).append(tokens[3:])
        elif len(tokens) >= 5 and tokens[1] == "community-list":
            # ip community-list standard NAME permit A:B ...
            self._config.definition_lines.setdefault(
                ("community-list", tokens[3]), number
            )
            self._config.community_lists.setdefault(tokens[3], []).extend(tokens[5:])
        elif len(tokens) >= 5 and tokens[1] == "as-path" and tokens[2] == "access-list":
            self._config.as_path_lists[tokens[3]] = " ".join(tokens[5:])
        elif len(tokens) >= 3 and tokens[1] == "name-server":
            self._config.dns_servers.append(tokens[2])
        elif len(tokens) >= 3 and tokens[1] == "nat":
            self._parse_nat(tokens, raw)
        else:
            self._warn(raw, "unrecognized ip line")

    def _parse_nat(self, tokens: List[str], raw: str) -> None:
        # ip nat pool NAME START END prefix-length L
        if tokens[2] == "pool" and len(tokens) >= 8 and tokens[6] == "prefix-length":
            self._config.nat_pools[tokens[3]] = CiscoNatPool(
                name=tokens[3], start=tokens[4], end=tokens[5],
                prefix_length=int(tokens[7]),
            )
            return
        # ip nat inside source list ACL pool POOL
        # ip nat inside source static A B
        # ip nat outside source list ACL pool POOL
        if tokens[2] in ("inside", "outside") and len(tokens) >= 5:
            direction = f"{tokens[2]} {tokens[3]}"
            rest = tokens[4:]
            if rest[0] == "list" and len(rest) >= 4 and rest[2] == "pool":
                self._config.nat_rules.append(
                    CiscoNatRule(direction=direction, acl=rest[1], pool=rest[3])
                )
                return
            if rest[0] == "static" and len(rest) >= 3:
                self._config.nat_rules.append(
                    CiscoNatRule(
                        direction=direction, acl=None, pool=None,
                        static_pair=(rest[1], rest[2]),
                    )
                )
                return
        self._warn(raw, "unrecognized nat line")

    # -- route maps, zone pairs ------------------------------------------

    def _parse_route_map(self, tokens: List[str], number: int = 0) -> None:
        name = tokens[1]
        action = tokens[2] if len(tokens) >= 3 else "permit"
        seq = int(tokens[3]) if len(tokens) >= 4 else 10
        self._config.definition_lines.setdefault(("route-map", name), number)
        clause = CiscoRouteMapClause(action=action, seq=seq, line_number=number)
        self._config.route_maps.setdefault(name, []).append(clause)
        for line, raw in self._block_lines():
            inner = line.split()
            if inner[0] == "match":
                clause.matches.append(inner[1:])
            elif inner[0] == "set":
                clause.sets.append(inner[1:])
            else:
                self._warn(raw, "unrecognized route-map line")

    def _parse_zone_pair(self, tokens: List[str], number: int = 0) -> None:
        # zone-pair security NAME source Z1 destination Z2
        try:
            src = tokens[tokens.index("source") + 1]
            dst = tokens[tokens.index("destination") + 1]
        except (ValueError, IndexError):
            self._warn(" ".join(tokens), "malformed zone-pair")
            return
        acl = ""
        for line, raw in self._block_lines():
            inner = line.split()
            if inner[0] == "service-policy" and len(inner) >= 2:
                acl = inner[-1]
            else:
                self._warn(raw, "unrecognized zone-pair line")
        self._config.zone_pairs.append((src, dst, acl, number))

    def _warn(self, raw: str, comment: str) -> None:
        self._config.warnings.append(
            ParseWarning(
                hostname=self._config.hostname or self._filename,
                line_number=self._index,
                text=raw.strip(),
                comment=comment,
            )
        )


# ----------------------------------------------------------------------
# Conversion to the vendor-independent model


def parse_cisco(text: str, filename: str = "<config>") -> Tuple[Device, List[ParseWarning]]:
    """Parse ciscoish text and convert it to a vendor-independent Device."""
    vendor = CiscoParser(text, filename).parse()
    return cisco_to_vi(vendor), vendor.warnings


def cisco_to_vi(config: CiscoConfig) -> Device:
    """Convert the vendor-specific representation to the VI model."""
    device = Device(
        hostname=config.hostname or "unnamed",
        vendor="ciscoish",
        config_lines=config.line_count,
    )
    for name in config.zones:
        device.zones[name] = Zone(name=name)
    for vendor_iface in config.interfaces.values():
        device.interfaces[vendor_iface.name] = _convert_interface(vendor_iface, config)
        if vendor_iface.zone_member:
            zone = device.zones.setdefault(
                vendor_iface.zone_member, Zone(name=vendor_iface.zone_member)
            )
            zone.interfaces.append(vendor_iface.name)
    for name, vendor_acl in config.acls.items():
        device.acls[name] = _convert_acl(vendor_acl, device, config)
    for name, lines in config.prefix_lists.items():
        plist = _convert_prefix_list(name, lines)
        plist.source_file = config.filename
        plist.source_line = config.definition_lines.get(("prefix-list", name), 0)
        device.prefix_lists[name] = plist
    for name, communities in config.community_lists.items():
        device.community_lists[name] = CommunityList(
            name=name,
            communities=communities,
            source_file=config.filename,
            source_line=config.definition_lines.get(("community-list", name), 0),
        )
    for name, regex in config.as_path_lists.items():
        device.as_path_lists[name] = AsPathList(name=name, regex=regex)
    for name, clauses in config.route_maps.items():
        device.route_maps[name] = _convert_route_map(name, clauses, config)
    for words, number in config.static_routes:
        route = _convert_static_route(words, config.filename, number)
        if route is not None:
            device.static_routes.append(route)
    if config.ospf is not None:
        device.ospf = _convert_ospf(config.ospf, device, config.filename)
    if config.bgp is not None:
        device.bgp = _convert_bgp(config.bgp, config)
    _convert_nat(config, device)
    for src, dst, acl, number in config.zone_pairs:
        device.zone_policies[(src, dst)] = ZonePolicy(
            from_zone=src, to_zone=dst, acl=acl,
            source_file=config.filename, source_line=number,
        )
    device.ntp_servers = [Ip(s) for s in config.ntp_servers]
    device.dns_servers = [Ip(s) for s in config.dns_servers]
    device.snmp_communities = list(config.snmp_communities)
    device.lint_suppressions = [
        (rule, config.filename, line) for rule, line in config.lint_disables
    ]
    return device


def _convert_interface(vendor: CiscoInterface, config: CiscoConfig) -> Interface:
    iface = Interface(
        name=vendor.name,
        source_file=config.filename,
        source_line=vendor.line_number,
    )
    if vendor.address_words is not None:
        addr, mask = vendor.address_words
        if "/" in addr:
            prefix = Prefix(addr)
            iface.address = Ip(addr.split("/")[0])
            iface.prefix_length = prefix.length
        else:
            iface.address = Ip(addr)
            iface.prefix_length = _mask_to_length(mask)
    iface.enabled = not vendor.shutdown
    iface.description = vendor.description
    if vendor.bandwidth_kbps is not None:
        iface.bandwidth = vendor.bandwidth_kbps * 1000
    if vendor.mtu is not None:
        iface.mtu = vendor.mtu
    iface.incoming_acl = vendor.access_group_in
    iface.outgoing_acl = vendor.access_group_out
    if vendor.ospf_area is not None or vendor.ospf_cost is not None:
        iface.ospf_enabled = True
        iface.ospf_area = vendor.ospf_area or 0
    iface.ospf_cost = vendor.ospf_cost
    iface.ospf_passive = vendor.ospf_passive
    if vendor.ospf_hello_interval is not None:
        iface.ospf_hello_interval = vendor.ospf_hello_interval
    if vendor.ospf_dead_interval is not None:
        iface.ospf_dead_interval = vendor.ospf_dead_interval
    elif vendor.ospf_hello_interval is not None:
        # Vendor default: dead interval follows hello at 4x when unset.
        iface.ospf_dead_interval = vendor.ospf_hello_interval * 4
    iface.zone = vendor.zone_member
    return iface


def _mask_to_length(mask: str) -> int:
    if not mask:
        return 32
    value = Ip(mask).value
    # A netmask must be a run of ones followed by zeros.
    length = bin(value).count("1")
    expected = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    if value != expected:
        raise ValueError(f"not a contiguous netmask: {mask}")
    return length


def _wildcard_to_prefix(addr: str, wildcard: str) -> Prefix:
    """Convert ``addr wildcard`` (inverse mask) to a prefix. Only
    contiguous wildcards are supported (the overwhelmingly common case)."""
    inverse = Ip(wildcard).value ^ 0xFFFFFFFF
    length = bin(inverse).count("1")
    expected = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    if inverse != expected:
        raise ValueError(f"discontiguous wildcard mask: {wildcard}")
    return Prefix(Ip(addr).value, length)


def _convert_acl(vendor: CiscoAcl, device: Device, config: CiscoConfig) -> Acl:
    acl = Acl(
        name=vendor.name,
        source_file=config.filename,
        source_line=vendor.line_number,
    )
    for line in vendor.lines:
        converted = _convert_acl_line(line, vendor.standard, config)
        if converted is not None:
            acl.lines.append(converted)
    return acl


def _convert_acl_line(
    line: CiscoAclLine, standard: bool, config: CiscoConfig
) -> Optional[AclLine]:
    tokens = list(line.tokens)
    if not tokens:
        return None
    if tokens[0] == "remark":
        return None
    if tokens[0] not in ("permit", "deny"):
        config.warnings.append(
            ParseWarning(config.hostname, 0, line.raw, "unrecognized ACL action")
        )
        return None
    action = Action.PERMIT if tokens[0] == "permit" else Action.DENY
    tokens = tokens[1:]
    if standard:
        src, tokens = _parse_acl_address(tokens)
        return AclLine(
            action=action, src=src, name=line.raw,
            source_file=config.filename, source_line=line.line_number,
        )
    if not tokens:
        return None
    proto_word = tokens.pop(0)
    if proto_word not in _PROTOCOL_NAMES:
        config.warnings.append(
            ParseWarning(config.hostname, 0, line.raw, f"unknown protocol {proto_word}")
        )
        return None
    protocol = _PROTOCOL_NAMES[proto_word]
    src, tokens = _parse_acl_address(tokens)
    src_ports, tokens = _parse_acl_ports(tokens)
    dst, tokens = _parse_acl_address(tokens)
    dst_ports, tokens = _parse_acl_ports(tokens)
    established = False
    icmp_type = None
    while tokens:
        word = tokens.pop(0)
        if word == "established":
            established = True
        elif word == "log":
            continue
        elif proto_word == "icmp" and word.isdigit():
            icmp_type = int(word)
        elif proto_word == "icmp" and word in ("echo", "echo-reply"):
            icmp_type = 8 if word == "echo" else 0
        else:
            config.warnings.append(
                ParseWarning(config.hostname, 0, line.raw, f"unrecognized ACL token {word}")
            )
    return AclLine(
        action=action,
        protocol=protocol,
        src=src,
        dst=dst,
        src_ports=src_ports,
        dst_ports=dst_ports,
        established=established,
        icmp_type=icmp_type,
        name=line.raw,
        source_file=config.filename,
        source_line=line.line_number,
    )


def _parse_acl_address(tokens: List[str]) -> Tuple[Optional[Prefix], List[str]]:
    if not tokens:
        return None, tokens
    if tokens[0] == "any":
        return None, tokens[1:]
    if tokens[0] == "host" and len(tokens) >= 2:
        return Prefix(tokens[1] + "/32"), tokens[2:]
    if "/" in tokens[0]:
        return Prefix(tokens[0]), tokens[1:]
    if len(tokens) >= 2 and _looks_like_ip(tokens[0]) and _looks_like_ip(tokens[1]):
        return _wildcard_to_prefix(tokens[0], tokens[1]), tokens[2:]
    return None, tokens


def _parse_acl_ports(tokens: List[str]) -> Tuple[Tuple[Tuple[int, int], ...], List[str]]:
    if not tokens:
        return (), tokens
    word = tokens[0]
    if word == "eq" and len(tokens) >= 2:
        port = _port_value(tokens[1])
        return ((port, port),), tokens[2:]
    if word == "range" and len(tokens) >= 3:
        return ((_port_value(tokens[1]), _port_value(tokens[2])),), tokens[3:]
    if word == "gt" and len(tokens) >= 2:
        return ((_port_value(tokens[1]) + 1, 65535),), tokens[2:]
    if word == "lt" and len(tokens) >= 2:
        return ((0, _port_value(tokens[1]) - 1),), tokens[2:]
    if word == "neq" and len(tokens) >= 2:
        port = _port_value(tokens[1])
        ranges = []
        if port > 0:
            ranges.append((0, port - 1))
        if port < 65535:
            ranges.append((port + 1, 65535))
        return tuple(ranges), tokens[2:]
    return (), tokens


def _port_value(word: str) -> int:
    if word.isdigit():
        return int(word)
    if word in _PORT_NAMES:
        return _PORT_NAMES[word]
    raise ValueError(f"unknown port name: {word}")


def _looks_like_ip(word: str) -> bool:
    return word.count(".") == 3 and all(
        part.isdigit() for part in word.split(".")
    )


def _convert_prefix_list(name: str, entries: List[List[str]]) -> PrefixList:
    plist = PrefixList(name=name)
    for words in entries:
        tokens = list(words)
        if tokens[:1] == ["seq"]:
            tokens = tokens[2:]
        if not tokens or tokens[0] not in ("permit", "deny"):
            continue
        action = Action.PERMIT if tokens[0] == "permit" else Action.DENY
        prefix = Prefix(tokens[1])
        ge = le = None
        rest = tokens[2:]
        while rest:
            if rest[0] == "ge" and len(rest) >= 2:
                ge = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "le" and len(rest) >= 2:
                le = int(rest[1])
                rest = rest[2:]
            else:
                rest = rest[1:]
        plist.lines.append(PrefixListLine(action=action, prefix=prefix, ge=ge, le=le))
    return plist


def _convert_route_map(
    name: str, clauses: List[CiscoRouteMapClause], config: CiscoConfig
) -> RouteMap:
    route_map = RouteMap(
        name=name,
        source_file=config.filename,
        source_line=config.definition_lines.get(("route-map", name), 0),
    )
    for vendor_clause in clauses:
        clause = RouteMapClause(
            seq=vendor_clause.seq,
            action=Action.PERMIT if vendor_clause.action == "permit" else Action.DENY,
            source_file=config.filename,
            source_line=vendor_clause.line_number,
        )
        for words in vendor_clause.matches:
            match = _convert_match(words)
            if match is not None:
                clause.matches.append(match)
        for words in vendor_clause.sets:
            for set_clause in _convert_set(words):
                clause.sets.append(set_clause)
        route_map.clauses.append(clause)
    return route_map


def _convert_match(words: List[str]) -> Optional[RouteMapMatch]:
    if words[:3] == ["ip", "address", "prefix-list"] and len(words) >= 4:
        return RouteMapMatch(MatchKind.PREFIX_LIST, words[3])
    if words[:1] == ["community"] and len(words) >= 2:
        return RouteMapMatch(MatchKind.COMMUNITY, words[1])
    if words[:1] == ["as-path"] and len(words) >= 2:
        return RouteMapMatch(MatchKind.AS_PATH, words[1])
    if words[:1] == ["tag"] and len(words) >= 2:
        return RouteMapMatch(MatchKind.TAG, words[1])
    if words[:1] == ["metric"] and len(words) >= 2:
        return RouteMapMatch(MatchKind.METRIC, words[1])
    return None


def _convert_set(words: List[str]) -> List[RouteMapSet]:
    if words[:1] == ["local-preference"] and len(words) >= 2:
        return [RouteMapSet(SetKind.LOCAL_PREF, words[1])]
    if words[:1] == ["metric"] and len(words) >= 2:
        return [RouteMapSet(SetKind.METRIC, words[1])]
    if words[:1] == ["community"] and len(words) >= 2:
        values = [w for w in words[1:] if w != "additive"]
        kind = (
            SetKind.COMMUNITY_ADDITIVE if "additive" in words else SetKind.COMMUNITY
        )
        return [RouteMapSet(kind, " ".join(values))]
    if words[:2] == ["as-path", "prepend"]:
        return [RouteMapSet(SetKind.AS_PATH_PREPEND, " ".join(words[2:]))]
    if words[:2] == ["ip", "next-hop"] and len(words) >= 3:
        return [RouteMapSet(SetKind.NEXT_HOP, words[2])]
    if words[:1] == ["weight"] and len(words) >= 2:
        return [RouteMapSet(SetKind.WEIGHT, words[1])]
    if words[:1] == ["tag"] and len(words) >= 2:
        return [RouteMapSet(SetKind.TAG, words[1])]
    return []


def _convert_static_route(
    words: List[str], source_file: str = "", source_line: int = 0
) -> Optional[StaticRoute]:
    if len(words) < 3:
        return None
    if "/" in words[0]:
        prefix = Prefix(words[0])
        rest = words[1:]
    else:
        prefix = Prefix(Ip(words[0]).value, _mask_to_length(words[1]))
        rest = words[2:]
    next_hop_ip = None
    next_hop_interface = None
    if _looks_like_ip(rest[0]):
        next_hop_ip = Ip(rest[0])
    else:
        next_hop_interface = rest[0]
    admin = 1
    tag = 0
    rest = rest[1:]
    while rest:
        if rest[0] == "tag" and len(rest) >= 2:
            tag = int(rest[1])
            rest = rest[2:]
        elif rest[0].isdigit():
            admin = int(rest[0])
            rest = rest[1:]
        else:
            rest = rest[1:]
    return StaticRoute(
        prefix=prefix,
        next_hop_ip=next_hop_ip,
        next_hop_interface=next_hop_interface,
        admin_distance=admin,
        tag=tag,
        source_file=source_file,
        source_line=source_line,
    )


def _convert_ospf(
    vendor: CiscoOspf, device: Device, filename: str = "<config>"
) -> OspfProcess:
    ospf = OspfProcess(process_id=vendor.process_id)
    if vendor.router_id:
        ospf.router_id = Ip(vendor.router_id)
    if vendor.reference_bandwidth_mbps is not None:
        ospf.reference_bandwidth = vendor.reference_bandwidth_mbps * 1_000_000
    ospf.default_information_originate = vendor.default_information_originate
    for words, number in vendor.redistributes:
        redist = _convert_redistribution(words, filename, number)
        if redist is not None:
            ospf.redistributions.append(redist)
    # 'network A W area N' statements enable OSPF on matching interfaces.
    for addr, wildcard, area in vendor.networks:
        network = _wildcard_to_prefix(addr, wildcard)
        for iface in device.interfaces.values():
            if iface.address is not None and network.contains_ip(iface.address):
                iface.ospf_enabled = True
                iface.ospf_area = area
    for name in vendor.passive_interfaces:
        if name in device.interfaces:
            device.interfaces[name].ospf_passive = True
    return ospf


def _convert_redistribution(
    words: List[str], source_file: str, source_line: int
) -> Optional[Redistribution]:
    # Provenance is mandatory: every redistribute statement must carry
    # its (file, line) so cross-device dataflow findings can blame the
    # exact line (callers pass the parse index, never placeholders).
    if not words or words[0] not in _REDIST_SOURCES:
        return None
    source = _REDIST_SOURCES[words[0]]
    route_map = None
    metric = None
    rest = words[1:]
    while rest:
        if rest[0] == "route-map" and len(rest) >= 2:
            route_map = rest[1]
            rest = rest[2:]
        elif rest[0] == "metric" and len(rest) >= 2:
            metric = int(rest[1])
            rest = rest[2:]
        else:
            rest = rest[1:]
    return Redistribution(
        source=source, route_map=route_map, metric=metric,
        source_file=source_file, source_line=source_line,
    )


def _convert_bgp(vendor: CiscoBgp, config: CiscoConfig) -> BgpProcess:
    bgp = BgpProcess(local_as=vendor.asn)
    if vendor.router_id:
        bgp.router_id = Ip(vendor.router_id)
    bgp.maximum_paths = vendor.maximum_paths
    for peer, vendor_neighbor in vendor.neighbors.items():
        if vendor_neighbor.remote_as is None:
            continue  # neighbor without remote-as cannot come up
        neighbor = BgpNeighbor(
            peer_ip=Ip(peer),
            remote_as=vendor_neighbor.remote_as,
            description=vendor_neighbor.description,
            import_policy=vendor_neighbor.route_map_in,
            export_policy=vendor_neighbor.route_map_out,
            next_hop_self=vendor_neighbor.next_hop_self,
            send_community=vendor_neighbor.send_community,
            route_reflector_client=vendor_neighbor.route_reflector_client,
            ebgp_multihop=vendor_neighbor.ebgp_multihop,
            update_source=vendor_neighbor.update_source,
            local_as=vendor_neighbor.local_as,
            source_file=config.filename,
            source_line=vendor_neighbor.line_number,
        )
        bgp.neighbors[neighbor.peer_ip] = neighbor
    for addr, mask in vendor.networks:
        if "/" in addr:
            bgp.networks.append(Prefix(addr))
        else:
            length = _mask_to_length(mask) if mask else 32
            bgp.networks.append(Prefix(Ip(addr).value, length))
    for words, number in vendor.redistributes:
        redist = _convert_redistribution(words, config.filename, number)
        if redist is not None:
            bgp.redistributions.append(redist)
    return bgp


def _convert_nat(config: CiscoConfig, device: Device) -> None:
    """Attach NAT rules to interfaces. 'inside source' NAT rewrites the
    source address of traffic leaving any 'ip nat outside' interface."""
    for rule in config.nat_rules:
        pool_prefix = None
        if rule.pool is not None:
            pool = config.nat_pools.get(rule.pool)
            if pool is None:
                config.warnings.append(
                    ParseWarning(
                        config.hostname, 0, f"pool {rule.pool}",
                        "reference to undefined NAT pool",
                    )
                )
                continue
            pool_prefix = Prefix(Ip(pool.start).value, pool.prefix_length)
        if rule.static_pair is not None:
            inside, outside = rule.static_pair
            nat = NatRule(
                kind=NatKind.STATIC,
                match_acl=None,
                pool=Prefix(outside + "/32"),
                static_inside=Prefix(inside + "/32"),
            )
        elif rule.direction == "inside source":
            nat = NatRule(kind=NatKind.SOURCE, match_acl=rule.acl, pool=pool_prefix)
        elif rule.direction == "inside destination":
            nat = NatRule(kind=NatKind.DESTINATION, match_acl=rule.acl, pool=pool_prefix)
        else:
            config.warnings.append(
                ParseWarning(
                    config.hostname, 0, rule.direction, "unsupported NAT direction"
                )
            )
            continue
        for iface in device.interfaces.values():
            vendor_iface = config.interfaces.get(iface.name)
            if vendor_iface is None or not vendor_iface.nat_outside:
                continue
            if nat.kind in (NatKind.SOURCE, NatKind.STATIC):
                iface.src_nat_rules.append(nat)
            else:
                iface.dst_nat_rules.append(nat)
