"""Parser for the ``juniperish`` configuration syntax (flat set-style).

Like :mod:`repro.config.cisco`, parsing is two-phase: a vendor-specific
representation that mirrors the syntax (paths of ``set`` statements),
followed by conversion into the vendor-independent model. Supporting a
second, structurally different syntax is what exercises the Stage 1
normalization the paper discusses (and the §7.3 usability cost of it).

Supported statement families::

    set system host-name NAME
    set system ntp server IP
    set system name-server IP
    set interfaces IFACE unit 0 family inet address A.B.C.D/L
    set interfaces IFACE unit 0 family inet filter input|output NAME
    set interfaces IFACE disable
    set interfaces IFACE description TEXT
    set protocols ospf area N interface IFACE [metric M] [passive]
    set protocols ospf reference-bandwidth BPS
    set protocols ospf export POLICY
    set protocols bgp local-as N
    set protocols bgp group G neighbor IP peer-as N
    set protocols bgp group G neighbor IP import|export POLICY
    set protocols bgp group G neighbor IP description TEXT
    set protocols bgp group G neighbor IP multihop
    set protocols bgp multipath maximum-paths N
    set routing-options router-id IP
    set routing-options static route P/L next-hop IP|discard [preference N]
    set policy-options prefix-list NAME P/L
    set policy-options policy-statement P term T from prefix-list NAME
    set policy-options policy-statement P term T from community NAME
    set policy-options policy-statement P term T then local-preference N
    set policy-options policy-statement P term T then metric N
    set policy-options policy-statement P term T then community add C
    set policy-options policy-statement P term T then accept|reject
    set policy-options community NAME members A:B
    set firewall filter NAME term T from ... / then accept|discard
    set security zones security-zone Z interfaces IFACE
    set security policies from-zone A to-zone B policy P match ... / then ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.model import (
    Acl,
    AclLine,
    Action,
    BgpNeighbor,
    BgpProcess,
    CommunityList,
    Device,
    Interface,
    MatchKind,
    OspfProcess,
    ParseWarning,
    PrefixList,
    PrefixListLine,
    RouteMap,
    RouteMapClause,
    RouteMapMatch,
    RouteMapSet,
    SetKind,
    StaticRoute,
    Zone,
    ZonePolicy,
)
from repro.hdr import fields as f
from repro.hdr.ip import Ip, Prefix

_PROTOCOL_NAMES = {
    "tcp": f.PROTO_TCP,
    "udp": f.PROTO_UDP,
    "icmp": f.PROTO_ICMP,
}


@dataclass
class JuniperTerm:
    """One term of a firewall filter or policy statement (syntax level)."""

    froms: List[List[str]] = field(default_factory=list)
    thens: List[List[str]] = field(default_factory=list)


@dataclass
class JuniperConfig:
    """Vendor-specific parse result: the set-paths grouped by family."""

    hostname: str = ""
    filename: str = "<config>"
    interface_lines: List[List[str]] = field(default_factory=list)
    ospf_lines: List[Tuple[List[str], int]] = field(default_factory=list)
    bgp_lines: List[Tuple[List[str], int]] = field(default_factory=list)
    routing_option_lines: List[Tuple[List[str], int]] = field(default_factory=list)
    prefix_lists: Dict[str, List[str]] = field(default_factory=dict)
    policy_terms: Dict[str, Dict[str, JuniperTerm]] = field(default_factory=dict)
    policy_term_order: Dict[str, List[str]] = field(default_factory=dict)
    communities: Dict[str, List[str]] = field(default_factory=dict)
    filter_terms: Dict[str, Dict[str, JuniperTerm]] = field(default_factory=dict)
    filter_term_order: Dict[str, List[str]] = field(default_factory=dict)
    zone_interfaces: Dict[str, List[str]] = field(default_factory=dict)
    zone_policies: Dict[Tuple[str, str], Dict[str, JuniperTerm]] = field(
        default_factory=dict
    )
    ntp_servers: List[str] = field(default_factory=list)
    dns_servers: List[str] = field(default_factory=list)
    line_count: int = 0
    warnings: List[ParseWarning] = field(default_factory=list)
    #: First definition line of named structures, keyed (kind, name).
    definition_lines: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: First line of each term, keyed (kind, container, term).
    term_lines: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    #: ``# lint-disable RULE`` directives: (rule_id, line_number).
    lint_disables: List[Tuple[str, int]] = field(default_factory=list)


class JuniperParser:
    """Parser for flat ``set`` statements."""

    def __init__(self, text: str, filename: str = "<config>"):
        self._lines = text.splitlines()
        self._filename = filename
        self._config = JuniperConfig(
            filename=filename,
            line_count=len([l for l in self._lines if l.strip()]),
        )

    def parse(self) -> JuniperConfig:
        for number, raw in enumerate(self._lines, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                words = line.lstrip("#").split()
                if words[:1] == ["lint-disable"]:
                    for rule in words[1:] or ["*"]:
                        self._config.lint_disables.append((rule, number))
                continue
            tokens = line.split()
            if tokens[0] != "set" or len(tokens) < 3:
                self._warn(number, raw, "expected a 'set' statement")
                continue
            self._dispatch(tokens[1:], number, raw)
        return self._config

    def _dispatch(self, path: List[str], number: int, raw: str) -> None:
        family = path[0]
        if family == "system":
            self._parse_system(path[1:], number, raw)
        elif family == "interfaces":
            if len(path) >= 2:
                self._config.definition_lines.setdefault(
                    ("interface", path[1]), number
                )
            self._config.interface_lines.append(path[1:])
        elif family == "protocols" and len(path) >= 2 and path[1] == "ospf":
            self._config.ospf_lines.append((path[2:], number))
        elif family == "protocols" and len(path) >= 2 and path[1] == "bgp":
            if len(path) >= 6 and path[2] == "group" and path[4] == "neighbor":
                self._config.definition_lines.setdefault(
                    ("bgp-neighbor", path[5]), number
                )
            self._config.bgp_lines.append((path[2:], number))
        elif family == "routing-options":
            self._config.routing_option_lines.append((path[1:], number))
        elif family == "policy-options":
            self._parse_policy_options(path[1:], number, raw)
        elif family == "firewall" and len(path) >= 3 and path[1] == "filter":
            self._parse_filter(path[2:], number, raw)
        elif family == "security":
            self._parse_security(path[1:], number, raw)
        else:
            self._warn(number, raw, "unrecognized configuration family")

    def _parse_system(self, path: List[str], number: int, raw: str) -> None:
        if path[:1] == ["host-name"] and len(path) >= 2:
            self._config.hostname = path[1]
        elif path[:2] == ["ntp", "server"] and len(path) >= 3:
            self._config.ntp_servers.append(path[2])
        elif path[:1] == ["name-server"] and len(path) >= 2:
            self._config.dns_servers.append(path[1])
        else:
            self._warn(number, raw, "unrecognized system statement")

    def _parse_policy_options(self, path: List[str], number: int, raw: str) -> None:
        if path[:1] == ["prefix-list"] and len(path) >= 3:
            self._config.definition_lines.setdefault(("prefix-list", path[1]), number)
            self._config.prefix_lists.setdefault(path[1], []).append(path[2])
        elif path[:1] == ["policy-statement"] and len(path) >= 4 and path[2] == "term":
            policy, term_name = path[1], path[3]
            self._config.definition_lines.setdefault(("route-map", policy), number)
            self._config.term_lines.setdefault(("policy", policy, term_name), number)
            terms = self._config.policy_terms.setdefault(policy, {})
            order = self._config.policy_term_order.setdefault(policy, [])
            if term_name not in terms:
                terms[term_name] = JuniperTerm()
                order.append(term_name)
            term = terms[term_name]
            if path[4:5] == ["from"]:
                term.froms.append(path[5:])
            elif path[4:5] == ["then"]:
                term.thens.append(path[5:])
            else:
                self._warn(number, raw, "policy term needs from/then")
        elif path[:1] == ["community"] and len(path) >= 4 and path[2] == "members":
            self._config.definition_lines.setdefault(
                ("community-list", path[1]), number
            )
            self._config.communities.setdefault(path[1], []).append(path[3])
        else:
            self._warn(number, raw, "unrecognized policy-options statement")

    def _parse_filter(self, path: List[str], number: int, raw: str) -> None:
        # path: NAME term T from|then ...
        if len(path) >= 4 and path[1] == "term":
            filter_name, term_name = path[0], path[2]
            self._config.definition_lines.setdefault(("acl", filter_name), number)
            self._config.term_lines.setdefault(
                ("filter", filter_name, term_name), number
            )
            terms = self._config.filter_terms.setdefault(filter_name, {})
            order = self._config.filter_term_order.setdefault(filter_name, [])
            if term_name not in terms:
                terms[term_name] = JuniperTerm()
                order.append(term_name)
            term = terms[term_name]
            if path[3] == "from":
                term.froms.append(path[4:])
            elif path[3] == "then":
                term.thens.append(path[4:])
            else:
                self._warn(number, raw, "filter term needs from/then")
        else:
            self._warn(number, raw, "unrecognized firewall statement")

    def _parse_security(self, path: List[str], number: int, raw: str) -> None:
        if path[:2] == ["zones", "security-zone"] and len(path) >= 5 and path[3] == "interfaces":
            self._config.zone_interfaces.setdefault(path[2], []).append(path[4])
        elif path[:1] == ["policies"] and len(path) >= 7 and path[1] == "from-zone":
            # policies from-zone A to-zone B policy P (match|then) ...
            from_zone, to_zone, policy_name = path[2], path[4], path[6]
            self._config.term_lines.setdefault(
                ("security-policy", f"{from_zone}|{to_zone}", policy_name), number
            )
            zone_pair = self._config.zone_policies.setdefault(
                (from_zone, to_zone), {}
            )
            if policy_name not in zone_pair:
                zone_pair[policy_name] = JuniperTerm()
            term = zone_pair[policy_name]
            if path[7:8] == ["match"]:
                term.froms.append(path[8:])
            elif path[7:8] == ["then"]:
                term.thens.append(path[8:])
            else:
                self._warn(number, raw, "security policy needs match/then")
        else:
            self._warn(number, raw, "unrecognized security statement")

    def _warn(self, number: int, raw: str, comment: str) -> None:
        self._config.warnings.append(
            ParseWarning(
                hostname=self._config.hostname or self._filename,
                line_number=number,
                text=raw.strip(),
                comment=comment,
            )
        )


# ----------------------------------------------------------------------
# Conversion to the vendor-independent model


def parse_juniper(
    text: str, filename: str = "<config>"
) -> Tuple[Device, List[ParseWarning]]:
    """Parse juniperish text and convert to a vendor-independent Device."""
    vendor = JuniperParser(text, filename).parse()
    return juniper_to_vi(vendor), vendor.warnings


def juniper_to_vi(config: JuniperConfig) -> Device:
    device = Device(
        hostname=config.hostname or "unnamed",
        vendor="juniperish",
        config_lines=config.line_count,
    )
    _convert_interfaces(config, device)
    _convert_ospf(config, device)
    _convert_bgp(config, device)
    _convert_routing_options(config, device)
    for name, entries in config.prefix_lists.items():
        plist = PrefixList(
            name=name,
            source_file=config.filename,
            source_line=config.definition_lines.get(("prefix-list", name), 0),
        )
        for entry in entries:
            plist.lines.append(
                PrefixListLine(action=Action.PERMIT, prefix=Prefix(entry))
            )
        device.prefix_lists[name] = plist
    for name, members in config.communities.items():
        device.community_lists[name] = CommunityList(
            name=name,
            communities=members,
            source_file=config.filename,
            source_line=config.definition_lines.get(("community-list", name), 0),
        )
    for name in config.policy_terms:
        device.route_maps[name] = _convert_policy(config, name)
    for name in config.filter_terms:
        device.acls[name] = _convert_filter(config, name)
    for zone_name, interfaces in config.zone_interfaces.items():
        device.zones[zone_name] = Zone(name=zone_name, interfaces=list(interfaces))
        for iface_name in interfaces:
            if iface_name in device.interfaces:
                device.interfaces[iface_name].zone = zone_name
    _convert_zone_policies(config, device)
    device.ntp_servers = [Ip(s) for s in config.ntp_servers]
    device.dns_servers = [Ip(s) for s in config.dns_servers]
    device.lint_suppressions = [
        (rule, config.filename, line) for rule, line in config.lint_disables
    ]
    return device


def _interface_of(
    device: Device, name: str, config: Optional[JuniperConfig] = None
) -> Interface:
    iface = device.interfaces.setdefault(name, Interface(name=name))
    if config is not None and not iface.source_line:
        iface.source_file = config.filename
        iface.source_line = config.definition_lines.get(("interface", name), 0)
    return iface


def _convert_interfaces(config: JuniperConfig, device: Device) -> None:
    for path in config.interface_lines:
        if not path:
            continue
        iface = _interface_of(device, path[0], config)
        rest = path[1:]
        if rest[:4] == ["unit", "0", "family", "inet"] and len(rest) >= 6:
            inner = rest[4:]
            if inner[0] == "address" and len(inner) >= 2:
                prefix = Prefix(inner[1])
                iface.address = Ip(inner[1].split("/")[0])
                iface.prefix_length = prefix.length
            elif inner[0] == "filter" and len(inner) >= 3:
                if inner[1] == "input":
                    iface.incoming_acl = inner[2]
                elif inner[1] == "output":
                    iface.outgoing_acl = inner[2]
        elif rest[:1] == ["disable"]:
            iface.enabled = False
        elif rest[:1] == ["description"]:
            iface.description = " ".join(rest[1:])
        elif rest[:1] == ["bandwidth"] and len(rest) >= 2:
            iface.bandwidth = int(rest[1])
        elif rest[:1] == ["mtu"] and len(rest) >= 2:
            iface.mtu = int(rest[1])
        else:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, " ".join(path),
                    "unrecognized interface statement",
                )
            )


def _convert_ospf(config: JuniperConfig, device: Device) -> None:
    if not config.ospf_lines:
        return
    ospf = OspfProcess()
    device.ospf = ospf
    for path, number in config.ospf_lines:
        if path[:1] == ["area"] and len(path) >= 4 and path[2] == "interface":
            area = int(path[1].split(".")[-1]) if "." in path[1] else int(path[1])
            iface = _interface_of(device, path[3], config)
            iface.ospf_enabled = True
            iface.ospf_area = area
            extra = path[4:]
            saw_hello = saw_dead = False
            while extra:
                if extra[:1] == ["metric"] and len(extra) >= 2:
                    iface.ospf_cost = int(extra[1])
                    extra = extra[2:]
                elif extra[:1] == ["passive"]:
                    iface.ospf_passive = True
                    extra = extra[1:]
                elif extra[:1] == ["hello-interval"] and len(extra) >= 2:
                    iface.ospf_hello_interval = int(extra[1])
                    saw_hello = True
                    extra = extra[2:]
                elif extra[:1] == ["dead-interval"] and len(extra) >= 2:
                    iface.ospf_dead_interval = int(extra[1])
                    saw_dead = True
                    extra = extra[2:]
                else:
                    extra = extra[1:]
            if saw_hello and not saw_dead and iface.ospf_dead_interval == 40:
                # Vendor default: dead interval follows hello at 4x when unset.
                iface.ospf_dead_interval = iface.ospf_hello_interval * 4
        elif path[:1] == ["reference-bandwidth"] and len(path) >= 2:
            ospf.reference_bandwidth = int(path[1])
        elif path[:1] == ["export"] and len(path) >= 2:
            # Juniper-style: export policy governs redistribution.
            from repro.config.model import Protocol, Redistribution

            ospf.redistributions.append(
                Redistribution(
                    source=Protocol.STATIC,
                    route_map=path[1],
                    source_file=config.filename,
                    source_line=number,
                )
            )
        else:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, " ".join(path),
                    "unrecognized ospf statement",
                )
            )


def _convert_bgp(config: JuniperConfig, device: Device) -> None:
    if not config.bgp_lines:
        return
    local_as: Optional[int] = None
    neighbor_lines: List[List[str]] = []
    #: ``set protocols bgp export POLICY`` — redistribution into BGP,
    #: with the statement's own line for provenance.
    export_lines: List[Tuple[str, int]] = []
    maximum_paths = 1
    for path, number in config.bgp_lines:
        if path[:1] == ["local-as"] and len(path) >= 2:
            local_as = int(path[1])
        elif path[:1] == ["group"] and len(path) >= 4 and path[2] == "neighbor":
            neighbor_lines.append(path[3:])
        elif path[:1] == ["export"] and len(path) >= 2:
            export_lines.append((path[1], number))
        elif path[:2] == ["multipath", "maximum-paths"] and len(path) >= 3:
            maximum_paths = int(path[2])
        else:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, " ".join(path),
                    "unrecognized bgp statement",
                )
            )
    if local_as is None:
        if neighbor_lines:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, "protocols bgp",
                    "bgp neighbors configured without local-as",
                )
            )
        return
    bgp = BgpProcess(local_as=local_as, maximum_paths=maximum_paths)
    device.bgp = bgp
    for policy, number in export_lines:
        # Same convention as the OSPF export conversion: a process-level
        # export policy redistributes main-RIB (static) routes, filtered
        # by the named policy.
        from repro.config.model import Protocol, Redistribution

        bgp.redistributions.append(
            Redistribution(
                source=Protocol.STATIC,
                route_map=policy,
                source_file=config.filename,
                source_line=number,
            )
        )
    for path in neighbor_lines:
        peer = Ip(path[0])
        neighbor = bgp.neighbors.get(peer)
        directive = path[1:] or ["(empty)"]
        source_line = config.definition_lines.get(("bgp-neighbor", path[0]), 0)
        if directive[0] == "peer-as" and len(directive) >= 2:
            if neighbor is None:
                bgp.neighbors[peer] = BgpNeighbor(
                    peer_ip=peer,
                    remote_as=int(directive[1]),
                    source_file=config.filename,
                    source_line=source_line,
                )
            else:
                neighbor.remote_as = int(directive[1])
            continue
        if neighbor is None:
            # Directive arrived before peer-as; create a placeholder that
            # conversion fixes up when peer-as arrives.
            neighbor = BgpNeighbor(
                peer_ip=peer,
                remote_as=0,
                source_file=config.filename,
                source_line=source_line,
            )
            bgp.neighbors[peer] = neighbor
        if directive[0] == "import" and len(directive) >= 2:
            neighbor.import_policy = directive[1]
        elif directive[0] == "export" and len(directive) >= 2:
            neighbor.export_policy = directive[1]
        elif directive[0] == "description":
            neighbor.description = " ".join(directive[1:])
        elif directive[0] == "multihop":
            neighbor.ebgp_multihop = True
        else:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, " ".join(path),
                    "unrecognized bgp neighbor statement",
                )
            )
    # Drop neighbors that never got a peer-as (cannot establish).
    for peer in [p for p, n in bgp.neighbors.items() if n.remote_as == 0]:
        config.warnings.append(
            ParseWarning(
                device.hostname, 0, f"neighbor {peer}",
                "bgp neighbor has no peer-as; session cannot establish",
            )
        )
        del bgp.neighbors[peer]


def _convert_routing_options(config: JuniperConfig, device: Device) -> None:
    for path, number in config.routing_option_lines:
        if path[:1] == ["router-id"] and len(path) >= 2:
            router_id = Ip(path[1])
            if device.bgp is not None:
                device.bgp.router_id = router_id
            if device.ospf is not None:
                device.ospf.router_id = router_id
            if device.bgp is None and device.ospf is None:
                device.ospf = OspfProcess(router_id=router_id)
        elif path[:2] == ["static", "route"] and len(path) >= 5:
            prefix = Prefix(path[2])
            preference = 5  # juniper static default preference
            next_hop_ip = None
            next_hop_interface = None
            rest = path[3:]
            while rest:
                if rest[0] == "next-hop" and len(rest) >= 2:
                    if rest[1] == "discard":
                        next_hop_interface = "discard"
                    else:
                        next_hop_ip = Ip(rest[1])
                    rest = rest[2:]
                elif rest[0] == "preference" and len(rest) >= 2:
                    preference = int(rest[1])
                    rest = rest[2:]
                else:
                    rest = rest[1:]
            device.static_routes.append(
                StaticRoute(
                    prefix=prefix,
                    next_hop_ip=next_hop_ip,
                    next_hop_interface=next_hop_interface,
                    admin_distance=preference,
                    source_file=config.filename,
                    source_line=number,
                )
            )
        else:
            config.warnings.append(
                ParseWarning(
                    device.hostname, 0, " ".join(path),
                    "unrecognized routing-options statement",
                )
            )


def _convert_policy(config: JuniperConfig, name: str) -> RouteMap:
    route_map = RouteMap(
        name=name,
        source_file=config.filename,
        source_line=config.definition_lines.get(("route-map", name), 0),
    )
    for seq, term_name in enumerate(config.policy_term_order[name], start=1):
        term = config.policy_terms[name][term_name]
        action = Action.PERMIT
        sets: List[RouteMapSet] = []
        for then in term.thens:
            if then[:1] == ["accept"]:
                action = Action.PERMIT
            elif then[:1] == ["reject"]:
                action = Action.DENY
            elif then[:1] == ["local-preference"] and len(then) >= 2:
                sets.append(RouteMapSet(SetKind.LOCAL_PREF, then[1]))
            elif then[:1] == ["metric"] and len(then) >= 2:
                sets.append(RouteMapSet(SetKind.METRIC, then[1]))
            elif then[:2] == ["community", "add"] and len(then) >= 3:
                sets.append(RouteMapSet(SetKind.COMMUNITY_ADDITIVE, then[2]))
            elif then[:2] == ["community", "set"] and len(then) >= 3:
                sets.append(RouteMapSet(SetKind.COMMUNITY, then[2]))
            elif then[:2] == ["as-path-prepend"] and len(then) >= 2:
                sets.append(RouteMapSet(SetKind.AS_PATH_PREPEND, " ".join(then[1:])))
        matches: List[RouteMapMatch] = []
        for from_ in term.froms:
            if from_[:1] == ["prefix-list"] and len(from_) >= 2:
                matches.append(RouteMapMatch(MatchKind.PREFIX_LIST, from_[1]))
            elif from_[:1] == ["community"] and len(from_) >= 2:
                matches.append(RouteMapMatch(MatchKind.COMMUNITY, from_[1]))
            elif from_[:1] == ["protocol"] and len(from_) >= 2:
                matches.append(RouteMapMatch(MatchKind.PROTOCOL, from_[1]))
        route_map.clauses.append(
            RouteMapClause(
                seq=seq * 10,
                action=action,
                matches=matches,
                sets=sets,
                source_file=config.filename,
                source_line=config.term_lines.get(("policy", name, term_name), 0),
            )
        )
    return route_map


def _convert_filter(config: JuniperConfig, name: str) -> Acl:
    acl = Acl(
        name=name,
        source_file=config.filename,
        source_line=config.definition_lines.get(("acl", name), 0),
    )
    for term_name in config.filter_term_order[name]:
        term = config.filter_terms[name][term_name]
        line = _term_to_acl_line(
            term,
            f"term {term_name}",
            source_file=config.filename,
            source_line=config.term_lines.get(("filter", name, term_name), 0),
        )
        if line is not None:
            acl.lines.append(line)
    return acl


def _term_to_acl_line(
    term: JuniperTerm,
    label: str,
    source_file: str = "",
    source_line: int = 0,
) -> Optional[AclLine]:
    action = Action.PERMIT
    for then in term.thens:
        if then[:1] == ["accept"]:
            action = Action.PERMIT
        elif then[:1] in (["discard"], ["reject"]):
            action = Action.DENY
    protocol = None
    src = dst = None
    src_ports: List[Tuple[int, int]] = []
    dst_ports: List[Tuple[int, int]] = []
    established = False
    for from_ in term.froms:
        if from_[:1] == ["protocol"] and len(from_) >= 2:
            protocol = _PROTOCOL_NAMES.get(from_[1])
        elif from_[:1] == ["source-address"] and len(from_) >= 2:
            src = Prefix(from_[1])
        elif from_[:1] == ["destination-address"] and len(from_) >= 2:
            dst = Prefix(from_[1])
        elif from_[:1] == ["source-port"] and len(from_) >= 2:
            src_ports.append(_parse_port_token(from_[1]))
        elif from_[:1] == ["destination-port"] and len(from_) >= 2:
            dst_ports.append(_parse_port_token(from_[1]))
        elif from_[:2] == ["tcp-flags", "established"] or from_[:1] == ["tcp-established"]:
            established = True
    return AclLine(
        action=action,
        protocol=protocol,
        src=src,
        dst=dst,
        src_ports=tuple(src_ports),
        dst_ports=tuple(dst_ports),
        established=established,
        name=label,
        source_file=source_file,
        source_line=source_line,
    )


def _parse_port_token(token: str) -> Tuple[int, int]:
    if "-" in token:
        low, _, high = token.partition("-")
        return int(low), int(high)
    return int(token), int(token)


def _convert_zone_policies(config: JuniperConfig, device: Device) -> None:
    """Each zone pair becomes a synthetic ACL built from its policies."""
    for (from_zone, to_zone), policies in config.zone_policies.items():
        acl_name = f"~zone~{from_zone}~{to_zone}~"
        acl = Acl(name=acl_name, source_file=config.filename)
        for policy_name, term in policies.items():
            line = _term_to_acl_line(
                term,
                f"policy {policy_name}",
                source_file=config.filename,
                source_line=config.term_lines.get(
                    ("security-policy", f"{from_zone}|{to_zone}", policy_name), 0
                ),
            )
            if line is not None:
                acl.lines.append(line)
            if line is not None and not acl.source_line:
                acl.source_line = line.source_line
        device.acls[acl_name] = acl
        device.zone_policies[(from_zone, to_zone)] = ZonePolicy(
            from_zone=from_zone, to_zone=to_zone, acl=acl_name,
            source_file=config.filename, source_line=acl.source_line,
        )
        for zone_name in (from_zone, to_zone):
            device.zones.setdefault(zone_name, Zone(name=zone_name))
