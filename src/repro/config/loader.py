"""Snapshot loading: detect the vendor syntax of each configuration file,
parse it, and assemble a vendor-independent :class:`Snapshot`.

A snapshot is how Batfish consumes a network: a set of configuration
files, one per device (the paper's continuous-validation use-case runs on
"periodic snapshots of network configurations, which most organizations
already have").
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.config.cisco import parse_cisco
from repro.config.juniper import parse_juniper
from repro.config.model import Device, ParseWarning, Snapshot
from repro.parallel import pmap

#: Snapshots smaller than this parse inline; the pool only pays off
#: once per-file parse work dwarfs fork+pickle overhead.
_MIN_PARALLEL_FILES = 8


def detect_syntax(text: str) -> str:
    """Heuristically classify configuration text as ciscoish/juniperish.

    Set-style lines dominate juniperish files; block keywords dominate
    ciscoish ones. Ambiguous files default to ciscoish (the more common
    syntax), mirroring real-world format sniffing.
    """
    set_lines = 0
    block_lines = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("!", "#")):
            continue
        if line.startswith("set "):
            set_lines += 1
        elif line.split()[0] in (
            "hostname", "interface", "router", "ip", "route-map",
            "ntp", "zone", "zone-pair", "snmp-server", "access-list",
        ):
            block_lines += 1
    return "juniperish" if set_lines > block_lines else "ciscoish"


def parse_config_text(text: str, filename: str = "<config>"):
    """Parse one configuration file of either syntax.

    Returns ``(device, warnings)``.
    """
    if detect_syntax(text) == "juniperish":
        return parse_juniper(text, filename)
    return parse_cisco(text, filename)


def _parse_one(item: Tuple[str, str]):
    """Per-file parse worker (module-level so pmap can fan it out)."""
    filename, text = item
    vendor = detect_syntax(text)
    if vendor == "juniperish":
        device, warnings = parse_juniper(text, filename)
    else:
        device, warnings = parse_cisco(text, filename)
    # File attribution survives normalization: every warning knows which
    # snapshot file produced it (Session.parse_warnings surfaces this).
    for warning in warnings:
        if not warning.source_file:
            warning.source_file = filename
    if obs.enabled():
        obs.add("parse.files")
        obs.add(f"parse.lines.{vendor}", text.count("\n") + 1)
        obs.add("parse.warnings", len(warnings))
    return device, warnings


def _parse_all(
    configs: Dict[str, str],
    filenames: List[str],
    jobs: Optional[int],
    cache,
) -> List[Tuple[Device, List[ParseWarning]]]:
    """Parse every file, consulting the per-device memo when a cache is
    supplied.

    Each file's parse result is content-addressed independently
    (:func:`repro.core.cache.device_key`), so editing one file of a
    large snapshot reparses only that file — the unit of reuse the
    incremental delta engine is built on. Entries are pinned via
    ``cache.protect`` for the duration so concurrent stores can't evict
    a file we are about to load.
    """
    if cache is None:
        return pmap(
            _parse_one,
            [(filename, configs[filename]) for filename in filenames],
            jobs=jobs,
            min_items=_MIN_PARALLEL_FILES,
        )
    from repro.core.cache import device_key

    keys = {f: device_key(f, configs[f]) for f in filenames}
    results: Dict[str, Tuple[Device, List[ParseWarning]]] = {}
    with cache.protect(("device", keys[f]) for f in filenames):
        missed = []
        for filename in filenames:
            entry = cache.load("device", keys[filename])
            if entry is not None:
                results[filename] = entry
                if obs.enabled():
                    obs.add("delta.parse_memo_hits")
            else:
                missed.append(filename)
        if missed:
            parsed = pmap(
                _parse_one,
                [(filename, configs[filename]) for filename in missed],
                jobs=jobs,
                min_items=_MIN_PARALLEL_FILES,
            )
            for filename, result in zip(missed, parsed):
                cache.store("device", keys[filename], result)
                results[filename] = result
    return [results[filename] for filename in filenames]


def load_snapshot_from_texts(
    configs: Dict[str, str], jobs: Optional[int] = None, cache=None
) -> Snapshot:
    """Build a snapshot from ``{filename_or_hostname: config_text}``.

    Per-file parsing fans out over a process pool (``REPRO_JOBS`` /
    ``jobs``); files are parsed independently and reassembled in sorted
    filename order, so the result is identical to a serial run. With a
    :class:`~repro.core.cache.SnapshotCache`, each file's parse is also
    memoized on its content hash, so re-loading a snapshot with a few
    edited files reparses only those files.

    Duplicate hostnames are flagged (the later file wins), mirroring the
    tool's behaviour on misassembled snapshot directories.
    """
    snapshot = Snapshot()
    filenames = sorted(configs)
    with obs.span("parse", files=len(filenames)):
        parsed = _parse_all(configs, filenames, jobs, cache)
        for filename, (device, warnings) in zip(filenames, parsed):
            snapshot.warnings.extend(warnings)
            if device.hostname in snapshot.devices:
                snapshot.warnings.append(
                    ParseWarning(
                        hostname=device.hostname,
                        line_number=0,
                        text=filename,
                        comment="duplicate hostname in snapshot; keeping the last file",
                        source_file=filename,
                    )
                )
                if obs.enabled():
                    obs.add("parse.warnings")
            snapshot.devices[device.hostname] = device
            snapshot.sources[filename] = device.hostname
    return snapshot


def read_config_dir(path: str, suffix: Optional[str] = ".cfg") -> Dict[str, str]:
    """Read every ``*.cfg`` (by default) file under ``path`` as
    ``{filename: text}`` without parsing (the caching layer hashes raw
    texts before deciding whether parsing is needed at all)."""
    configs: Dict[str, str] = {}
    for entry in sorted(os.listdir(path)):
        if suffix is not None and not entry.endswith(suffix):
            continue
        full = os.path.join(path, entry)
        if not os.path.isfile(full):
            continue
        with open(full) as handle:
            configs[entry] = handle.read()
    if not configs:
        raise FileNotFoundError(f"no configuration files found under {path!r}")
    return configs


def load_snapshot_from_dir(
    path: str, suffix: Optional[str] = ".cfg", jobs: Optional[int] = None,
    cache=None,
) -> Snapshot:
    """Load every ``*.cfg`` (by default) file under ``path`` as a device
    configuration."""
    return load_snapshot_from_texts(
        read_config_dir(path, suffix), jobs=jobs, cache=cache
    )
