"""The vendor-independent configuration model (Stage 1).

Configuration text, whose syntax is specific to a router OS, is parsed by
the vendor parsers (:mod:`repro.config.cisco`, :mod:`repro.config.juniper`)
into vendor-specific structures and then *converted* into the classes in
this module. Everything downstream — data-plane generation, BDD analysis,
and the configuration questions of Lesson 5 — operates on this model only.

The model is deliberately deep (per Lesson 5, "deep configuration modeling
has many applications"): it captures not just what affects forwarding
(interfaces, ACLs, routing processes, policies, NAT, zones) but also
management-plane settings (NTP/DNS servers) that configuration-hygiene
questions check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdr.ip import Ip, Prefix


class Action(enum.Enum):
    """Permit/deny disposition used by ACL lines, prefix lists, and
    route-map clauses."""

    PERMIT = "permit"
    DENY = "deny"


class Protocol(enum.Enum):
    """Routing protocols recognized by the control-plane model, in the
    role of route provenance."""

    CONNECTED = "connected"
    STATIC = "static"
    OSPF = "ospf"
    OSPF_IA = "ospfIA"
    OSPF_E2 = "ospfE2"
    BGP = "bgp"
    IBGP = "ibgp"
    AGGREGATE = "aggregate"


# ----------------------------------------------------------------------
# ACLs


@dataclass(frozen=True)
class AclLine:
    """One line of an access control list.

    ``src_wildcard``/``dst_wildcard`` use prefix semantics (already
    normalized from vendor-specific wildcard masks by the parsers).
    ``established`` models the classic "TCP responses only" match
    (ACK or RST set) — one source of the *uninteresting violations*
    usability lesson.
    """

    action: Action
    protocol: Optional[int] = None  # None = any IP protocol
    src: Optional[Prefix] = None  # None = any
    dst: Optional[Prefix] = None
    src_ports: Tuple[Tuple[int, int], ...] = ()
    dst_ports: Tuple[Tuple[int, int], ...] = ()
    established: bool = False
    icmp_type: Optional[int] = None
    name: str = ""  # rendering of the original line, for annotations
    # Source-level provenance carried through normalization (§7.3: the
    # compiler-metadata technique — vendor-independent structures keep a
    # pointer back to the configuration text they came from).
    source_file: str = ""
    source_line: int = 0


@dataclass
class Acl:
    """A named ACL: ordered lines with first-match semantics and an
    implicit deny-all at the end."""

    name: str
    lines: List[AclLine] = field(default_factory=list)
    source_file: str = ""
    source_line: int = 0


# ----------------------------------------------------------------------
# Routing policy structures


@dataclass(frozen=True)
class PrefixListLine:
    action: Action
    prefix: Prefix
    ge: Optional[int] = None  # minimum matched length (inclusive)
    le: Optional[int] = None  # maximum matched length (inclusive)

    def matches(self, prefix: Prefix) -> bool:
        """Whether a concrete route prefix matches this line."""
        if not self.prefix.contains_prefix(prefix):
            return False
        low = self.ge if self.ge is not None else self.prefix.length
        high = self.le if self.le is not None else (
            32 if self.ge is not None else self.prefix.length
        )
        # A bare prefix-list entry matches the exact length only; ge/le
        # widen the match to a length band (vendor-documented semantics).
        if self.ge is None and self.le is None:
            return prefix.length == self.prefix.length
        return low <= prefix.length <= high


@dataclass
class PrefixList:
    name: str
    lines: List[PrefixListLine] = field(default_factory=list)
    source_file: str = ""
    source_line: int = 0

    def permits(self, prefix: Prefix) -> bool:
        """First-match evaluation with implicit deny."""
        for line in self.lines:
            if line.matches(prefix):
                return line.action is Action.PERMIT
        return False


@dataclass
class CommunityList:
    """A standard community list: permits a route if the route carries
    any of the listed communities."""

    name: str
    communities: List[str] = field(default_factory=list)
    source_file: str = ""
    source_line: int = 0

    def permits(self, route_communities: Sequence[str]) -> bool:
        return any(c in self.communities for c in route_communities)


@dataclass
class AsPathList:
    """An AS-path access list holding a regular expression over the
    space-separated AS path rendering (``_`` matches a boundary,
    per vendor convention)."""

    name: str
    regex: str = ""

    def permits(self, as_path: Sequence[int]) -> bool:
        import re

        # Vendor semantics: '^' anchors to path start, '$' to end, and
        # '_' matches any AS boundary (start, end, or separator). We
        # render the path space-separated so '^'/'$' keep their native
        # regex meaning and '_' becomes a boundary alternation.
        rendering = " ".join(str(asn) for asn in as_path)
        pattern = self.regex.replace("_", "(?:^| |$)")
        return re.search(pattern, rendering) is not None


class MatchKind(enum.Enum):
    PREFIX_LIST = "prefix-list"
    COMMUNITY = "community"
    AS_PATH = "as-path"
    TAG = "tag"
    METRIC = "metric"
    PROTOCOL = "protocol"


@dataclass(frozen=True)
class RouteMapMatch:
    kind: MatchKind
    value: str  # structure name, or literal rendered as a string


class SetKind(enum.Enum):
    LOCAL_PREF = "local-preference"
    METRIC = "metric"
    COMMUNITY = "community"
    COMMUNITY_ADDITIVE = "community-additive"
    AS_PATH_PREPEND = "as-path-prepend"
    NEXT_HOP = "next-hop"
    TAG = "tag"
    WEIGHT = "weight"


@dataclass(frozen=True)
class RouteMapSet:
    kind: SetKind
    value: str


@dataclass
class RouteMapClause:
    """One sequenced clause: all matches must hold (AND); on a permit
    clause the sets are applied and the route is accepted."""

    seq: int
    action: Action
    matches: List[RouteMapMatch] = field(default_factory=list)
    sets: List[RouteMapSet] = field(default_factory=list)
    source_file: str = ""
    source_line: int = 0


@dataclass
class RouteMap:
    name: str
    clauses: List[RouteMapClause] = field(default_factory=list)
    source_file: str = ""
    source_line: int = 0

    def sorted_clauses(self) -> List[RouteMapClause]:
        return sorted(self.clauses, key=lambda c: c.seq)


# ----------------------------------------------------------------------
# Routing processes


@dataclass(frozen=True)
class StaticRoute:
    prefix: Prefix
    next_hop_ip: Optional[Ip] = None
    next_hop_interface: Optional[str] = None  # includes null interfaces
    admin_distance: int = 1
    tag: int = 0
    source_file: str = ""
    source_line: int = 0

    @property
    def is_null_routed(self) -> bool:
        iface = (self.next_hop_interface or "").lower()
        return iface.startswith("null") or iface == "discard"


@dataclass(frozen=True)
class Redistribution:
    """Route redistribution into a protocol, optionally filtered and
    transformed by a route map."""

    source: Protocol
    route_map: Optional[str] = None
    metric: Optional[int] = None
    source_file: str = ""
    source_line: int = 0


@dataclass
class OspfProcess:
    process_id: str = "1"
    router_id: Optional[Ip] = None
    reference_bandwidth: int = 100_000_000  # 100 Mbps, classic default
    redistributions: List[Redistribution] = field(default_factory=list)
    max_metric_stub: bool = False
    default_information_originate: bool = False


@dataclass
class BgpNeighbor:
    peer_ip: Ip
    remote_as: int
    description: str = ""
    import_policy: Optional[str] = None  # route-map name
    export_policy: Optional[str] = None
    next_hop_self: bool = False
    send_community: bool = False
    route_reflector_client: bool = False
    ebgp_multihop: bool = False
    update_source: Optional[str] = None  # interface name
    local_as: Optional[int] = None
    source_file: str = ""
    source_line: int = 0


@dataclass
class BgpProcess:
    local_as: int
    router_id: Optional[Ip] = None
    neighbors: Dict[Ip, BgpNeighbor] = field(default_factory=dict)
    networks: List[Prefix] = field(default_factory=list)
    redistributions: List[Redistribution] = field(default_factory=list)
    maximum_paths: int = 1  # >1 enables BGP multipath


# ----------------------------------------------------------------------
# NAT and zones


class NatKind(enum.Enum):
    SOURCE = "source"
    DESTINATION = "destination"
    STATIC = "static"


@dataclass(frozen=True)
class NatRule:
    """A NAT rule on an interface: packets matching ``match_acl`` get the
    relevant address field rewritten into ``pool`` (a prefix; a /32 means
    a fixed rewrite)."""

    kind: NatKind
    match_acl: Optional[str]  # None = match everything
    pool: Prefix
    # Static NAT maps a specific inside prefix to an outside prefix 1:1.
    static_inside: Optional[Prefix] = None


@dataclass
class Zone:
    """A firewall zone: a named set of interfaces (§4.2.3)."""

    name: str
    interfaces: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class ZonePolicy:
    """Filtering applied to traffic from one zone to another, expressed
    as an ACL reference. Absence of a policy means default-deny across
    zones (and default-permit within a zone)."""

    from_zone: str
    to_zone: str
    acl: str
    source_file: str = ""
    source_line: int = 0


# ----------------------------------------------------------------------
# Interfaces and devices


@dataclass
class Interface:
    name: str
    address: Optional[Ip] = None
    prefix_length: Optional[int] = None
    enabled: bool = True
    description: str = ""
    bandwidth: int = 1_000_000_000  # bps
    mtu: int = 1500
    # OSPF per-interface settings.
    ospf_enabled: bool = False
    ospf_area: int = 0
    ospf_cost: Optional[int] = None
    ospf_passive: bool = False
    ospf_hello_interval: int = 10  # seconds (vendor default)
    ospf_dead_interval: int = 40
    # Filters and transformations.
    incoming_acl: Optional[str] = None
    outgoing_acl: Optional[str] = None
    src_nat_rules: List[NatRule] = field(default_factory=list)
    dst_nat_rules: List[NatRule] = field(default_factory=list)
    zone: Optional[str] = None
    source_file: str = ""
    source_line: int = 0

    @property
    def prefix(self) -> Optional[Prefix]:
        """The connected prefix of the interface, if it has an address."""
        if self.address is None or self.prefix_length is None:
            return None
        return Prefix(self.address, self.prefix_length)

    @property
    def is_loopback(self) -> bool:
        return self.name.lower().startswith(("lo", "loopback"))


class DeviceRole(enum.Enum):
    ROUTER = "router"
    FIREWALL = "firewall"
    LOAD_BALANCER = "load_balancer"


@dataclass
class Device:
    """The vendor-independent configuration of one network device."""

    hostname: str
    vendor: str = "ciscoish"
    role: DeviceRole = DeviceRole.ROUTER
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    acls: Dict[str, Acl] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    as_path_lists: Dict[str, AsPathList] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    static_routes: List[StaticRoute] = field(default_factory=list)
    ospf: Optional[OspfProcess] = None
    bgp: Optional[BgpProcess] = None
    zones: Dict[str, Zone] = field(default_factory=dict)
    zone_policies: Dict[Tuple[str, str], ZonePolicy] = field(default_factory=dict)
    ntp_servers: List[Ip] = field(default_factory=list)
    dns_servers: List[Ip] = field(default_factory=list)
    snmp_communities: List[str] = field(default_factory=list)
    config_lines: int = 0  # LoC of the original text, for reporting
    #: In-source lint suppressions: (rule_id, source_file, source_line)
    #: captured from ``lint-disable`` comments; rule_id "*" disables all
    #: rules for this device.
    lint_suppressions: List[Tuple[str, str, int]] = field(default_factory=list)

    def interface_ips(self) -> List[Tuple[str, Ip, int]]:
        """(interface, address, prefix-length) for all addressed
        interfaces. Used by duplicate-IP and topology inference."""
        return [
            (name, iface.address, iface.prefix_length)
            for name, iface in sorted(self.interfaces.items())
            if iface.address is not None and iface.enabled
        ]

    def zone_of_interface(self, interface_name: str) -> Optional[str]:
        iface = self.interfaces.get(interface_name)
        if iface is not None and iface.zone is not None:
            return iface.zone
        for zone in self.zones.values():
            if interface_name in zone.interfaces:
                return zone.name
        return None

    def router_id(self) -> Ip:
        """Effective router id: explicit BGP/OSPF id, else the highest
        loopback address, else the highest interface address — the
        vendor-documented fallback chain."""
        if self.bgp is not None and self.bgp.router_id is not None:
            return self.bgp.router_id
        if self.ospf is not None and self.ospf.router_id is not None:
            return self.ospf.router_id
        loopbacks = [
            i.address
            for i in self.interfaces.values()
            if i.is_loopback and i.address is not None
        ]
        if loopbacks:
            return max(loopbacks)
        addresses = [
            i.address for i in self.interfaces.values() if i.address is not None
        ]
        if addresses:
            return max(addresses)
        return Ip(0)


@dataclass
class ParseWarning:
    """A non-fatal issue found while parsing or converting configuration
    (unrecognized lines, suspicious constructs). Mirrors Batfish's
    parse-warning surface."""

    hostname: str
    line_number: int
    text: str
    comment: str
    #: Snapshot file the warning came from (stamped by the loader, so
    #: answers can point at the exact source file:line).
    source_file: str = ""

    def describe(self) -> str:
        location = self.source_file or self.hostname
        if self.line_number:
            location += f":{self.line_number}"
        return f"{location}: {self.comment} ({self.text.strip()})"


@dataclass
class Snapshot:
    """A parsed network snapshot: all devices plus parse metadata."""

    devices: Dict[str, Device] = field(default_factory=dict)
    warnings: List[ParseWarning] = field(default_factory=list)
    #: filename -> hostname for each input file, in the order files were
    #: assembled. The delta engine uses this to map edited files onto
    #: devices; duplicate hostnames make it non-injective (the later
    #: file wins in :attr:`devices`), which delta treats as a full-
    #: recompute signal.
    sources: Dict[str, str] = field(default_factory=dict)

    def device(self, hostname: str) -> Device:
        return self.devices[hostname]

    def hostnames(self) -> List[str]:
        return sorted(self.devices)
