"""Tracking of configuration-structure definitions and references.

Lesson 5: checking "whether all referenced routing policies are defined"
and finding unused structures are among the most used analyses, because
errors localize trivially. This module derives both directly from the
vendor-independent model: definitions are the names present in a device's
structure dictionaries; references are every usage point (an interface
using an ACL, a BGP neighbor using a route map, a route-map clause using
a prefix list, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.config.model import Device, MatchKind


class StructureType(enum.Enum):
    ACL = "acl"
    PREFIX_LIST = "prefix-list"
    COMMUNITY_LIST = "community-list"
    AS_PATH_LIST = "as-path-list"
    ROUTE_MAP = "route-map"
    ZONE = "zone"
    INTERFACE = "interface"


@dataclass(frozen=True)
class StructureRef:
    """One reference from a usage context to a named structure."""

    hostname: str
    structure_type: StructureType
    name: str
    context: str  # human-readable description of the referencing spot
    #: Location of the referencing configuration statement.
    source_file: str = ""
    source_line: int = 0
    #: The structure *containing* the reference, when the reference is
    #: made from inside another named structure (e.g. a route-map clause
    #: matching a prefix-list). None for references from non-structure
    #: sites (interfaces, routing processes, zone pairs, static routes).
    origin: Optional[Tuple[StructureType, str]] = None


def iter_references(device: Device) -> Iterator[StructureRef]:
    """Yield every structure reference made by a device's configuration."""
    host = device.hostname
    for iface in device.interfaces.values():
        where = (iface.source_file, iface.source_line)
        if iface.incoming_acl:
            yield StructureRef(
                host, StructureType.ACL, iface.incoming_acl,
                f"interface {iface.name} incoming filter", *where,
            )
        if iface.outgoing_acl:
            yield StructureRef(
                host, StructureType.ACL, iface.outgoing_acl,
                f"interface {iface.name} outgoing filter", *where,
            )
        if iface.zone:
            yield StructureRef(
                host, StructureType.ZONE, iface.zone,
                f"interface {iface.name} zone membership", *where,
            )
        for rule in iface.src_nat_rules + iface.dst_nat_rules:
            if rule.match_acl:
                yield StructureRef(
                    host, StructureType.ACL, rule.match_acl,
                    f"interface {iface.name} NAT rule match", *where,
                )
    if device.bgp is not None:
        for neighbor in device.bgp.neighbors.values():
            where = (neighbor.source_file, neighbor.source_line)
            if neighbor.import_policy:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, neighbor.import_policy,
                    f"bgp neighbor {neighbor.peer_ip} import policy", *where,
                )
            if neighbor.export_policy:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, neighbor.export_policy,
                    f"bgp neighbor {neighbor.peer_ip} export policy", *where,
                )
            if neighbor.update_source:
                yield StructureRef(
                    host, StructureType.INTERFACE, neighbor.update_source,
                    f"bgp neighbor {neighbor.peer_ip} update-source", *where,
                )
        for redist in device.bgp.redistributions:
            if redist.route_map:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, redist.route_map,
                    f"bgp redistribute {redist.source.value}",
                    redist.source_file, redist.source_line,
                )
    if device.ospf is not None:
        for redist in device.ospf.redistributions:
            if redist.route_map:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, redist.route_map,
                    f"ospf redistribute {redist.source.value}",
                    redist.source_file, redist.source_line,
                )
    for route_map in device.route_maps.values():
        for clause in route_map.clauses:
            for match in clause.matches:
                ref_type = {
                    MatchKind.PREFIX_LIST: StructureType.PREFIX_LIST,
                    MatchKind.COMMUNITY: StructureType.COMMUNITY_LIST,
                    MatchKind.AS_PATH: StructureType.AS_PATH_LIST,
                }.get(match.kind)
                if ref_type is not None:
                    yield StructureRef(
                        host, ref_type, match.value,
                        f"route-map {route_map.name} clause {clause.seq} match",
                        clause.source_file, clause.source_line,
                        origin=(StructureType.ROUTE_MAP, route_map.name),
                    )
    for policy in device.zone_policies.values():
        where = (policy.source_file, policy.source_line)
        yield StructureRef(
            host, StructureType.ACL, policy.acl,
            f"zone-pair {policy.from_zone} -> {policy.to_zone} policy", *where,
        )
        for zone_name in (policy.from_zone, policy.to_zone):
            yield StructureRef(
                host, StructureType.ZONE, zone_name,
                f"zone-pair {policy.from_zone} -> {policy.to_zone}", *where,
            )
    for static in device.static_routes:
        if static.next_hop_interface and not static.is_null_routed:
            yield StructureRef(
                host, StructureType.INTERFACE, static.next_hop_interface,
                f"static route {static.prefix} next-hop interface",
                static.source_file, static.source_line,
            )


def _definitions(device: Device, structure_type: StructureType) -> List[str]:
    return {
        StructureType.ACL: lambda: list(device.acls),
        StructureType.PREFIX_LIST: lambda: list(device.prefix_lists),
        StructureType.COMMUNITY_LIST: lambda: list(device.community_lists),
        StructureType.AS_PATH_LIST: lambda: list(device.as_path_lists),
        StructureType.ROUTE_MAP: lambda: list(device.route_maps),
        StructureType.ZONE: lambda: list(device.zones),
        StructureType.INTERFACE: lambda: list(device.interfaces),
    }[structure_type]()


def undefined_references(device: Device) -> List[StructureRef]:
    """References to structures that are not defined on the device."""
    return [
        ref
        for ref in iter_references(device)
        if ref.name not in _definitions(device, ref.structure_type)
    ]


@dataclass(frozen=True)
class UnusedStructure:
    hostname: str
    structure_type: StructureType
    name: str


_CHECKED_FOR_UNUSED = (
    StructureType.ACL,
    StructureType.PREFIX_LIST,
    StructureType.COMMUNITY_LIST,
    StructureType.AS_PATH_LIST,
    StructureType.ROUTE_MAP,
    StructureType.ZONE,
)


def unused_structures(device: Device) -> List[UnusedStructure]:
    """Defined structures not reachable from any active reference site.

    Transitive-aware: a reference made from *inside* another structure
    (a route-map clause matching a prefix-list) only counts if the
    containing structure is itself used — so a prefix-list referenced
    only by an unused route-map is reported as unused too, instead of
    being masked by the dead reference.
    """
    used: Set[Tuple[StructureType, str]] = set()
    deps: Dict[Tuple[StructureType, str], Set[Tuple[StructureType, str]]] = {}
    for ref in iter_references(device):
        key = (ref.structure_type, ref.name)
        if ref.origin is None:
            used.add(key)
        else:
            deps.setdefault(ref.origin, set()).add(key)
    # Propagate usage through structure-to-structure references until a
    # fixpoint (route maps are currently the only containers, but the
    # loop handles deeper chains should the model grow them).
    changed = True
    while changed:
        changed = False
        for origin, targets in deps.items():
            if origin in used and not targets <= used:
                used |= targets
                changed = True
    unused: List[UnusedStructure] = []
    for structure_type in _CHECKED_FOR_UNUSED:
        for name in _definitions(device, structure_type):
            if (structure_type, name) not in used:
                unused.append(
                    UnusedStructure(device.hostname, structure_type, name)
                )
    return unused
