"""Tracking of configuration-structure definitions and references.

Lesson 5: checking "whether all referenced routing policies are defined"
and finding unused structures are among the most used analyses, because
errors localize trivially. This module derives both directly from the
vendor-independent model: definitions are the names present in a device's
structure dictionaries; references are every usage point (an interface
using an ACL, a BGP neighbor using a route map, a route-map clause using
a prefix list, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.config.model import Device, MatchKind


class StructureType(enum.Enum):
    ACL = "acl"
    PREFIX_LIST = "prefix-list"
    COMMUNITY_LIST = "community-list"
    AS_PATH_LIST = "as-path-list"
    ROUTE_MAP = "route-map"
    ZONE = "zone"
    INTERFACE = "interface"


@dataclass(frozen=True)
class StructureRef:
    """One reference from a usage context to a named structure."""

    hostname: str
    structure_type: StructureType
    name: str
    context: str  # human-readable description of the referencing spot


def iter_references(device: Device) -> Iterator[StructureRef]:
    """Yield every structure reference made by a device's configuration."""
    host = device.hostname
    for iface in device.interfaces.values():
        if iface.incoming_acl:
            yield StructureRef(
                host, StructureType.ACL, iface.incoming_acl,
                f"interface {iface.name} incoming filter",
            )
        if iface.outgoing_acl:
            yield StructureRef(
                host, StructureType.ACL, iface.outgoing_acl,
                f"interface {iface.name} outgoing filter",
            )
        if iface.zone:
            yield StructureRef(
                host, StructureType.ZONE, iface.zone,
                f"interface {iface.name} zone membership",
            )
        for rule in iface.src_nat_rules + iface.dst_nat_rules:
            if rule.match_acl:
                yield StructureRef(
                    host, StructureType.ACL, rule.match_acl,
                    f"interface {iface.name} NAT rule match",
                )
    if device.bgp is not None:
        for neighbor in device.bgp.neighbors.values():
            if neighbor.import_policy:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, neighbor.import_policy,
                    f"bgp neighbor {neighbor.peer_ip} import policy",
                )
            if neighbor.export_policy:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, neighbor.export_policy,
                    f"bgp neighbor {neighbor.peer_ip} export policy",
                )
            if neighbor.update_source:
                yield StructureRef(
                    host, StructureType.INTERFACE, neighbor.update_source,
                    f"bgp neighbor {neighbor.peer_ip} update-source",
                )
        for redist in device.bgp.redistributions:
            if redist.route_map:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, redist.route_map,
                    f"bgp redistribute {redist.source.value}",
                )
    if device.ospf is not None:
        for redist in device.ospf.redistributions:
            if redist.route_map:
                yield StructureRef(
                    host, StructureType.ROUTE_MAP, redist.route_map,
                    f"ospf redistribute {redist.source.value}",
                )
    for route_map in device.route_maps.values():
        for clause in route_map.clauses:
            for match in clause.matches:
                ref_type = {
                    MatchKind.PREFIX_LIST: StructureType.PREFIX_LIST,
                    MatchKind.COMMUNITY: StructureType.COMMUNITY_LIST,
                    MatchKind.AS_PATH: StructureType.AS_PATH_LIST,
                }.get(match.kind)
                if ref_type is not None:
                    yield StructureRef(
                        host, ref_type, match.value,
                        f"route-map {route_map.name} clause {clause.seq} match",
                    )
    for policy in device.zone_policies.values():
        yield StructureRef(
            host, StructureType.ACL, policy.acl,
            f"zone-pair {policy.from_zone} -> {policy.to_zone} policy",
        )
        for zone_name in (policy.from_zone, policy.to_zone):
            yield StructureRef(
                host, StructureType.ZONE, zone_name,
                f"zone-pair {policy.from_zone} -> {policy.to_zone}",
            )
    for static in device.static_routes:
        if static.next_hop_interface and not static.is_null_routed:
            yield StructureRef(
                host, StructureType.INTERFACE, static.next_hop_interface,
                f"static route {static.prefix} next-hop interface",
            )


def _definitions(device: Device, structure_type: StructureType) -> List[str]:
    return {
        StructureType.ACL: lambda: list(device.acls),
        StructureType.PREFIX_LIST: lambda: list(device.prefix_lists),
        StructureType.COMMUNITY_LIST: lambda: list(device.community_lists),
        StructureType.AS_PATH_LIST: lambda: list(device.as_path_lists),
        StructureType.ROUTE_MAP: lambda: list(device.route_maps),
        StructureType.ZONE: lambda: list(device.zones),
        StructureType.INTERFACE: lambda: list(device.interfaces),
    }[structure_type]()


def undefined_references(device: Device) -> List[StructureRef]:
    """References to structures that are not defined on the device."""
    return [
        ref
        for ref in iter_references(device)
        if ref.name not in _definitions(device, ref.structure_type)
    ]


@dataclass(frozen=True)
class UnusedStructure:
    hostname: str
    structure_type: StructureType
    name: str


_CHECKED_FOR_UNUSED = (
    StructureType.ACL,
    StructureType.PREFIX_LIST,
    StructureType.COMMUNITY_LIST,
    StructureType.AS_PATH_LIST,
    StructureType.ROUTE_MAP,
    StructureType.ZONE,
)


def unused_structures(device: Device) -> List[UnusedStructure]:
    """Defined structures never referenced anywhere on the device."""
    referenced = {
        (ref.structure_type, ref.name) for ref in iter_references(device)
    }
    # A route map referenced by another route map's continuation is not
    # modeled; route maps referenced only via redistribution/neighbors are
    # covered by iter_references.
    unused: List[UnusedStructure] = []
    for structure_type in _CHECKED_FOR_UNUSED:
        for name in _definitions(device, structure_type):
            if (structure_type, name) not in referenced:
                unused.append(
                    UnusedStructure(device.hostname, structure_type, name)
                )
    return unused
