"""Public API: the analysis session."""

from repro.core.session import NotConvergedError, RouteRow, Session

__all__ = ["Session", "RouteRow", "NotConvergedError"]
