"""Content-addressed snapshot caching.

Batfish's continuous-validation workload (§4.3, §5.1) re-analyzes the
same snapshot many times — differential runs compare a candidate
against a baseline that was already simulated, and the §6 benchmarks
re-run identical networks. A content-addressed disk cache turns those
repeats from O(full pipeline) into O(hash lookup):

* **Key = content, not name.** The cache key is SHA-256 over the sorted
  ``(filename, config_text)`` pairs plus an *engine version* fingerprint
  (a hash of every source file of the ``repro`` package). Editing one
  byte of any config, or of any analysis code, changes the key and
  invalidates the entry; nothing is ever invalidated by time.
* **Six artifact kinds.** ``snapshot`` entries hold the parsed
  vendor-independent model (Stage 1 output); ``device`` entries hold
  one parsed device config (keyed on the per-file content hash, the
  unit the incremental delta engine reuses when only some files of a
  snapshot changed); ``dataplane`` entries hold the computed
  :class:`~repro.routing.engine.DataPlane` (Stage 2 output), keyed
  additionally by the convergence settings and policy semantics that
  shaped the simulation; ``lint`` entries hold one device-scoped lint
  rule's findings for one device (see ``repro.lint.runner``);
  ``coverage`` entries hold one question's coverage vector for one
  (snapshot, question, params) execution and ``coverage_index`` entries
  list a snapshot's coverage records (see
  ``repro.questions.coverage``).
* **Location.** ``REPRO_CACHE_DIR`` (default ``.repro_cache/``).
  Writes are atomic (temp file + rename), so concurrent processes — the
  parallel benchmark drivers — can share one cache directory.
* **Bounded size.** ``REPRO_CACHE_MAX_BYTES`` (or ``max_bytes=``) caps
  the directory: after each store, least-recently-used entries are
  evicted until the total fits. Hits refresh recency (mtime), so a
  long-running service keeps its hot snapshots and sheds cold ones.
  Unset/empty means unbounded (the one-shot CLI default).

The cache stores pickles of this package's own objects; entries are an
implementation detail, not an interchange format.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
import threading
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro import obs

#: Bump to invalidate every existing cache entry on format changes.
CACHE_FORMAT = "repro-cache/v1"

_ENGINE_VERSION: Optional[str] = None


def engine_version() -> str:
    """Fingerprint of the analysis code: SHA-256 over the bytes of every
    ``*.py`` file of the installed ``repro`` package, path-sorted.

    Computed once per process. Any code edit — a parser fix, a changed
    preference rule — yields a new version, so stale simulations can
    never be served after the model changes.
    """
    global _ENGINE_VERSION
    if _ENGINE_VERSION is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256(CACHE_FORMAT.encode())
        for directory, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _ENGINE_VERSION = digest.hexdigest()
    return _ENGINE_VERSION


def snapshot_key(configs: Dict[str, str], salt: str = "") -> str:
    """Content address of a snapshot: configs + engine version (+ salt
    for artifacts that also depend on analysis parameters)."""
    digest = hashlib.sha256(engine_version().encode())
    for filename in sorted(configs):
        digest.update(b"\x00file\x00")
        digest.update(filename.encode())
        digest.update(b"\x00")
        digest.update(configs[filename].encode())
    if salt:
        digest.update(b"\x00salt\x00")
        digest.update(salt.encode())
    return digest.hexdigest()


def device_key(filename: str, text: str) -> str:
    """Content address of one parsed device config: filename + bytes +
    engine version. The unit of parse memoization — editing one file of
    a snapshot invalidates only that file's entry."""
    digest = hashlib.sha256(engine_version().encode())
    digest.update(b"\x00device\x00")
    digest.update(filename.encode())
    digest.update(b"\x00")
    digest.update(text.encode())
    return digest.hexdigest()


def coverage_record_key(snapshot_key: str, question: str, params_key: str) -> str:
    """Content address of one per-question coverage record: the
    snapshot's key (which already folds in configs + engine version)
    plus the question name and its canonical params rendering. One
    record per (snapshot, question, params) — rerunning the same
    question with the same params overwrites rather than accumulates."""
    digest = hashlib.sha256(snapshot_key.encode())
    digest.update(b"\x00coverage\x00")
    digest.update(question.encode())
    digest.update(b"\x00")
    digest.update(params_key.encode())
    return digest.hexdigest()


def coverage_index_key(snapshot_key: str) -> str:
    """Content address of a snapshot's coverage-record index (the list
    of ``coverage`` entries recorded against it)."""
    digest = hashlib.sha256(snapshot_key.encode())
    digest.update(b"\x00coverage_index\x00")
    return digest.hexdigest()


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", "").strip() or ".repro_cache"


def default_max_bytes() -> Optional[int]:
    """Size cap from ``REPRO_CACHE_MAX_BYTES`` (unset/empty = unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_CACHE_MAX_BYTES must be an integer, got {env!r}"
        ) from None
    return value if value > 0 else None


class SnapshotCache:
    """A directory of content-addressed pipeline artifacts."""

    def __init__(self, root: Optional[str] = None, max_bytes: Optional[int] = None):
        self.root = root or default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Paths pinned against eviction (see protect()): while a delta
        # analysis is reusing a snapshot's per-device parse entries,
        # budget pressure from concurrent stores must not delete them
        # out from under it.
        self._keep_lock = threading.Lock()
        self._protected: Dict[str, int] = {}

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, f"{kind}-{key}.pkl")

    @contextlib.contextmanager
    def protect(self, entries: Iterable[Tuple[str, str]]) -> Iterator[None]:
        """Pin ``(kind, key)`` entries against LRU eviction for the
        duration of the context.

        Protection is reference-counted, so nested/concurrent analyses
        of overlapping snapshots compose; entries unpin when the last
        protector exits. Pinned entries still count toward the budget —
        the evictor just skips them and sheds unpinned entries instead.
        """
        paths = [self._path(kind, key) for kind, key in entries]
        with self._keep_lock:
            for path in paths:
                self._protected[path] = self._protected.get(path, 0) + 1
        try:
            yield
        finally:
            with self._keep_lock:
                for path in paths:
                    remaining = self._protected.get(path, 0) - 1
                    if remaining <= 0:
                        self._protected.pop(path, None)
                    else:
                        self._protected[path] = remaining

    def load(self, kind: str, key: str):
        """The cached object, or ``None`` on a miss (absent entry, or an
        entry written by an incompatible pickle/code state)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        # Unpickling corrupt or stale bytes can raise nearly anything
        # (UnpicklingError, ValueError, KeyError, ImportError, ...); a
        # damaged entry must degrade to a miss, never crash analysis.
        except Exception:
            self.misses += 1
            if obs.enabled():
                obs.add("cache.miss")
                obs.add(f"cache.miss.{kind}")
            return None
        self.hits += 1
        if self.max_bytes is not None:
            # Refresh recency so LRU eviction spares hot entries.
            try:
                os.utime(path)
            except OSError:
                pass
        if obs.enabled():
            obs.add("cache.hit")
            obs.add(f"cache.hit.{kind}")
        return value

    def store(self, kind: str, key: str, value) -> None:
        """Atomically persist an artifact (temp file + rename)."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(kind, key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.root, prefix=f".{kind}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
            if obs.enabled():
                obs.add("cache.store")
                obs.add(f"cache.store.{kind}")
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._evict_over_budget(keep=path)

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        """Delete least-recently-used entries until the directory fits
        ``max_bytes`` (no-op when unbounded).

        The just-written entry (``keep``) is never evicted, so a single
        oversized artifact still caches — the budget then empties the
        rest of the directory around it. Entries pinned via
        :meth:`protect` are likewise skipped: a delta analysis midway
        through reusing a base snapshot's per-device parse entries must
        not lose them to budget pressure from concurrent stores. The
        pin check happens under ``_keep_lock`` at unlink time, not from
        a snapshot taken when eviction started — a sweep thread opening
        a protect scope mid-eviction must win the race.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for name in os.listdir(self.root):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.root, name)
            try:
                status = os.stat(path)
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((status.st_mtime, status.st_size, path))
            total += status.st_size
        entries.sort()  # oldest mtime first = least recently used
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            with self._keep_lock:
                if path in self._protected:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
            total -= size
            self.evictions += 1
            if obs.enabled():
                obs.add("cache.evict")

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for entry in os.listdir(self.root):
            if entry.endswith((".pkl", ".tmp")):
                try:
                    os.unlink(os.path.join(self.root, entry))
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def resolve_cache(cache) -> Optional[SnapshotCache]:
    """Normalize a user-facing cache argument.

    ``None``/``False`` disable caching; ``True`` uses the default
    directory; a string is a directory; a :class:`SnapshotCache` is
    used as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SnapshotCache()
    if isinstance(cache, str):
        return SnapshotCache(cache)
    if isinstance(cache, SnapshotCache):
        return cache
    raise TypeError(f"cannot interpret cache argument: {cache!r}")
