"""The public API: a Batfish-style session over a snapshot.

A :class:`Session` wraps the full pipeline — parse (Stage 1), data-plane
generation (Stage 2), verification (Stage 3), explanation (Stage 4) —
behind lazily-computed properties, and exposes the question surface the
paper's users rely on (Lesson 5 configuration questions, §4.4.1
specialized reachability questions, §4.3.2 differential validation).

Typical use::

    session = Session.from_texts(configs)
    session.assert_converged()
    print(session.undefined_references().rows)
    answer = session.service_reachable("172.16.0.10", port=443)
"""

from __future__ import annotations

import hashlib
import pickle
import time
import warnings as _warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.config.loader import load_snapshot_from_texts
from repro.config.model import ParseWarning, Snapshot
from repro.core.cache import (
    SnapshotCache,
    engine_version,
    resolve_cache,
    snapshot_key,
)
from repro.obs.coverage import CoverageReport, coverage_report
from repro.dataplane.fib import Fib, compute_fibs
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.packet import Packet
from repro.provenance import (
    DerivationTree,
    Flow,
    FlowExplanation,
    ProvenanceRecorder,
    build_flow_explanation,
    build_route_tree,
)
from repro.provenance import record as prov
from repro.questions.configuration import (
    DuplicateIpsAnswer,
    PropertyConsistencyAnswer,
    UndefinedReferencesAnswer,
    UnusedStructuresAnswer,
    duplicate_ips_question,
    management_plane_consistency,
    undefined_references_question,
    unused_structures_question,
)
from repro.questions.filters import (
    SearchFiltersRow,
    TestFilterRow,
    UnreachableLineRow,
    search_filters,
    test_filter,
    unreachable_filter_lines,
)
from repro.questions.specialized import (
    ServiceIsolationAnswer,
    ServiceReachabilityAnswer,
    service_reachable,
    service_unreachable,
)
from repro.reachability.queries import (
    MultipathViolation,
    NetworkAnalyzer,
    ReachabilityAnswer,
)
from repro.routing.engine import (
    ConvergenceSettings,
    DataPlane,
    compute_dataplane,
)
from repro.routing.policy import DEFAULT_SEMANTICS, PolicySemantics
from repro.traceroute.engine import Trace, TracerouteEngine


@dataclass
class RouteRow:
    node: str
    description: str


class NotConvergedError(RuntimeError):
    """Raised when routing did not converge (Batfish detects and reports
    non-convergence rather than forcing it, §4.1.2)."""


class Session:
    """One analysis session over one configuration snapshot."""

    def __init__(
        self,
        snapshot: Snapshot,
        settings: Optional[ConvergenceSettings] = None,
        semantics: PolicySemantics = DEFAULT_SEMANTICS,
        trace: Optional[str] = None,
    ):
        if trace is not None:
            # Programmatic alternative to REPRO_TRACE: turn tracing on
            # for this process, appending to the given JSONL path.
            obs.enable(trace)
        self.snapshot = snapshot
        self.settings = settings or ConvergenceSettings()
        self.semantics = semantics
        self._dataplane: Optional[DataPlane] = None
        self._fibs: Optional[Dict[str, Fib]] = None
        self._analyzer: Optional[NetworkAnalyzer] = None
        self._tracer: Optional[TracerouteEngine] = None
        #: Cached provenance re-derivation (recorder, dataplane, fibs) —
        #: populated on the first explain_route call (Stage 4).
        self._provenance: Optional[
            Tuple[ProvenanceRecorder, DataPlane, Dict[str, Fib]]
        ] = None
        #: Content-addressed cache backing this session (see from_texts).
        self._cache: Optional[SnapshotCache] = None
        self._cache_key: Optional[str] = None
        #: Raw config texts, kept when constructed via from_texts /
        #: from_dir — the base the incremental delta engine diffs new
        #: snapshots against.
        self._configs: Optional[Dict[str, str]] = None
        #: Populated on sessions produced by :meth:`delta`: a
        #: :class:`repro.delta.DeltaInfo` describing what was reused,
        #: plus the base session's snapshot key (what the dataflow
        #: fixpoint warm-starts from).
        self.delta_info = None
        self.delta_base_key: Optional[str] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_texts(
        cls,
        configs: Dict[str, str],
        cache=None,
        store_snapshot: bool = True,
        **kwargs,
    ) -> "Session":
        """Build a session from ``{name: config_text}``.

        ``cache`` enables the content-addressed snapshot cache: ``True``
        uses ``REPRO_CACHE_DIR`` (default ``.repro_cache/``), a string
        names a directory, a :class:`SnapshotCache` is used directly.
        On a hit, parsing (and later, data-plane simulation) is replaced
        by a disk load; any config-byte or code change misses.
        ``store_snapshot=False`` still *reads* the cache (snapshot and
        per-device entries) but skips persisting a missed snapshot —
        for one-shot variants that would only churn the LRU.
        """
        resolved = resolve_cache(cache)
        key = snapshot_key(configs)
        if resolved is None:
            started = time.perf_counter()
            snapshot = load_snapshot_from_texts(configs)
            obs.observe_phase("parse", time.perf_counter() - started)
            session = cls(snapshot, **kwargs)
            session._cache_key = key
            session._configs = dict(configs)
            return session
        snapshot = resolved.load("snapshot", key)
        if snapshot is None:
            # Snapshot-level miss: parse with the per-device memo, so
            # only files whose bytes actually changed get reparsed.
            started = time.perf_counter()
            snapshot = load_snapshot_from_texts(configs, cache=resolved)
            obs.observe_phase("parse", time.perf_counter() - started)
            if store_snapshot:
                resolved.store("snapshot", key, snapshot)
        session = cls(snapshot, **kwargs)
        session._cache = resolved
        session._cache_key = key
        session._configs = dict(configs)
        return session

    @classmethod
    def from_dir(cls, path: str, cache=None, **kwargs) -> "Session":
        """Build a session from a snapshot directory of ``*.cfg`` files."""
        from repro.config.loader import read_config_dir

        return cls.from_texts(read_config_dir(path), cache=cache, **kwargs)

    def delta(
        self,
        changed_configs: Dict[str, str],
        validate: Optional[bool] = None,
        store_result: bool = True,
    ) -> "Session":
        """Incrementally analyze this snapshot with some files changed.

        ``changed_configs`` maps filenames to new config text (or
        ``None`` to delete the file; unnamed files carry over from this
        session unchanged). Returns a new :class:`Session` whose data
        plane is produced by the delta engine: only devices whose
        routing state could have changed are re-simulated, everything
        else is spliced through from this session's converged state.
        The result is bit-identical to a from-scratch analysis — the
        delta engine falls back to a full recompute whenever it cannot
        prove that (see :mod:`repro.delta`).

        ``validate`` forces the :envvar:`REPRO_DELTA_VALIDATE` check
        (full recompute + byte-identical FIB comparison) on or off for
        this call. ``store_result=False`` keeps the spliced data plane
        out of the snapshot cache — for one-shot variants (failure
        sweeps) that would otherwise churn the LRU.
        """
        from repro.delta import delta_session

        return delta_session(
            self, changed_configs, validate=validate, store_result=store_result
        )

    def sweep(
        self,
        k: int = 1,
        kinds=None,
        prop=None,
        prune: bool = True,
        jobs: Optional[int] = None,
        limit: Optional[int] = None,
        max_elements: Optional[int] = None,
        progress=None,
        validate: Optional[bool] = None,
    ):
        """What-if resilience sweep: evaluate a reachability property
        under every combination of up to ``k`` failures.

        Enumerates failure elements (link failures, node failures,
        interface flaps, OSPF-passive policy toggles — select with
        ``kinds``), prunes provably-equivalent scenarios Plankton-style,
        and runs the survivors through the delta engine on the shared
        process pool while this session's cache entries stay pinned.
        Returns a :class:`repro.sweep.SweepResult` with per-scenario
        verdicts and the **minimal failing sets** of the property
        (``prop`` defaults to a corner-to-corner reachability probe).
        """
        from repro.sweep import ALL_KINDS, sweep_session

        return sweep_session(
            self,
            k=k,
            kinds=ALL_KINDS if kinds is None else kinds,
            prop=prop,
            prune=prune,
            jobs=jobs,
            limit=limit,
            max_elements=max_elements,
            progress=progress,
            validate=validate,
        )

    @property
    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss counters of the backing cache (None when uncached)."""
        return self._cache.stats() if self._cache else None

    def _dataplane_cache_salt(self) -> str:
        """Simulation parameters that shape the data plane: they join
        the content address so differently-configured runs never share
        an entry."""
        return f"dataplane|{self.settings!r}|{self.semantics!r}"

    # -- pipeline stages ----------------------------------------------------

    @property
    def parse_warnings(self) -> List[ParseWarning]:
        """Stage 1 diagnostics: lines the parsers could not model, with
        file/device attribution (``warning.describe()`` renders one)."""
        return list(self.snapshot.warnings)

    @property
    def dataplane(self) -> DataPlane:
        """Stage 2: the computed data plane (lazily derived; served from
        the content-addressed cache when one backs this session)."""
        if self._dataplane is None:
            cached = None
            if self._cache is not None:
                cached = self._cache.load("dataplane", self.snapshot_key)
            if cached is not None:
                self._dataplane = cached
            else:
                started = time.perf_counter()
                self._dataplane = compute_dataplane(
                    self.snapshot, self.settings, self.semantics
                )
                obs.observe_phase(
                    "dataplane", time.perf_counter() - started
                )
                if self._cache is not None:
                    self._cache.store(
                        "dataplane", self.snapshot_key, self._dataplane
                    )
        return self._dataplane

    @property
    def snapshot_key(self) -> str:
        """Content address of this session's analysis state: configs +
        engine version + the simulation parameters that shape the data
        plane.

        Two sessions share a key exactly when their analyses are
        interchangeable — the snapshot cache uses it to address stored
        data planes, and the service layer uses it to coalesce identical
        in-flight question requests onto one computation.
        """
        if self._cache_key is None:
            # Sessions built directly from a parsed Snapshot (no config
            # texts in hand): fall back to hashing the model itself.
            digest = hashlib.sha256(engine_version().encode())
            digest.update(
                pickle.dumps(self.snapshot, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self._cache_key = digest.hexdigest()
        digest = hashlib.sha256(self._cache_key.encode())
        digest.update(self._dataplane_cache_salt().encode())
        return digest.hexdigest()

    def _dataplane_key(self) -> str:
        """Deprecated alias of :attr:`snapshot_key`."""
        _warnings.warn(
            "Session._dataplane_key() is deprecated; use the public "
            "Session.snapshot_key property",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.snapshot_key

    @property
    def fibs(self) -> Dict[str, Fib]:
        if self._fibs is None:
            with obs.span("fib"):
                self._fibs = compute_fibs(self.dataplane)
        return self._fibs

    @property
    def analyzer(self) -> NetworkAnalyzer:
        """Stage 3: the BDD verification engine (lazily built)."""
        if self._analyzer is None:
            started = time.perf_counter()
            self._analyzer = NetworkAnalyzer(self.dataplane, fibs=self.fibs)
            obs.observe_phase("bdd", time.perf_counter() - started)
        return self._analyzer

    def coverage_report(self) -> CoverageReport:
        """Configuration coverage (Xu et al. spirit): which VI-model
        structures — interfaces, ACL lines, route-map clauses — the
        queries run so far have exercised, against the snapshot's totals.

        Only populated while tracing/metrics are enabled (``REPRO_TRACE``
        or ``Session(trace=...)``); with obs disabled every kind reads
        0 touched.
        """
        return coverage_report(obs.coverage(), self.snapshot)

    @property
    def encoder(self) -> PacketEncoder:
        return self.analyzer.encoder

    def assert_converged(self) -> None:
        """Raise unless routing converged deterministically."""
        if not self.dataplane.converged:
            oscillating = ", ".join(
                str(p) for p in self.dataplane.oscillating_prefixes[:5]
            )
            raise NotConvergedError(
                f"routing did not converge; oscillating prefixes: {oscillating}"
            )

    # -- configuration questions (Lesson 5) --------------------------------

    def undefined_references(self) -> UndefinedReferencesAnswer:
        return undefined_references_question(self.snapshot)

    def unused_structures(self) -> UnusedStructuresAnswer:
        return unused_structures_question(self.snapshot)

    def duplicate_ips(self) -> DuplicateIpsAnswer:
        return duplicate_ips_question(self.snapshot)

    def lint(self, lintconfig: Optional[Dict] = None, jobs: Optional[int] = None):
        """Run the semantic lint engine (``repro.lint``) over the
        snapshot. ``lintconfig`` follows ``LintConfig.from_dict``:
        ``{"rules": [...], "disable": [...], "severity": {...},
        "suppress": [...]}``. Returns a :class:`repro.lint.LintReport`.

        On a delta-derived session the dataflow rules' propagation
        fixpoint warm-starts from the base snapshot's cached fixpoint,
        re-iterating only the dirty subgraph."""
        from repro.lint import LintConfig, lint_snapshot

        delta = None
        if self.delta_info is not None and self.delta_base_key is not None:
            delta = {
                "base_key": self.delta_base_key,
                "dirty_devices": sorted(self.delta_info.dirty_devices),
                "fallback": self.delta_info.fallback,
            }
        return lint_snapshot(
            self.snapshot,
            LintConfig.from_dict(lintconfig),
            jobs=jobs,
            cache=self._cache,
            snapshot_key=self.snapshot_key,
            delta=delta,
        )

    def management_plane_consistency(
        self,
        expected_ntp: Optional[List[str]] = None,
        expected_dns: Optional[List[str]] = None,
    ) -> PropertyConsistencyAnswer:
        return management_plane_consistency(
            self.snapshot, expected_ntp, expected_dns
        )

    def bgp_session_compatibility(self):
        """Candidate sessions and compatibility issues (uses the data
        plane's session evaluation, including TCP viability)."""
        dataplane = self.dataplane
        return dataplane.sessions, dataplane.session_issues

    def routes(self, node: Optional[str] = None) -> List[RouteRow]:
        """Main-RIB contents (the `routes` question)."""
        rows: List[RouteRow] = []
        hostnames = [node] if node else self.snapshot.hostnames()
        for hostname in hostnames:
            for route in self.dataplane.main_rib(hostname).routes():
                rows.append(RouteRow(node=hostname, description=route.describe()))
        return rows

    # -- filter questions ---------------------------------------------------

    def test_filter(self, node: str, filter_name: str, packet: Packet) -> TestFilterRow:
        return test_filter(self.snapshot, node, filter_name, packet)

    def search_filters(self, headerspace: HeaderSpace, **kwargs) -> List[SearchFiltersRow]:
        return search_filters(self.snapshot, headerspace, encoder=self.encoder, **kwargs)

    def unreachable_filter_lines(self) -> List[UnreachableLineRow]:
        return unreachable_filter_lines(self.snapshot, encoder=self.encoder)

    # -- forwarding questions (Stage 3) --------------------------------------

    def reachability(
        self,
        headerspace: Optional[HeaderSpace] = None,
        sources: Optional[Sequence[Tuple[str, Optional[str]]]] = None,
        scoped: bool = True,
    ) -> ReachabilityAnswer:
        """General reachability with §4.4.2 scoped defaults."""
        analyzer = self.analyzer
        space = (headerspace or HeaderSpace()).to_bdd(self.encoder)
        if sources is not None:
            source_map = analyzer.sources_at(sources, space)
        elif scoped:
            source_map = analyzer.default_sources(space)
        else:
            source_map = analyzer.all_sources(space)
        return analyzer.reachability(source_map)

    def multipath_consistency(self, scoped: bool = False) -> List[MultipathViolation]:
        analyzer = self.analyzer
        sources = (
            analyzer.default_sources() if scoped else analyzer.all_sources()
        )
        return analyzer.multipath_consistency(sources)

    def service_reachable(self, service_ip, port: int, **kwargs) -> ServiceReachabilityAnswer:
        return service_reachable(self.analyzer, service_ip, port, **kwargs)

    def service_unreachable(self, service_ip, port: int, **kwargs) -> ServiceIsolationAnswer:
        return service_unreachable(self.analyzer, service_ip, port, **kwargs)

    def route_diff(self, candidate: "Session"):
        """Differential routes question: what a candidate snapshot
        changes relative to this one (§5.1 proactive validation)."""
        from repro.questions.differential import compare_routes

        return compare_routes(self.dataplane, candidate.dataplane)

    # -- concrete engine (Stage 4 explanations, §4.3.2 validation) ----------

    @property
    def tracer(self) -> TracerouteEngine:
        if self._tracer is None:
            self._tracer = TracerouteEngine(self.dataplane, self.fibs)
        return self._tracer

    def traceroute(self, packet: Packet, node: str, interface: str) -> List[Trace]:
        return self.tracer.trace(packet, node, interface)

    def validate_engines(self):
        """Run the §4.3.2 differential cross-validation of the two
        forwarding engines on this snapshot."""
        from repro.fidelity.differential import run_differential_suite

        return run_differential_suite(self.analyzer)

    # -- provenance / explanation (Stage 4, §4.4) ----------------------------

    def _recorded_derivation(
        self,
    ) -> Tuple[ProvenanceRecorder, DataPlane, Dict[str, Fib]]:
        """Re-derive the data plane and FIBs with provenance recording
        on, once per session.

        Normal runs stay at zero recording cost; the first ``explain_*``
        call pays for one extra simulation and every later call reuses
        the recorded events (the same way Batfish answers "why" questions
        from retained derivation state rather than instrumenting every
        run)."""
        if self._provenance is None:
            with prov.recording() as recorder:
                dataplane = compute_dataplane(
                    self.snapshot, self.settings, self.semantics
                )
                fibs = compute_fibs(dataplane)
            self._provenance = (recorder, dataplane, fibs)
        return self._provenance

    def explain_route(self, node: str, prefix) -> DerivationTree:
        """Why does (or doesn't) ``node`` have a route for ``prefix``?

        Returns a :class:`DerivationTree` tracing each FIB entry back
        through main-RIB selection to the protocol event that produced
        it — including suppressed alternatives — with neighbor, policy
        clause, and convergence iteration attribution.
        """
        recorder, dataplane, fibs = self._recorded_derivation()
        return build_route_tree(recorder, dataplane, fibs, node, prefix)

    def explain_flow(self, flow: Flow) -> FlowExplanation:
        """Trace ``flow`` through the concrete forwarding engine with
        per-ACL-line / per-NAT-rule evaluation detail attached.

        The hop sequence is exactly what :meth:`traceroute` produces —
        the explanation decorates the same engine run rather than
        re-deriving the path independently."""
        with prov.recording():
            traces = self.tracer.trace(
                flow.packet, flow.ingress_node, flow.ingress_interface
            )
        return build_flow_explanation(flow, traces)
