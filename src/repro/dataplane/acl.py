"""ACL semantics: concrete (first-match) evaluation and BDD encoding.

The same ACL model is consumed by two independent engines — the concrete
evaluator used by traceroute and session checks, and the symbolic BDD
encoding used by the reachability engine. Keeping both against one model
is what enables the differential engine testing of §4.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bdd.engine import FALSE, TRUE
from repro.config.model import Acl, AclLine, Action
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.packet import Packet


@dataclass(frozen=True)
class AclResult:
    """Disposition of a packet against an ACL, with the matched line for
    annotation (§4.4.3: "we annotate example packets with as much
    context as possible, such as the routing and ACL entries that they
    hit")."""

    action: Action
    line_index: Optional[int]  # None = implicit deny at end
    line: Optional[AclLine]

    @property
    def permitted(self) -> bool:
        return self.action is Action.PERMIT

    def describe(self) -> str:
        if self.line is None:
            return "implicit deny"
        rendered = f"line {self.line_index}: {self.line.name or self.line.action.value}"
        if self.line.source_line:
            # Source-level provenance survives normalization (§7.3), so
            # the user is pointed at the configuration text itself.
            rendered += f" ({self.line.source_file}:{self.line.source_line})"
        return rendered


def line_matches(line: AclLine, packet: Packet) -> bool:
    """Concrete first-match semantics for one ACL line."""
    if line.protocol is not None and packet.ip_protocol != line.protocol:
        return False
    if line.src is not None and not line.src.contains_ip(packet.src_ip):
        return False
    if line.dst is not None and not line.dst.contains_ip(packet.dst_ip):
        return False
    if line.src_ports and not any(
        low <= packet.src_port <= high for low, high in line.src_ports
    ):
        return False
    if line.dst_ports and not any(
        low <= packet.dst_port <= high for low, high in line.dst_ports
    ):
        return False
    if line.established:
        if packet.ip_protocol != f.PROTO_TCP:
            return False
        if not (packet.tcp_flag(f.TCP_ACK) or packet.tcp_flag(f.TCP_RST)):
            return False
    if line.icmp_type is not None and packet.icmp_type != line.icmp_type:
        return False
    return True


def evaluate_acl(acl: Acl, packet: Packet) -> AclResult:
    """First matching line wins; fall through to implicit deny."""
    for index, line in enumerate(acl.lines):
        if line_matches(line, packet):
            return AclResult(action=line.action, line_index=index, line=line)
    return AclResult(action=Action.DENY, line_index=None, line=None)


def evaluate_acl_trace(acl: Acl, packet: Packet) -> Tuple[AclResult, List[str]]:
    """Like :func:`evaluate_acl`, but also return the ordered evaluation
    trace: one human-readable record per line *considered* — every
    skipped line up to and including the deciding one (§4.4: the
    provenance layer shows the full first-match walk, not just the hit).
    """
    trace: List[str] = []
    for index, line in enumerate(acl.lines):
        label = line.name or f"{line.action.value} line {index}"
        if line_matches(line, packet):
            trace.append(f"line {index} [{label}]: matched -> {line.action.value}")
            return AclResult(action=line.action, line_index=index, line=line), trace
        trace.append(f"line {index} [{label}]: no match")
    trace.append("end of ACL: implicit deny")
    return AclResult(action=Action.DENY, line_index=None, line=None), trace


# ----------------------------------------------------------------------
# BDD encoding


def line_space(line: AclLine, encoder: PacketEncoder) -> int:
    """The set of packets a single line matches, as a BDD."""
    engine = encoder.engine
    conjuncts: List[int] = []
    if line.protocol is not None:
        conjuncts.append(encoder.protocol(line.protocol))
    if line.src is not None:
        conjuncts.append(encoder.ip_in_prefix(f.SRC_IP, line.src))
    if line.dst is not None:
        conjuncts.append(encoder.ip_in_prefix(f.DST_IP, line.dst))
    if line.src_ports:
        conjuncts.append(encoder.port_ranges(f.SRC_PORT, line.src_ports))
    if line.dst_ports:
        conjuncts.append(encoder.port_ranges(f.DST_PORT, line.dst_ports))
    if line.established:
        flags = engine.or_(
            encoder.tcp_flag(f.TCP_ACK), encoder.tcp_flag(f.TCP_RST)
        )
        conjuncts.append(engine.and_(encoder.tcp(), flags))
    if line.icmp_type is not None:
        conjuncts.append(encoder.field_eq(f.ICMP_TYPE, line.icmp_type))
    return engine.and_all(conjuncts)


def acl_permit_space(acl: Acl, encoder: PacketEncoder) -> int:
    """The set of packets the ACL permits, honouring line order.

    Classic sequential encoding: a line contributes the part of its
    match space not claimed by any earlier line. The running
    already-matched union is inherently sequential, but the permitted
    contributions are order-independent once carved, so they are
    combined with the balanced n-ary union kernel.
    """
    engine = encoder.engine
    permit_parts: List[int] = []
    already_matched = FALSE
    for line in acl.lines:
        space = line_space(line, encoder)
        if line.action is Action.PERMIT:
            permit_parts.append(engine.diff(space, already_matched))
        already_matched = engine.or_(already_matched, space)
    return engine.or_all(permit_parts)


def acl_line_spaces(
    acl: Acl, encoder: PacketEncoder
) -> List[Tuple[AclLine, int]]:
    """Per-line *effective* match spaces (match minus earlier lines).

    Used to annotate examples with exactly the line a packet hits, and
    by the unreachable-line question (ACL refactoring use-case, §5.3).
    """
    engine = encoder.engine
    already_matched = FALSE
    result: List[Tuple[AclLine, int]] = []
    for line in acl.lines:
        space = line_space(line, encoder)
        fresh = engine.diff(space, already_matched)
        result.append((line, fresh))
        already_matched = engine.or_(already_matched, space)
    return result
