"""FIB construction: from main-RIB best routes to concrete forwarding
entries with resolved output interfaces and next-hop addresses.

Recursive next hops (BGP routes whose next hop is reached via an IGP
route) are resolved here, bounded to a fixed depth. Null-routed
prefixes become explicit drop entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.provenance import record as prov
from repro.routing.engine import DataPlane, NodeState
from repro.routing.prefix_trie import PrefixTrie
from repro.routing.route import (
    BgpRoute,
    ConnectedRoute,
    OspfRoute,
    StaticRouteEntry,
)

_MAX_RESOLUTION_DEPTH = 8


class FibActionType(enum.Enum):
    FORWARD = "forward"
    DROP_NULL = "drop-null"  # null-routed / discard
    DROP_NO_ROUTE = "drop-no-route"  # unresolvable


@dataclass(frozen=True, slots=True)
class FibEntry:
    """One resolved forwarding entry.

    ``arp_ip`` is the address the packet is forwarded toward on the wire
    — ``None`` for connected prefixes (deliver to the destination
    itself). Slotted: large networks materialize one per (prefix, ECMP
    path) pair, so the per-instance ``__dict__`` is worth dropping.
    """

    prefix: Prefix
    action: FibActionType
    out_interface: Optional[str] = None
    arp_ip: Optional[Ip] = None
    source_route: Optional[object] = None  # provenance for annotations

    def describe(self) -> str:
        if self.action is not FibActionType.FORWARD:
            return f"{self.prefix} {self.action.value}"
        via = f" via {self.arp_ip}" if self.arp_ip else ""
        return f"{self.prefix} -> {self.out_interface}{via}"


class Fib:
    """The forwarding table of one node, with LPM lookup."""

    __slots__ = ("hostname", "_trie")

    def __init__(self, hostname: str):
        self.hostname = hostname
        self._trie: PrefixTrie = PrefixTrie()

    def add(self, entry: FibEntry) -> None:
        self._trie.add(entry.prefix, entry)

    def lookup(self, ip: "Ip | int") -> List[FibEntry]:
        """All ECMP entries for the longest matching prefix (empty list
        when no route covers the address)."""
        match = self._trie.longest_match(ip)
        if match is None:
            return []
        _prefix, entries = match
        return entries

    def entries(self) -> List[Tuple[Prefix, List[FibEntry]]]:
        return list(self._trie.items())

    def __len__(self) -> int:
        return sum(len(entries) for _, entries in self._trie.items())


def build_fib(state: NodeState) -> Fib:
    """Resolve every best route of the node's main RIB into FIB entries."""
    hostname = state.device.hostname
    fib = Fib(hostname)
    recording = prov.enabled()
    for route in state.main_rib.routes():
        for entry in _resolve_route(state, route, route, 0, None):
            fib.add(entry)
            if recording:
                _record_fib_entry(hostname, route, entry)
    return fib


def _record_fib_entry(hostname: str, route, entry: "FibEntry") -> None:
    if entry.action is FibActionType.FORWARD:
        detail = f"{route.describe()} resolved to {entry.describe()}"
        if entry.arp_ip is not None and _next_hop_of(route) != entry.arp_ip:
            detail += " (recursive next-hop resolution)"
        prov.route_event(hostname, route.prefix, "fib", "resolved", detail)
    elif entry.action is FibActionType.DROP_NULL:
        prov.route_event(
            hostname, route.prefix, "fib", "dropped",
            f"{route.describe()} null-routed: explicit discard entry",
        )
    else:
        prov.route_event(
            hostname, route.prefix, "fib", "dropped",
            f"{route.describe()} unresolvable: next hop has no covering "
            "route (or resolution depth exceeded)",
        )


def _resolve_route(
    state: NodeState, original, route, depth, via_ip: Optional[Ip]
) -> List[FibEntry]:
    """Resolve ``route`` for the ``original`` route's prefix.

    ``via_ip`` is the most recent next-hop address along the recursive
    resolution chain; when the chain bottoms out on a connected prefix,
    that innermost next hop is the address the packet is ARP'd toward.
    """
    prefix = original.prefix
    if depth > _MAX_RESOLUTION_DEPTH:
        return [FibEntry(prefix, FibActionType.DROP_NO_ROUTE, source_route=original)]
    if isinstance(route, ConnectedRoute):
        return [
            FibEntry(
                prefix,
                FibActionType.FORWARD,
                out_interface=route.interface,
                arp_ip=via_ip,
                source_route=original,
            )
        ]
    if isinstance(route, OspfRoute):
        return [
            FibEntry(
                prefix,
                FibActionType.FORWARD,
                out_interface=route.next_hop_interface,
                arp_ip=route.next_hop_ip,
                source_route=original,
            )
        ]
    if isinstance(route, StaticRouteEntry):
        if route.is_null_routed:
            return [FibEntry(prefix, FibActionType.DROP_NULL, source_route=original)]
        if route.next_hop_interface is not None:
            return [
                FibEntry(
                    prefix,
                    FibActionType.FORWARD,
                    out_interface=route.next_hop_interface,
                    arp_ip=route.next_hop_ip,
                    source_route=original,
                )
            ]
        return _resolve_via_rib(state, original, route.next_hop_ip, depth)
    if isinstance(route, BgpRoute):
        return _resolve_via_rib(state, original, route.next_hop_ip, depth)
    return [FibEntry(prefix, FibActionType.DROP_NO_ROUTE, source_route=original)]


def _resolve_via_rib(state, original, next_hop: Optional[Ip], depth) -> List[FibEntry]:
    if next_hop is None:
        return [
            FibEntry(
                original.prefix, FibActionType.DROP_NO_ROUTE, source_route=original
            )
        ]
    match = state.main_rib.longest_match(next_hop)
    if match is None:
        return [
            FibEntry(
                original.prefix, FibActionType.DROP_NO_ROUTE, source_route=original
            )
        ]
    _prefix, resolving_routes = match
    entries: List[FibEntry] = []
    for resolving in resolving_routes:
        if resolving.prefix == original.prefix and resolving is original:
            continue  # self-resolution guard
        for entry in _resolve_route(state, original, resolving, depth + 1, next_hop):
            entries.append(entry)
    # Deduplicate ECMP duplicates deterministically.
    unique: Dict[Tuple, FibEntry] = {}
    for entry in entries:
        key = (entry.action, entry.out_interface, entry.arp_ip)
        unique.setdefault(key, entry)
    return [unique[key] for key in sorted(unique, key=repr)]


def _next_hop_of(route) -> Optional[Ip]:
    return getattr(route, "next_hop_ip", None)


def compute_fibs(dataplane: DataPlane) -> Dict[str, Fib]:
    """Build the FIB of every node in a computed data plane."""
    return {
        hostname: build_fib(state)
        for hostname, state in sorted(dataplane.nodes.items())
    }
