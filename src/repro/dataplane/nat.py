"""Packet transformations (NAT) — concrete and symbolic (§4.2.3).

Symbolically, a NAT rule is a *relation* between input and output packet
variables: "NAT edges intersect the BDDs for the input set of headers
with the BDD for the NAT rule, then erase (existentially quantify) the
input headers to get only the output headers, and finally remap
variables in that BDD to those used to represent reachable sets. For
efficiency, we implemented an optimized BDD operation to execute these
three steps simultaneously" — that fused operation is
:meth:`repro.bdd.engine.BddEngine.transform` /
:meth:`~repro.bdd.engine.BddEngine.and_exists`.

Relationships between packets exist only on transformation *edges*; node
sets always hold individual packets, so arbitrarily many NATs never grow
the variable count (unlike SMT encodings where each NAT doubles it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bdd.engine import FALSE, TRUE
from repro.config.model import Action, Device, NatKind, NatRule
from repro.dataplane.acl import evaluate_acl
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet


@dataclass
class SymbolicTransformation:
    """A guarded rewrite: packets in ``match`` have ``field`` rewritten
    per ``relation``; the rest pass through unchanged."""

    match: int  # BDD over input vars
    relation: int  # BDD over input+output vars of `field`
    field: str
    encoder: PacketEncoder

    def apply(self, packet_set: int) -> int:
        engine = self.encoder.engine
        hit = engine.and_(packet_set, self.match)
        miss = engine.diff(packet_set, self.match)
        if hit == FALSE:
            return miss
        transformed = engine.transform(
            hit,
            self.relation,
            self.encoder.input_cube([self.field]),
            self.encoder.rename_out_to_in([self.field]),
        )
        return engine.or_(transformed, miss)


class NatPipeline:
    """The ordered NAT rules of one interface+direction, applied with
    first-match semantics — concretely or symbolically."""

    def __init__(self, device: Device, rules: List[NatRule], kind: NatKind):
        self.device = device
        self.rules = [rule for rule in rules if rule.kind is kind or kind is None]
        self.kind = kind

    # -- concrete ----------------------------------------------------------

    def apply_concrete(self, packet: Packet) -> Packet:
        """First matching rule rewrites; no match passes through."""
        for rule in self.rules:
            if not self._rule_matches(rule, packet):
                continue
            return self._rewrite(rule, packet)
        return packet

    def apply_concrete_trace(
        self, packet: Packet
    ) -> Tuple[Packet, List[str]]:
        """Like :meth:`apply_concrete`, but also return the ordered
        per-rule evaluation trace (skipped rules included) for the
        provenance layer."""
        trace: List[str] = []
        for index, rule in enumerate(self.rules):
            label = f"{rule.kind.value} rule {index} pool {rule.pool}"
            if not self._rule_matches(rule, packet):
                trace.append(f"nat {label}: no match")
                continue
            rewritten = self._rewrite(rule, packet)
            changed = (
                f"dst {packet.dst_ip} -> {rewritten.dst_ip}"
                if rule.kind is NatKind.DESTINATION
                else f"src {packet.src_ip} -> {rewritten.src_ip}"
            )
            trace.append(f"nat {label}: matched, rewrote {changed}")
            return rewritten, trace
        if trace:
            trace.append("end of NAT pipeline: packet unchanged")
        return packet, trace

    def _rule_matches(self, rule: NatRule, packet: Packet) -> bool:
        if rule.kind is NatKind.STATIC and rule.static_inside is not None:
            return rule.static_inside.contains_ip(packet.src_ip)
        if rule.match_acl is None:
            return True
        acl = self.device.acls.get(rule.match_acl)
        if acl is None:
            return False
        return evaluate_acl(acl, packet).action is Action.PERMIT

    def _rewrite(self, rule: NatRule, packet: Packet) -> Packet:
        if rule.kind is NatKind.DESTINATION:
            return packet.with_fields(dst_ip=_concrete_pool_ip(rule, packet.dst_ip))
        return packet.with_fields(src_ip=_concrete_pool_ip(rule, packet.src_ip))

    # -- symbolic ----------------------------------------------------------

    def symbolic_steps(self, encoder: PacketEncoder) -> List[SymbolicTransformation]:
        """One guarded transformation per rule, with earlier rules'
        match spaces subtracted (first-match)."""
        engine = encoder.engine
        steps: List[SymbolicTransformation] = []
        claimed = FALSE
        for rule in self.rules:
            match = self._rule_match_space(rule, encoder)
            fresh = engine.diff(match, claimed)
            claimed = engine.or_(claimed, match)
            if fresh == FALSE:
                continue
            field = (
                f.DST_IP if rule.kind is NatKind.DESTINATION else f.SRC_IP
            )
            relation = self._rule_relation(rule, field, encoder)
            steps.append(
                SymbolicTransformation(
                    match=fresh, relation=relation, field=field, encoder=encoder
                )
            )
        return steps

    def apply_symbolic(self, encoder: PacketEncoder, packet_set: int) -> int:
        """Apply the whole pipeline to a symbolic packet set."""
        engine = encoder.engine
        remaining = packet_set
        result = FALSE
        for step in self.symbolic_steps(encoder):
            hit = engine.and_(remaining, step.match)
            remaining = engine.diff(remaining, step.match)
            if hit == FALSE:
                continue
            transformed = engine.transform(
                hit,
                step.relation,
                encoder.input_cube([step.field]),
                encoder.rename_out_to_in([step.field]),
            )
            result = engine.or_(result, transformed)
        return engine.or_(result, remaining)

    def _rule_match_space(self, rule: NatRule, encoder: PacketEncoder) -> int:
        if rule.kind is NatKind.STATIC and rule.static_inside is not None:
            return encoder.ip_in_prefix(f.SRC_IP, rule.static_inside)
        if rule.match_acl is None:
            return TRUE
        acl = self.device.acls.get(rule.match_acl)
        if acl is None:
            return FALSE
        from repro.dataplane.acl import acl_permit_space

        return acl_permit_space(acl, encoder)

    def _rule_relation(
        self, rule: NatRule, field: str, encoder: PacketEncoder
    ) -> int:
        engine = encoder.engine
        if rule.kind is NatKind.STATIC and rule.static_inside is not None:
            # 1:1 prefix mapping: output = pool base + offset of input.
            # For the common /32-to-/32 case this is a fixed rewrite; we
            # support the general case bit-by-bit: host bits identical,
            # network bits replaced.
            plen = rule.pool.length
            relation = encoder.out_in_prefix(field, rule.pool)
            for bit in range(plen, 32):
                in_level = encoder.layout.var(field, bit)
                out_level = encoder.layout.out_var(field, bit)
                both = engine.and_(engine.var(in_level), engine.var(out_level))
                neither = engine.and_(
                    engine.nvar(in_level), engine.nvar(out_level)
                )
                relation = engine.and_(relation, engine.or_(both, neither))
            return relation
        # Dynamic pool: any output address within the pool.
        return encoder.out_in_prefix(field, rule.pool)


def _concrete_pool_ip(rule: NatRule, original: Ip) -> Ip:
    """Deterministic concrete rewrite target within the pool."""
    if rule.kind is NatKind.STATIC and rule.static_inside is not None:
        offset = original.value - rule.static_inside.first_ip.value
        return Ip(rule.pool.first_ip.value + offset)
    if rule.pool.length == 32:
        return rule.pool.first_ip
    # Preserve host bits within the pool where possible (stable mapping).
    host_mask = (1 << (32 - rule.pool.length)) - 1
    return Ip(rule.pool.first_ip.value | (original.value & host_mask))


def source_nat_pipeline(device: Device, interface_name: str) -> NatPipeline:
    """The source-NAT pipeline of an interface's outgoing direction."""
    iface = device.interfaces[interface_name]
    return NatPipeline(device, iface.src_nat_rules, kind=None)


def dest_nat_pipeline(device: Device, interface_name: str) -> NatPipeline:
    """The destination-NAT pipeline of an interface's incoming direction."""
    iface = device.interfaces[interface_name]
    return NatPipeline(device, iface.dst_nat_rules, kind=None)
