"""Incremental snapshot analysis: delta engine with dirty-set
propagation and selective re-simulation.

Entry point: :meth:`repro.core.session.Session.delta`, or directly
:func:`delta_session`. Differential validation against a full recompute
is forced via ``REPRO_DELTA_VALIDATE=1`` (or ``validate=True``);
``python -m repro.delta`` sweeps the synthetic network registry with
validation on.
"""

from repro.delta.dirty import (
    DirtyComputation,
    compute_dirty_set,
    protocol_edges,
    routing_fingerprint,
)
from repro.delta.engine import (
    DeltaInfo,
    DeltaValidationError,
    delta_session,
    fib_lines,
    validate_enabled,
)

__all__ = [
    "DeltaInfo",
    "DeltaValidationError",
    "DirtyComputation",
    "compute_dirty_set",
    "delta_session",
    "fib_lines",
    "protocol_edges",
    "routing_fingerprint",
    "validate_enabled",
]
