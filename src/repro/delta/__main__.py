"""Delta-engine validation sweep: ``python -m repro.delta``.

For every network in the Table 1 registry, applies single-device edits
(one routing-irrelevant, one routing-relevant) and runs the incremental
engine with differential validation forced on: the spliced FIBs must be
byte-identical to a from-scratch recompute. CI runs this as the
``delta-validate`` job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Tuple

from repro.core.session import Session
from repro.delta.edits import irrelevant_edit, relevant_edit
from repro.delta.engine import DeltaValidationError
from repro.synth.networks import NETWORKS

EDITS = (
    ("irrelevant", irrelevant_edit),
    ("relevant", relevant_edit),
)


def run_network(
    name: str,
    configs: Dict[str, str],
    verbose: bool = False,
) -> Tuple[int, int]:
    """Validate both edit kinds against one network; returns
    (passed, failed) counts."""
    base = Session.from_texts(configs)
    # Precompute so the delta calls warm-start from converged state.
    base.fibs
    target = sorted(configs)[0]
    passed = failed = 0
    for label, edit in EDITS:
        new_text = edit(configs[target])
        try:
            session = base.delta({target: new_text}, validate=True)
        except DeltaValidationError as exc:
            failed += 1
            print(f"FAIL {name} [{label} edit on {target}]:\n{exc}")
            continue
        info = session.delta_info
        passed += 1
        status = (
            f"fallback ({info.fallback_reason})"
            if info.fallback
            else f"{len(info.dirty_devices)} dirty / "
            f"{info.reused_devices} reused"
        )
        if verbose or info.fallback:
            print(f"  ok {name} [{label} edit on {target}]: {status}")
        if label == "irrelevant" and not info.fallback and info.dirty_devices:
            # Not a correctness failure (validation passed), but the
            # equivalence pruning should have recognized this edit.
            print(
                f"  note {name}: routing-inert edit dirtied "
                f"{info.dirty_devices}"
            )
    return passed, failed


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.delta",
        description="validate the incremental delta engine against "
        "full recomputes across the network registry",
    )
    parser.add_argument(
        "--networks",
        help="comma-separated registry names (default: all of NET1-NET11)",
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="registry scale knob (default 1)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="only NET1 (fast CI signal)"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        wanted = {"NET1"}
    elif args.networks:
        wanted = {n.strip() for n in args.networks.split(",") if n.strip()}
    else:
        wanted = {spec.name for spec in NETWORKS}

    total_passed = total_failed = 0
    for spec in NETWORKS:
        if spec.name not in wanted:
            continue
        configs = spec.generate(args.scale)
        print(f"{spec.name}: {len(configs)} devices ({spec.network_type})")
        passed, failed = run_network(spec.name, configs, verbose=args.verbose)
        total_passed += passed
        total_failed += failed
    print(
        f"delta validation: {total_passed} passed, {total_failed} failed "
        f"across {len(wanted)} network(s)"
    )
    return 1 if total_failed else 0


if __name__ == "__main__":
    sys.exit(main())
