"""Dirty-set computation: which devices could route differently?

The delta engine diffs a new snapshot against an analyzed base and
re-simulates only the devices whose routing state could have changed.
Two ideas from the literature meet here:

* **Equivalence pruning** (Plankton, Prabhu et al.): a device whose
  *routing-relevant* configuration projection is unchanged contributes
  no seed, even if its file bytes changed. Editing an NTP server, an
  SNMP community, an interface description — none of it can move a
  route, so a snapshot differing only in such lines has an *empty*
  dirty set and reuses the base data plane wholesale.
* **Selective re-simulation** (Yang et al., "Diagnosing and Repairing
  Distributed Routing Configurations"): seeds propagate through the
  protocol topology to a conservative fixed point. Propagation follows
  the union of the base and new snapshots' protocol adjacencies — an
  edge that exists in either world can carry a changed announcement.

The fixed point here is component closure: OSPF is link-state (any
change inside a connected OSPF domain is flooded to every member), and
BGP announcements traverse candidate sessions transitively, so the
dirty set grows to the full protocol-connected component of each seed.
That over-approximates (a changed device dirties peers even when its
exports happen to be identical) but can never under-approximate: a
clean device has an unchanged routing projection, and every path an
announcement could take to reach it from any changed device crosses
only protocol edges — all of which lie inside dirty components. See
DESIGN.md ("Dirty-set soundness") for the full argument.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.config.model import Device, Snapshot
from repro.routing.bgp import compute_bgp_sessions
from repro.routing.ospf import ospf_neighbors
from repro.routing.topology import build_layer3_topology

#: Fields that can never influence routing: pure annotations. Stripped
#: recursively so an edit that only *shifts* later lines of a file (and
#: thus their source_line attribution) does not poison the fingerprint.
_ANNOTATION_FIELDS = frozenset({"source_file", "source_line", "description"})


def _canon(value) -> object:
    """A canonical, hashable rendering of (nested) model objects."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _canon(getattr(value, f.name)))
                for f in dataclasses.fields(value)
                if f.name not in _ANNOTATION_FIELDS
            ),
        )
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(str(v) for v in value))
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    return repr(value)


def routing_fingerprint(device: Device) -> str:
    """Hash of the device's routing-relevant configuration projection.

    Includes: interfaces (addresses, state, OSPF parameters, attached
    filters), static routes, the OSPF and BGP processes, and — only when
    the device participates in a routing protocol — the policy
    structures those protocols evaluate (route maps and the lists they
    reference) plus, for BGP speakers, ACLs (which gate TCP/179 session
    viability, §4.1.1). Excludes management-plane configuration (NTP,
    DNS, SNMP), zones/zone policies (forwarding-time only, re-evaluated
    against the new snapshot), roles, raw config lines, and all
    source-location annotations.
    """
    has_bgp = device.bgp is not None
    policy_relevant = has_bgp or device.ospf is not None
    projection = (
        ("hostname", device.hostname),
        ("interfaces", _canon(device.interfaces)),
        ("static_routes", _canon(device.static_routes)),
        ("ospf", _canon(device.ospf)),
        ("bgp", _canon(device.bgp)),
        # ACLs reach routing only through BGP session viability.
        ("acls", _canon(device.acls) if has_bgp else None),
        ("route_maps", _canon(device.route_maps) if policy_relevant else None),
        ("prefix_lists", _canon(device.prefix_lists) if policy_relevant else None),
        (
            "community_lists",
            _canon(device.community_lists) if policy_relevant else None,
        ),
        (
            "as_path_lists",
            _canon(device.as_path_lists) if policy_relevant else None,
        ),
    )
    return hashlib.sha256(repr(projection).encode()).hexdigest()


def protocol_edges(snapshot: Snapshot) -> Set[Tuple[str, str]]:
    """Undirected edges along which routing information can flow:
    OSPF adjacencies and candidate BGP sessions (candidate, not
    established — a config change can flip establishment itself)."""
    edges: Set[Tuple[str, str]] = set()
    topology = build_layer3_topology(snapshot)
    for neighbor in ospf_neighbors(snapshot, topology):
        a, b = neighbor.edge.tail.node, neighbor.edge.head.node
        if a != b:
            edges.add((min(a, b), max(a, b)))
    sessions, _issues = compute_bgp_sessions(snapshot)
    for session in sessions:
        a, b = session.local_node, session.remote_node
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return edges


@dataclass
class DirtyComputation:
    """The result of diffing two snapshots for selective re-simulation."""

    #: Devices whose routing projection changed, or that exist in only
    #: one of the two snapshots.
    seeds: List[str]
    #: Seeds closed over the union protocol topology. May include
    #: hostnames absent from the new snapshot (removed devices) — the
    #: engine intersects with the new snapshot before re-simulating.
    dirty: Set[str]
    #: The union-of-both-worlds propagation edges used for the closure.
    edges: Set[Tuple[str, str]]

    def dirty_in(self, snapshot: Snapshot) -> Set[str]:
        return self.dirty & set(snapshot.devices)


def compute_dirty_set(
    base: Snapshot,
    new: Snapshot,
    candidate_hosts: Optional[Set[str]] = None,
) -> DirtyComputation:
    """Seed with changed/added/removed devices, then close over the
    union of both snapshots' protocol adjacencies.

    ``candidate_hosts`` restricts the fingerprint comparison to hosts
    that could possibly have changed — the delta engine passes the
    devices whose config *files* changed bytes, since an unchanged file
    parses to an identical device. Hosts outside the set are assumed
    clean without hashing them, which keeps the diff O(edit), not
    O(network). The caller must ensure the set covers every host whose
    definition changed; ``None`` compares everything.
    """
    base_hosts = set(base.devices)
    new_hosts = set(new.devices)
    seeds: Set[str] = (base_hosts ^ new_hosts)
    compare = base_hosts & new_hosts
    if candidate_hosts is not None:
        compare &= candidate_hosts
    for hostname in compare:
        if routing_fingerprint(base.devices[hostname]) != routing_fingerprint(
            new.devices[hostname]
        ):
            seeds.add(hostname)
    if not seeds:
        # Nothing changed routing-wise: no need to build either
        # snapshot's protocol topology just to close over zero seeds.
        return DirtyComputation(seeds=[], dirty=set(), edges=set())
    edges = protocol_edges(base) | protocol_edges(new)
    adjacency: Dict[str, Set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    dirty: Set[str] = set(seeds)
    frontier: List[str] = list(seeds)
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in dirty:
                dirty.add(neighbor)
                frontier.append(neighbor)
    return DirtyComputation(seeds=sorted(seeds), dirty=dirty, edges=edges)
