"""Canonical single-line config edits, vendor-aware.

Shared by the validation CLI (``python -m repro.delta``) and the
Table 2 benchmark's incremental phase: both need a "one line changed"
snapshot that parses cleanly on either vendor syntax.
"""

from __future__ import annotations

from repro.config.loader import detect_syntax


def irrelevant_edit(text: str) -> str:
    """Add an NTP server: modeled (no parse warning) but routing-inert,
    so the dirty set should come out empty."""
    if detect_syntax(text) == "juniperish":
        return text + "set system ntp server 203.0.113.250\n"
    return text + "ntp server 203.0.113.250\n"


def relevant_edit(text: str) -> str:
    """Add a discard static route: changes the device's routing
    fingerprint and therefore seeds the dirty set."""
    if detect_syntax(text) == "juniperish":
        return (
            text
            + "set routing-options static route 203.0.113.128/25 "
            + "next-hop discard\n"
        )
    return text + "ip route 203.0.113.128 255.255.255.128 Null0\n"
