"""Selective re-simulation: warm-start a new snapshot from a base.

The production workload the paper centers on (§5.1) is reviewing one
small change against a large network, thousands of times a day. The
content-addressed cache only helps when snapshots are *identical*; this
engine makes the common almost-identical case fast:

1. Parse only changed files (per-device memo in the snapshot cache).
2. Diff routing fingerprints and propagate a dirty set
   (:mod:`repro.delta.dirty`).
3. Re-run the routing pipeline restricted to dirty devices; splice the
   base data plane's converged per-node state (RIBs, BGP RIBs, FIBs)
   through for every clean device.
4. Optionally validate: recompute from scratch and require
   byte-identical FIBs (``REPRO_DELTA_VALIDATE=1``).

Splicing is exact, not approximate. Clean devices' state is identical
to what a full run would produce because (a) their routing projection
is unchanged, (b) no protocol edge connects a clean device to a dirty
one (the dirty set is closed over protocol components), and (c) the
engine's deterministic schedule (coloring + logical clocks, §4.1.2) is
component-local, so a restricted run replays exactly the events a full
run would generate for those components. Whenever one of those
guarantees cannot be established — non-convergence, arrival-order-
sensitive best routes, candidate sessions shifting between clean
devices — the engine *falls back to a full recompute* rather than
splice questionable state.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.dataplane.fib import build_fib, compute_fibs
from repro.delta.dirty import DirtyComputation, compute_dirty_set
from repro.provenance import DerivationNode, DerivationTree, first_divergence
from repro.routing.bgp import compute_bgp_sessions
from repro.routing.engine import (
    DataPlane,
    DataPlaneStats,
    NodeState,
    _evaluate_session_viability,
    _igp_cost_fn,
    _install_connected,
    _install_static,
    _merge_bgp_into_main,
    _run_bgp,
    _run_ospf,
    compute_dataplane,
)
from repro.routing.rib import Rib
from repro.routing.topology import build_layer3_topology


class DeltaValidationError(AssertionError):
    """Differential validation found a FIB mismatch between the delta
    engine's spliced result and a from-scratch recompute."""


@dataclass
class DeltaInfo:
    """What one :meth:`Session.delta` call changed and reused."""

    changed_files: List[str]
    seeds: List[str] = field(default_factory=list)
    dirty_devices: List[str] = field(default_factory=list)
    reused_devices: int = 0
    #: Files whose bytes were carried over unchanged from the base (the
    #: per-device parse memo serves these without reparsing).
    parse_memo_hits: int = 0
    fallback: bool = False
    fallback_reason: str = ""
    validated: bool = False
    #: Coverage-guided prioritization (repro.questions.coverage): the
    #: recorded questions whose historical coverage vectors overlap this
    #: delta's impact set, ranked most-exposed first, and the ones whose
    #: footprint provably misses it (their base answers still hold).
    #: Both empty when no question ran against the base snapshot.
    questions_affected: List[Dict] = field(default_factory=list)
    questions_skipped: List[Dict] = field(default_factory=list)

    def to_json(self) -> Dict:
        return {
            "changed_files": list(self.changed_files),
            "seeds": list(self.seeds),
            "dirty_devices": list(self.dirty_devices),
            "reused_devices": self.reused_devices,
            "parse_memo_hits": self.parse_memo_hits,
            "fallback": self.fallback,
            "fallback_reason": self.fallback_reason,
            "validated": self.validated,
            "questions_affected": [dict(e) for e in self.questions_affected],
            "questions_skipped": [dict(e) for e in self.questions_skipped],
        }


def validate_enabled() -> bool:
    """Whether ``REPRO_DELTA_VALIDATE`` requests differential checking."""
    value = os.environ.get("REPRO_DELTA_VALIDATE", "").strip().lower()
    return value not in ("", "0", "false", "no")


def delta_session(
    base,
    changed_configs: Dict[str, Optional[str]],
    validate=None,
    store_result: bool = True,
):
    """Implementation behind :meth:`repro.core.session.Session.delta`.

    ``store_result=False`` suppresses persisting the spliced data plane
    *and* the variant's snapshot entry to the cache — for one-shot
    analyses (failure sweeps) whose thousands of synthetic variants
    would otherwise churn the LRU. Per-device parse entries are still
    written: they are content-addressed and shared across variants.
    """
    from repro.core.session import Session

    if base._configs is None:
        raise ValueError(
            "delta requires a base session built via Session.from_texts or "
            "Session.from_dir (the engine diffs raw config texts)"
        )
    new_configs = dict(base._configs)
    for filename, text in changed_configs.items():
        if text is None:
            new_configs.pop(filename, None)
        elif not isinstance(text, str):
            raise TypeError(f"config text for {filename!r} must be str or None")
        else:
            new_configs[filename] = text
    if not new_configs:
        raise ValueError("delta removed every config file")

    # Files whose bytes actually differ between base and new — an edit
    # that rewrites a file with identical text is not a change.
    changed_files = {
        filename
        for filename in set(base._configs) | set(new_configs)
        if base._configs.get(filename) != new_configs.get(filename)
    }
    info = DeltaInfo(changed_files=sorted(changed_files))
    info.parse_memo_hits = sum(
        1
        for filename, text in new_configs.items()
        if base._configs.get(filename) == text
    )
    started = time.perf_counter()
    with obs.span("delta", changed=len(changed_files)):
        new_session = Session.from_texts(
            new_configs,
            cache=base._cache,
            store_snapshot=store_result,
            settings=base.settings,
            semantics=base.semantics,
        )
        new_session.delta_info = info
        new_session.delta_base_key = base.snapshot_key
        reason = _try_splice(base, new_session, info, store_result=store_result)
        if reason is not None:
            info.fallback = True
            info.fallback_reason = reason
            obs.metrics().inc("delta.fallback_full")
            # Always-on flight event: fallbacks are exactly the "why was
            # this request slow" evidence a postmortem bundle needs.
            obs.flight.record(
                "delta_fallback", reason, changed=len(changed_files)
            )
        _prioritize_questions(base, new_session, info)
        _record_metrics(info)
        should_validate = (
            validate if validate is not None else validate_enabled()
        )
        # A fallback result IS a full recompute; only spliced data
        # planes need the differential check.
        if should_validate and not info.fallback:
            _validate(base, new_session)
            info.validated = True
    obs.observe_phase("delta", time.perf_counter() - started)
    return new_session


def _changed_hosts(base, new_session, info: DeltaInfo) -> Set[str]:
    """Devices whose config file changed bytes (on either side of a
    rename/delete)."""
    return {
        hostname
        for filename in info.changed_files
        for hostname in (
            base.snapshot.sources.get(filename),
            new_session.snapshot.sources.get(filename),
        )
        if hostname is not None
    }


def _prioritize_questions(base, new_session, info: DeltaInfo) -> None:
    """Rank recorded questions against this delta's impact set and drop
    coverage touches that no longer describe current structures.

    Structure identity (ACL line indices, clause seqs, source lines) can
    shift on *any* byte change — including routing-inert edits whose
    dirty set is empty and fallbacks where no dirty set was computed —
    so changed-byte hosts are always invalidated here, on top of the
    splice path's dirty-host invalidation. The run registry survives
    invalidation: records describe past executions, and the skipped ones
    are carried forward under the new snapshot key by
    ``questions_for_delta`` because their answers are provably
    unchanged."""
    from repro.questions import coverage as qcov

    changed = _changed_hosts(base, new_session, info)
    tracker = obs.coverage()
    # A fallback is only *unbounded* when the dirty computation never
    # bounded the blast radius. The "every device dirty" perf fallback
    # still produced an exact dirty set (the whole network), so the
    # scope rules stay sound: routing questions all rerun, config
    # questions rerun exactly on changed-byte hosts. A changed device
    # *set* is always unbounded: global answers enumerate the device
    # universe, so even an isolated new host can grow every answer.
    unbounded = (
        info.fallback
        and set(info.dirty_devices) != set(new_session.snapshot.devices)
    ) or set(base.snapshot.devices) != set(new_session.snapshot.devices)
    affected, skipped = qcov.questions_for_delta(
        tracker,
        base._cache,
        base.snapshot_key,
        new_session.snapshot_key,
        changed_hosts=changed,
        dirty_hosts=info.dirty_devices,
        everything=unbounded,
    )
    info.questions_affected = affected
    info.questions_skipped = skipped
    if changed:
        tracker.invalidate_hosts(changed)


def _record_metrics(info: DeltaInfo) -> None:
    metrics = obs.metrics()
    metrics.inc("delta.runs")
    metrics.inc("delta.dirty_devices", len(info.dirty_devices))
    metrics.inc("delta.reused_devices", info.reused_devices)
    # Parse memo hits are also counted at the loader (cache hits); this
    # counter attributes the reuse to the delta path specifically.
    metrics.inc("delta.parse_memo_hits", info.parse_memo_hits)


def _try_splice(
    base, new_session, info: DeltaInfo, store_result: bool = True
) -> Optional[str]:
    """Attempt the selective re-simulation; on success install the
    spliced data plane and FIBs on ``new_session`` and return None, else
    return the fallback reason (the session then computes lazily from
    scratch, which is always correct)."""
    base_snapshot = base.snapshot
    new_snapshot = new_session.snapshot
    for snapshot, label in ((base_snapshot, "base"), (new_snapshot, "new")):
        sources = snapshot.sources
        if not sources:
            return f"{label} snapshot has no filename->hostname map"
        if len(set(sources.values())) != len(sources):
            return f"duplicate hostnames in {label} snapshot"
    base_dp = base.dataplane
    if not base_dp.converged:
        return "base data plane did not converge"

    # Only devices whose config file changed bytes can have a changed
    # fingerprint (sources are injective here, checked above), so the
    # diff is O(edit) rather than O(network).
    candidates = {
        hostname
        for filename in info.changed_files
        for hostname in (
            base_snapshot.sources.get(filename),
            new_snapshot.sources.get(filename),
        )
        if hostname is not None
    }
    dirty_comp = compute_dirty_set(
        base_snapshot, new_snapshot, candidate_hosts=candidates
    )
    info.seeds = dirty_comp.seeds
    dirty = dirty_comp.dirty_in(new_snapshot)
    info.dirty_devices = sorted(dirty)
    info.reused_devices = len(new_snapshot.devices) - len(dirty)
    if dirty and dirty == set(new_snapshot.devices):
        # The whole network is dirty: a restricted run would redo all
        # the work of a full run and add splice bookkeeping on top.
        return "every device dirty; full recompute is optimal"

    if not dirty_comp.seeds:
        # Routing-inert edit on an identical host set (empty seeds, not
        # merely empty dirty: a *removed* isolated device also yields an
        # empty dirty set but invalidates the base topology). The
        # routing engine consumes only fingerprint-covered fields, and
        # every fingerprint matched, so a full run of the new snapshot
        # is input-identical to the base run and — the schedule being
        # deterministic — would reproduce it byte for byte,
        # order-sensitive tie-breaks included. Reuse the base data
        # plane wholesale; no re-simulation, no order-sensitivity scan.
        dataplane = _reused_dataplane(base_dp, new_snapshot)
    else:
        # Clean devices' BGP state must be attribute-determined: if any
        # best route on a clean device was chosen by the arrival-clock
        # tie-break, a full run of the new snapshot could legitimately
        # pick another winner there, and splicing would not be
        # byte-identical.
        clean = set(new_snapshot.devices) - dirty
        for hostname in sorted(clean):
            state = base_dp.nodes.get(hostname)
            if state is None:
                return f"clean device {hostname} missing from base data plane"
            if state.bgp_rib is not None:
                # Cached RIBs drop their IGP-cost closure on pickling;
                # rewire it before re-running the decision filters.
                state.bgp_rib._igp_cost = _igp_cost_fn(state)
                if state.bgp_rib.order_sensitive_prefixes():
                    return f"order-sensitive BGP best routes on {hostname}"

        dataplane, reason = _restricted_dataplane(
            base_dp, new_snapshot, dirty, base.settings, base.semantics
        )
        if dataplane is None:
            return reason

    new_session._dataplane = dataplane
    # Persist re-simulated planes so future processes warm-start from
    # them. The wholesale-reuse plane is deliberately NOT stored:
    # pickling it costs more than everything else on this path combined,
    # and the base plane it aliases is already cached under the base
    # key — a later process re-derives the splice with one cheap delta.
    if store_result and dirty_comp.seeds and new_session._cache is not None:
        new_session._cache.store(
            "dataplane", new_session.snapshot_key, dataplane
        )
    # FIB splice: clean nodes keep the base Fib objects (FIBs derive
    # only from the node's own main RIB, which is unchanged).
    base_fibs = base.fibs
    with obs.span("delta.fib", dirty=len(dirty)):
        fibs = {}
        for hostname, state in dataplane.nodes.items():
            if hostname in dirty:
                fibs[hostname] = build_fib(state)
            else:
                fibs[hostname] = base_fibs[hostname]
    new_session._fibs = fibs
    # Derived state keyed by device: coverage touches recorded against
    # dirty devices describe structures that may no longer exist.
    obs.coverage().invalidate_hosts(dirty)
    return None


def _reused_dataplane(base_dp: DataPlane, new_snapshot) -> DataPlane:
    """Empty seed set: rewrap the base data plane around the new
    snapshot. Node states alias the base's converged RIBs (never mutated
    after compute); only the ``device`` reference is swapped so
    forwarding-time queries — which do read non-routing fields like
    zones — evaluate against the new snapshot's objects. The host sets
    are identical (empty seeds), so the base topology and sessions
    describe the new snapshot exactly."""
    nodes = {
        hostname: NodeState(
            device=new_snapshot.device(hostname),
            main_rib=base_dp.nodes[hostname].main_rib,
            bgp_rib=base_dp.nodes[hostname].bgp_rib,
            connected_routes=base_dp.nodes[hostname].connected_routes,
            bgp_in_main=base_dp.nodes[hostname].bgp_in_main,
        )
        for hostname in new_snapshot.hostnames()
    }
    return DataPlane(
        snapshot=new_snapshot,
        topology=base_dp.topology,
        nodes=nodes,
        sessions=base_dp.sessions,
        session_issues=base_dp.session_issues,
        converged=True,
        oscillating_prefixes=list(base_dp.oscillating_prefixes),
        stats=base_dp.stats,
    )


def _restricted_dataplane(
    base_dp: DataPlane,
    new_snapshot,
    dirty: Set[str],
    settings,
    semantics,
) -> Tuple[Optional[DataPlane], Optional[str]]:
    """Run the routing pipeline for dirty devices only, splicing base
    node state through for clean ones. Returns (dataplane, None) or
    (None, fallback_reason)."""
    started = time.perf_counter()
    topology = build_layer3_topology(new_snapshot)
    sessions, issues = compute_bgp_sessions(new_snapshot)
    for session in sessions:
        if (session.local_node in dirty) != (session.remote_node in dirty):
            # Cannot happen when the dirty set is closed over protocol
            # edges; guard anyway — splicing across it would be unsound.
            return None, (
                f"candidate session {session.local_node}->"
                f"{session.remote_node} crosses the dirty boundary"
            )
    dirty_sessions = [s for s in sessions if s.local_node in dirty]
    # Clean-to-clean sessions must match the base exactly (IP-ownership
    # races between devices can re-target a session even when both
    # endpoints' configs are unchanged).
    base_by_key = {s.key: s for s in base_dp.sessions}
    clean_keys = {s.key for s in sessions if s.local_node not in dirty}
    base_clean_keys = {
        key for key, s in base_by_key.items()
        if s.local_node not in dirty and s.remote_node not in dirty
    }
    if clean_keys != base_clean_keys:
        return None, "candidate sessions between clean devices changed"
    for session in sessions:
        if session.local_node not in dirty:
            previous = base_by_key[session.key]
            session.established = previous.established
            session.failure_reason = previous.failure_reason

    nodes: Dict[str, NodeState] = {}
    for hostname in new_snapshot.hostnames():
        device = new_snapshot.device(hostname)
        if hostname in dirty:
            nodes[hostname] = NodeState(device=device, main_rib=Rib(owner=hostname))
        else:
            base_state = base_dp.nodes[hostname]
            # Structural sharing: converged RIB/FIB objects are never
            # mutated after compute, so clean nodes alias them. Only the
            # Device reference is updated to the new snapshot's object
            # (it may differ in routing-irrelevant fields like NTP).
            nodes[hostname] = NodeState(
                device=device,
                main_rib=base_state.main_rib,
                bgp_rib=base_state.bgp_rib,
                connected_routes=base_state.connected_routes,
                bgp_in_main=base_state.bgp_in_main,
            )
    dirty_nodes = {h: nodes[h] for h in sorted(dirty) if h in nodes}

    stats = DataPlaneStats()
    with obs.span("delta.dataplane", dirty=len(dirty_nodes)):
        _install_connected(dirty_nodes)
        _install_static(dirty_nodes)
        _run_ospf(
            new_snapshot, topology, dirty_nodes, semantics,
            restrict=set(dirty_nodes),
        )
        converged = True
        established_keys: Set[Tuple[str, str, str]] = set()
        for round_number in range(settings.max_session_rounds):
            stats.session_rounds = round_number + 1
            _evaluate_session_viability(new_snapshot, nodes, dirty_sessions)
            new_keys = {s.key for s in dirty_sessions if s.established}
            if round_number > 0 and new_keys == established_keys:
                break
            established_keys = new_keys
            converged, _oscillating = _run_bgp(
                new_snapshot, dirty_nodes, dirty_sessions, settings,
                semantics, stats,
            )
            _merge_bgp_into_main(dirty_nodes)
            if not converged:
                break
    if not converged:
        return None, "restricted BGP run did not converge"
    for hostname, state in dirty_nodes.items():
        if state.bgp_rib is not None and state.bgp_rib.order_sensitive_prefixes():
            return None, f"order-sensitive BGP best routes on {hostname}"
    stats.elapsed_seconds = time.perf_counter() - started
    stats.total_routes = sum(len(s.main_rib) for s in nodes.values())
    return (
        DataPlane(
            snapshot=new_snapshot,
            topology=topology,
            nodes=nodes,
            sessions=sessions,
            session_issues=issues,
            converged=True,
            oscillating_prefixes=[],
            stats=stats,
        ),
        None,
    )


# ----------------------------------------------------------------------
# Differential validation (REPRO_DELTA_VALIDATE)


def fib_lines(fibs) -> Dict[str, List[str]]:
    """Canonical per-host FIB rendering used for byte-identity checks."""
    return {
        hostname: sorted(
            entry.describe()
            for _prefix, entries in fib.entries()
            for entry in entries
        )
        for hostname, fib in sorted(fibs.items())
    }


def _fib_tree(label: str, hostname: str, lines: List[str]) -> DerivationTree:
    root = DerivationNode(label=f"{label} fib[{hostname}]", kind="fib")
    for line in lines:
        root.add(DerivationNode(label=line, kind="fib"))
    return DerivationTree(node=hostname, prefix="*", root=root)


def _validate(base, new_session) -> None:
    """Recompute the new snapshot from scratch and require byte-identical
    FIBs; locate any mismatch with the first-divergence machinery."""
    with obs.span("delta.validate"):
        full_dp = compute_dataplane(
            new_session.snapshot, new_session.settings, new_session.semantics
        )
        full_fibs = compute_fibs(full_dp)
        delta_lines = fib_lines(new_session.fibs)
        full_lines = fib_lines(full_fibs)
    if delta_lines == full_lines:
        obs.metrics().inc("delta.validate.ok")
        return
    obs.metrics().inc("delta.validate.mismatch")
    mismatched = sorted(
        set(delta_lines) ^ set(full_lines)
        | {
            hostname
            for hostname in set(delta_lines) & set(full_lines)
            if delta_lines[hostname] != full_lines[hostname]
        }
    )
    details = []
    for hostname in mismatched[:5]:
        divergence = first_divergence(
            _fib_tree("delta", hostname, delta_lines.get(hostname, [])),
            _fib_tree("full", hostname, full_lines.get(hostname, [])),
        )
        if divergence is not None:
            details.append(f"{hostname}: {divergence.describe()}")
        else:
            details.append(f"{hostname}: host present on one side only")
    raise DeltaValidationError(
        "delta engine produced FIBs that differ from a full recompute on "
        f"{len(mismatched)} device(s):\n" + "\n".join(details)
    )
