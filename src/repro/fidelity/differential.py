"""Differential engine testing (§4.3.2).

Batfish has two independent forwarding engines — the symbolic BDD
engine and the concrete traceroute engine. "Validating that such
engines produce identical results is instrumental in uncovering
modeling bugs." Two validation directions:

1. *Reachability verifies traceroute*: for each final location, run the
   (backward) reachability query, collect (start location, headerspace)
   tuples, pick a representative packet from each headerspace, run the
   traceroute engine, and check that the final location and disposition
   match.
2. *Traceroute verifies reachability*: walk each node's FIB; for each
   entry choose a packet matching the entry's prefix; trace it to its
   terminal location and disposition; then check the symbolic analysis
   agrees (the computed start set contains the original start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE
from repro.hdr import fields as f
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.parallel import pmap
from repro.reachability.examples import default_preferences
from repro.reachability.graph import Disposition, src_node
from repro.reachability.queries import NetworkAnalyzer
from repro.traceroute.engine import TracerouteEngine


@dataclass
class Mismatch:
    """One disagreement between the two engines."""

    direction: str  # "symbolic->concrete" | "concrete->symbolic"
    start: Tuple[str, str]
    packet: Packet
    expected: str
    actual: str

    def describe(self) -> str:
        return (
            f"[{self.direction}] {self.packet.describe()} from "
            f"{self.start[0]}[{self.start[1]}]: expected {self.expected}, "
            f"got {self.actual}"
        )


@dataclass
class DifferentialReport:
    checks: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def merge(self, other: "DifferentialReport") -> None:
        self.checks += other.checks
        self.mismatches.extend(other.mismatches)


def validate_symbolic_against_concrete(
    analyzer: NetworkAnalyzer, max_locations: Optional[int] = None
) -> DifferentialReport:
    """Direction 1: the traceroute engine verifies the BDD engine.

    For every delivery location, pick representative packets from the
    symbolic answer and confirm the concrete engine delivers them there.
    """
    report = DifferentialReport()
    tracer = TracerouteEngine(analyzer.dataplane, analyzer.fibs)
    encoder = analyzer.encoder
    locations: List[Tuple[str, Optional[str]]] = []
    for node in analyzer.graph.sink_nodes():
        if node[0] == "sink":
            locations.append((node[1], node[2]))
    if max_locations is not None:
        locations = locations[:max_locations]
    preferences = default_preferences(encoder)
    for hostname, iface_name in locations:
        start_sets = analyzer.destination_reachability(hostname, iface_name)
        for start, packet_set in sorted(
            start_sets.items(), key=lambda kv: tuple(map(str, kv[0]))
        ):
            packet = encoder.example_packet(packet_set, preferences)
            if packet is None:
                continue
            report.checks += 1
            traces = tracer.trace(packet, start[1], start[2])
            delivered_here = any(
                trace.disposition
                in (Disposition.DELIVERED, Disposition.ACCEPTED)
                and trace.hops[-1].node == hostname
                for trace in traces
            )
            if not delivered_here:
                report.mismatches.append(
                    Mismatch(
                        direction="symbolic->concrete",
                        start=(start[1], start[2]),
                        packet=packet,
                        expected=f"delivered at {hostname}[{iface_name}]",
                        actual=", ".join(t.describe() for t in traces),
                    )
                )
    return report


def validate_concrete_against_symbolic(
    analyzer: NetworkAnalyzer, max_entries_per_node: Optional[int] = None
) -> DifferentialReport:
    """Direction 2: the BDD engine verifies the traceroute engine.

    Walk each FIB; for each entry choose a packet destined inside the
    entry's prefix, trace it, then check the symbolic forward analysis
    from the same start reports the same disposition for that packet.
    """
    report = DifferentialReport()
    tracer = TracerouteEngine(analyzer.dataplane, analyzer.fibs)
    encoder = analyzer.encoder
    engine = encoder.engine
    for hostname in analyzer.dataplane.snapshot.hostnames():
        fib = analyzer.fibs[hostname]
        start_interfaces = [
            node[2] for node in analyzer.graph.source_nodes()
            if node[1] == hostname
        ]
        if not start_interfaces:
            continue
        start_interface = start_interfaces[0]
        entries = fib.entries()
        if max_entries_per_node is not None:
            entries = entries[:max_entries_per_node]
        for prefix, _fib_entries in entries:
            # A deterministic probe inside the prefix (prefer a host
            # address over the network address).
            probe_ip = prefix.first_ip if prefix.length >= 31 else Ip(
                prefix.first_ip.value + 1
            )
            packet = Packet(
                dst_ip=probe_ip,
                src_ip=Ip("192.0.2.77"),
                dst_port=80,
                src_port=55555,
                ip_protocol=f.PROTO_TCP,
            )
            report.checks += 1
            traces = tracer.trace(packet, hostname, start_interface)
            concrete = {trace.disposition for trace in traces}
            answer = analyzer.reachability(
                {src_node(hostname, start_interface): encoder.packet_bdd(packet)}
            )
            symbolic = {
                disposition
                for disposition, packet_set in answer.by_disposition.items()
                if packet_set != FALSE
            }
            if not concrete <= symbolic:
                report.mismatches.append(
                    Mismatch(
                        direction="concrete->symbolic",
                        start=(hostname, start_interface),
                        packet=packet,
                        expected=f"symbolic includes {sorted(d.value for d in concrete)}",
                        actual=f"symbolic has {sorted(d.value for d in symbolic)}",
                    )
                )
    return report


def run_differential_suite(analyzer: NetworkAnalyzer) -> DifferentialReport:
    """Both directions, merged (the routine §4.3.2 cross-validation)."""
    report = validate_symbolic_against_concrete(analyzer)
    report.merge(validate_concrete_against_symbolic(analyzer))
    return report


def run_differential_for_configs(configs: Dict[str, str]) -> DifferentialReport:
    """Full pipeline + differential suite for one network's configs.

    The self-contained per-network unit of work: it parses, simulates,
    and cross-validates in one process, so a fleet of networks can fan
    out over :func:`repro.parallel.pmap` with only config texts going
    in and a report coming out.
    """
    from repro.config.loader import load_snapshot_from_texts
    from repro.dataplane.fib import compute_fibs
    from repro.routing.engine import ConvergenceSettings, compute_dataplane

    snapshot = load_snapshot_from_texts(configs)
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    return run_differential_suite(analyzer)


def run_differential_suites(
    config_sets: Sequence[Dict[str, str]], jobs: Optional[int] = None
) -> List[DifferentialReport]:
    """Cross-validate many networks in parallel (§4.3.2 runs daily over
    a whole lab repository — one process per network, results in input
    order)."""
    return pmap(run_differential_for_configs, list(config_sets), jobs=jobs, min_items=2)
