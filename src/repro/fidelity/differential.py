"""Differential engine testing (§4.3.2).

Batfish has two independent forwarding engines — the symbolic BDD
engine and the concrete traceroute engine. "Validating that such
engines produce identical results is instrumental in uncovering
modeling bugs." Two validation directions:

1. *Reachability verifies traceroute*: for each final location, run the
   (backward) reachability query, collect (start location, headerspace)
   tuples, pick a representative packet from each headerspace, run the
   traceroute engine, and check that the final location and disposition
   match.
2. *Traceroute verifies reachability*: walk each node's FIB; for each
   entry choose a packet matching the entry's prefix; trace it to its
   terminal location and disposition; then check the symbolic analysis
   agrees (the computed start set contains the original start).

A third direction compares the imperative control-plane engine against
the original Datalog model (:func:`validate_imperative_against_datalog`)
and, on any forwarding mismatch, attaches both engines' provenance
derivation trees plus the first-divergence diff — the located witness a
human needs to debug a modeling disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE
from repro.hdr import fields as f
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.parallel import pmap
from repro.provenance import (
    DerivationTree,
    Divergence,
    build_route_tree,
    datalog_route_tree,
    first_divergence,
    render_divergence_report,
)
from repro.provenance import record as prov
from repro.reachability.examples import default_preferences
from repro.reachability.graph import Disposition, src_node
from repro.reachability.queries import NetworkAnalyzer
from repro.traceroute.engine import TracerouteEngine


@dataclass
class Mismatch:
    """One disagreement between the two engines."""

    direction: str  # "symbolic->concrete" | "concrete->symbolic"
    start: Tuple[str, str]
    packet: Packet
    expected: str
    actual: str

    def describe(self) -> str:
        return (
            f"[{self.direction}] {self.packet.describe()} from "
            f"{self.start[0]}[{self.start[1]}]: expected {self.expected}, "
            f"got {self.actual}"
        )


@dataclass
class DifferentialReport:
    checks: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def merge(self, other: "DifferentialReport") -> None:
        self.checks += other.checks
        self.mismatches.extend(other.mismatches)


def validate_symbolic_against_concrete(
    analyzer: NetworkAnalyzer, max_locations: Optional[int] = None
) -> DifferentialReport:
    """Direction 1: the traceroute engine verifies the BDD engine.

    For every delivery location, pick representative packets from the
    symbolic answer and confirm the concrete engine delivers them there.
    """
    report = DifferentialReport()
    tracer = TracerouteEngine(analyzer.dataplane, analyzer.fibs)
    encoder = analyzer.encoder
    locations: List[Tuple[str, Optional[str]]] = []
    for node in analyzer.graph.sink_nodes():
        if node[0] == "sink":
            locations.append((node[1], node[2]))
    if max_locations is not None:
        locations = locations[:max_locations]
    preferences = default_preferences(encoder)
    for hostname, iface_name in locations:
        start_sets = analyzer.destination_reachability(hostname, iface_name)
        for start, packet_set in sorted(
            start_sets.items(), key=lambda kv: tuple(map(str, kv[0]))
        ):
            packet = encoder.example_packet(packet_set, preferences)
            if packet is None:
                continue
            report.checks += 1
            traces = tracer.trace(packet, start[1], start[2])
            delivered_here = any(
                trace.disposition
                in (Disposition.DELIVERED, Disposition.ACCEPTED)
                and trace.hops[-1].node == hostname
                for trace in traces
            )
            if not delivered_here:
                report.mismatches.append(
                    Mismatch(
                        direction="symbolic->concrete",
                        start=(start[1], start[2]),
                        packet=packet,
                        expected=f"delivered at {hostname}[{iface_name}]",
                        actual=", ".join(t.describe() for t in traces),
                    )
                )
    return report


def validate_concrete_against_symbolic(
    analyzer: NetworkAnalyzer, max_entries_per_node: Optional[int] = None
) -> DifferentialReport:
    """Direction 2: the BDD engine verifies the traceroute engine.

    Walk each FIB; for each entry choose a packet destined inside the
    entry's prefix, trace it, then check the symbolic forward analysis
    from the same start reports the same disposition for that packet.
    """
    report = DifferentialReport()
    tracer = TracerouteEngine(analyzer.dataplane, analyzer.fibs)
    encoder = analyzer.encoder
    engine = encoder.engine
    for hostname in analyzer.dataplane.snapshot.hostnames():
        fib = analyzer.fibs[hostname]
        start_interfaces = [
            node[2] for node in analyzer.graph.source_nodes()
            if node[1] == hostname
        ]
        if not start_interfaces:
            continue
        start_interface = start_interfaces[0]
        entries = fib.entries()
        if max_entries_per_node is not None:
            entries = entries[:max_entries_per_node]
        for prefix, _fib_entries in entries:
            # A deterministic probe inside the prefix (prefer a host
            # address over the network address).
            probe_ip = prefix.first_ip if prefix.length >= 31 else Ip(
                prefix.first_ip.value + 1
            )
            packet = Packet(
                dst_ip=probe_ip,
                src_ip=Ip("192.0.2.77"),
                dst_port=80,
                src_port=55555,
                ip_protocol=f.PROTO_TCP,
            )
            report.checks += 1
            traces = tracer.trace(packet, hostname, start_interface)
            concrete = {trace.disposition for trace in traces}
            answer = analyzer.reachability(
                {src_node(hostname, start_interface): encoder.packet_bdd(packet)}
            )
            symbolic = {
                disposition
                for disposition, packet_set in answer.by_disposition.items()
                if packet_set != FALSE
            }
            if not concrete <= symbolic:
                report.mismatches.append(
                    Mismatch(
                        direction="concrete->symbolic",
                        start=(hostname, start_interface),
                        packet=packet,
                        expected=f"symbolic includes {sorted(d.value for d in concrete)}",
                        actual=f"symbolic has {sorted(d.value for d in symbolic)}",
                    )
                )
    return report


@dataclass
class DataplaneMismatch:
    """One (node, prefix) where the imperative engine and the Datalog
    model derived different forwarding, with both provenance trees and
    the first point where their derivations diverge."""

    node: str
    prefix: str
    imperative_next_hops: Tuple[str, ...]
    datalog_next_hops: Tuple[str, ...]
    imperative_tree: DerivationTree
    datalog_tree: DerivationTree
    divergence: Optional[Divergence]

    def describe(self) -> str:
        header = (
            f"{self.node} {self.prefix}: imperative forwards via "
            f"{list(self.imperative_next_hops) or 'nothing'}, datalog via "
            f"{list(self.datalog_next_hops) or 'nothing'}"
        )
        return header + "\n" + render_divergence_report(
            self.imperative_tree, self.datalog_tree, self.divergence
        )


@dataclass
class ImperativeDatalogReport:
    """Outcome of the imperative-vs-Datalog dataplane comparison."""

    checks: int = 0
    mismatches: List[DataplaneMismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.passed:
            return f"imperative and datalog dataplanes agree ({self.checks} tuples)"
        parts = [
            f"{len(self.mismatches)} dataplane mismatch(es) over "
            f"{self.checks} tuples"
        ]
        parts.extend(m.describe() for m in self.mismatches)
        return "\n\n".join(parts)


def validate_imperative_against_datalog(
    snapshot, settings=None, semantics=None
) -> ImperativeDatalogReport:
    """Direction 3: the original Datalog model verifies the imperative
    control-plane engine (both simulate the same snapshot; their
    ``(node, prefix, next-hop-node)`` relations must agree on the
    protocols Datalog models: connected/static/OSPF).

    The imperative run happens under provenance recording; every
    mismatched (node, prefix) is reported with the imperative derivation
    tree, the Datalog derivation tree, and the first divergence between
    them.
    """
    from repro.original.cp_model import compute_dataplane_datalog
    from repro.routing.engine import ConvergenceSettings, compute_dataplane
    from repro.routing.policy import DEFAULT_SEMANTICS
    from repro.dataplane.fib import FibActionType, compute_fibs

    datalog = compute_dataplane_datalog(snapshot)
    with prov.recording() as recorder:
        imperative = compute_dataplane(
            snapshot, settings or ConvergenceSettings(),
            semantics or DEFAULT_SEMANTICS,
        )
        fibs = compute_fibs(imperative)

    ip_owner: Dict[Ip, str] = {}
    for hostname in snapshot.hostnames():
        for _name, address, _length in snapshot.device(hostname).interface_ips():
            ip_owner.setdefault(address, hostname)
    imperative_forwards = set()
    for hostname, fib in fibs.items():
        for prefix, entries in fib.entries():
            for entry in entries:
                if entry.action is not FibActionType.FORWARD:
                    continue
                if entry.arp_ip is None:
                    continue  # connected: the datalog model omits these
                neighbor = ip_owner.get(entry.arp_ip)
                if neighbor:
                    imperative_forwards.add((hostname, prefix, neighbor))

    report = ImperativeDatalogReport(
        checks=len(imperative_forwards | datalog.forwards)
    )
    disagreeing = sorted(
        {
            (node, str(prefix))
            for node, prefix, _neighbor in
            imperative_forwards ^ datalog.forwards
        }
    )
    for node, prefix_str in disagreeing:
        left = build_route_tree(recorder, imperative, fibs, node, prefix_str)
        right = datalog_route_tree(datalog, node, prefix_str)
        report.mismatches.append(
            DataplaneMismatch(
                node=node,
                prefix=prefix_str,
                imperative_next_hops=tuple(sorted(
                    neighbor
                    for n, p, neighbor in imperative_forwards
                    if n == node and str(p) == prefix_str
                )),
                datalog_next_hops=tuple(sorted(
                    neighbor
                    for n, p, neighbor in datalog.forwards
                    if n == node and str(p) == prefix_str
                )),
                imperative_tree=left,
                datalog_tree=right,
                divergence=first_divergence(left, right),
            )
        )
    return report


def run_differential_suite(analyzer: NetworkAnalyzer) -> DifferentialReport:
    """Both directions, merged (the routine §4.3.2 cross-validation)."""
    report = validate_symbolic_against_concrete(analyzer)
    report.merge(validate_concrete_against_symbolic(analyzer))
    return report


def run_differential_for_configs(configs: Dict[str, str]) -> DifferentialReport:
    """Full pipeline + differential suite for one network's configs.

    The self-contained per-network unit of work: it parses, simulates,
    and cross-validates in one process, so a fleet of networks can fan
    out over :func:`repro.parallel.pmap` with only config texts going
    in and a report coming out.
    """
    from repro.config.loader import load_snapshot_from_texts
    from repro.dataplane.fib import compute_fibs
    from repro.routing.engine import ConvergenceSettings, compute_dataplane

    snapshot = load_snapshot_from_texts(configs)
    dataplane = compute_dataplane(snapshot, ConvergenceSettings())
    fibs = compute_fibs(dataplane)
    analyzer = NetworkAnalyzer(dataplane, fibs=fibs)
    return run_differential_suite(analyzer)


def run_differential_suites(
    config_sets: Sequence[Dict[str, str]], jobs: Optional[int] = None
) -> List[DifferentialReport]:
    """Cross-validate many networks in parallel (§4.3.2 runs daily over
    a whole lab repository — one process per network, results in input
    order)."""
    return pmap(run_differential_for_configs, list(config_sets), jobs=jobs, min_items=2)
