"""Validation against ground truth (§4.3.1).

The paper's workflow: (1) create small lab networks exercising features
of interest, using recommended configuration *and possible deviations*;
(2) collect configurations and runtime state (show commands, traceroute
output) from real devices under emulation; (3) validate that the model,
given the same configurations, matches the collected state. Labs and
live-network data go into a repository and step 3 runs daily.

Substitution (documented in DESIGN.md): we have no GNS3/router images,
so the "collected runtime state" of each lab is a golden snapshot
checked into the repository — structurally identical to what `show ip
route` / traceroute collection would produce. Deviations are expressed
both in the configs (e.g. a route map that is referenced but undefined)
and as :class:`~repro.routing.policy.PolicySemantics` knobs, letting the
framework detect when a model-semantics choice diverges from the
recorded device behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.loader import load_snapshot_from_texts
from repro.dataplane.fib import compute_fibs
from repro.hdr.packet import Packet
from repro.reachability.graph import Disposition
from repro.routing.engine import ConvergenceSettings, compute_dataplane
from repro.routing.policy import DEFAULT_SEMANTICS, PolicySemantics
from repro.traceroute.engine import TracerouteEngine


@dataclass
class ExpectedTrace:
    """One collected traceroute observation."""

    packet: Packet
    start_node: str
    start_interface: str
    disposition: Disposition
    path: Optional[List[str]] = None  # expected node sequence, if recorded


@dataclass
class RuntimeState:
    """The "collected" ground truth of a lab network."""

    #: node -> sorted route descriptions (like parsed `show ip route`).
    routes: Dict[str, List[str]] = field(default_factory=dict)
    traces: List[ExpectedTrace] = field(default_factory=list)


@dataclass
class Lab:
    """A small network exercising a feature plus its ground truth."""

    name: str
    description: str
    configs: Dict[str, str]
    expected: RuntimeState
    semantics: PolicySemantics = field(default_factory=lambda: DEFAULT_SEMANTICS)


@dataclass
class LabFailure:
    lab: str
    kind: str  # "routes" | "trace"
    detail: str


@dataclass
class LabReport:
    labs_run: int = 0
    checks: int = 0
    failures: List[LabFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def collect_runtime_state(configs: Dict[str, str],
                          semantics: PolicySemantics = DEFAULT_SEMANTICS,
                          traces: Optional[List[ExpectedTrace]] = None) -> RuntimeState:
    """Produce the model's view of runtime state for a lab.

    Used both to *record* golden state when a lab is created (after
    manual review, standing in for emulator collection) and to compare
    against recorded state on every run.
    """
    snapshot = load_snapshot_from_texts(configs)
    dataplane = compute_dataplane(snapshot, ConvergenceSettings(), semantics)
    fibs = compute_fibs(dataplane)
    state = RuntimeState()
    for hostname in snapshot.hostnames():
        state.routes[hostname] = sorted(
            route.describe() for route in dataplane.main_rib(hostname).routes()
        )
    if traces:
        tracer = TracerouteEngine(dataplane, fibs)
        for expected in traces:
            results = tracer.trace(
                expected.packet, expected.start_node, expected.start_interface
            )
            observed = results[0] if results else None
            state.traces.append(
                ExpectedTrace(
                    packet=expected.packet,
                    start_node=expected.start_node,
                    start_interface=expected.start_interface,
                    disposition=(
                        observed.disposition if observed else Disposition.NO_ROUTE
                    ),
                    path=observed.path_nodes() if observed else [],
                )
            )
    return state


class LabRepository:
    """The repository of labs, run routinely (daily in production)."""

    def __init__(self):
        self._labs: Dict[str, Lab] = {}

    def register(self, lab: Lab) -> None:
        if lab.name in self._labs:
            raise ValueError(f"duplicate lab name: {lab.name}")
        self._labs[lab.name] = lab

    def labs(self) -> List[Lab]:
        return [self._labs[name] for name in sorted(self._labs)]

    def run(self, lab_name: Optional[str] = None) -> LabReport:
        """Validate the model against every lab's recorded state."""
        report = LabReport()
        labs = [self._labs[lab_name]] if lab_name else self.labs()
        for lab in labs:
            report.labs_run += 1
            self._run_one(lab, report)
        return report

    def _run_one(self, lab: Lab, report: LabReport) -> None:
        probe_traces = [
            ExpectedTrace(
                packet=t.packet,
                start_node=t.start_node,
                start_interface=t.start_interface,
                disposition=t.disposition,
            )
            for t in lab.expected.traces
        ]
        actual = collect_runtime_state(lab.configs, lab.semantics, probe_traces)
        for hostname, expected_routes in sorted(lab.expected.routes.items()):
            report.checks += 1
            actual_routes = actual.routes.get(hostname, [])
            if actual_routes != sorted(expected_routes):
                missing = set(expected_routes) - set(actual_routes)
                extra = set(actual_routes) - set(expected_routes)
                report.failures.append(
                    LabFailure(
                        lab=lab.name,
                        kind="routes",
                        detail=(
                            f"{hostname}: missing {sorted(missing)}, "
                            f"unexpected {sorted(extra)}"
                        ),
                    )
                )
        for expected, observed in zip(lab.expected.traces, actual.traces):
            report.checks += 1
            if observed.disposition is not expected.disposition:
                report.failures.append(
                    LabFailure(
                        lab=lab.name,
                        kind="trace",
                        detail=(
                            f"{expected.packet.describe()} from "
                            f"{expected.start_node}: expected "
                            f"{expected.disposition.value}, observed "
                            f"{observed.disposition.value}"
                        ),
                    )
                )
            elif expected.path is not None and observed.path != expected.path:
                report.failures.append(
                    LabFailure(
                        lab=lab.name,
                        kind="trace",
                        detail=(
                            f"{expected.packet.describe()}: expected path "
                            f"{expected.path}, observed {observed.path}"
                        ),
                    )
                )
