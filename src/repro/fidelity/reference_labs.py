"""The reference lab repository (§4.3.1).

Each lab is a small network exercising a feature of interest, paired
with its recorded runtime state — the stand-in for "collect device
configurations and runtime state from the network, such as show
commands ... as well as ping and traceroute data" under GNS3 emulation
(see DESIGN.md for the substitution). The recorded routes below were
reviewed by hand when the labs were authored; the repository re-runs
all labs on every invocation ("step 3 is run daily on all networks,
reducing the risk of regressions as Batfish code evolves").

The *deviation* labs encode exactly the Lesson 3 long tail: "What
should happen to incoming routing announcements when a BGP neighbor is
configured to use a route map that is not defined anywhere?" — one lab
records the permit-all device behaviour our model defaults to; its twin
flips the :class:`~repro.routing.policy.PolicySemantics` knob and
records the divergent outcome, so a semantics regression in either
direction trips the repository.
"""

from __future__ import annotations

from repro.fidelity.labs import ExpectedTrace, Lab, LabRepository, RuntimeState
from repro.hdr.ip import Ip
from repro.hdr.packet import Packet
from repro.reachability.graph import Disposition
from repro.routing.policy import PolicySemantics

OSPF_LAB_CONFIGS = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
interface lan
 ip address 172.16.1.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
router ospf 1
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.2 255.255.255.252
 ip ospf area 0
 ip ospf cost 10
interface lan
 ip address 172.16.2.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
router ospf 1
""",
}

UNDEFINED_ROUTE_MAP_CONFIGS = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.252
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.0.0.2 remote-as 65002
 network 172.20.0.0 mask 255.255.0.0
ip route 172.20.0.0 255.255.0.0 Null0
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.2 255.255.255.252
router bgp 65002
 bgp router-id 2.2.2.2
 neighbor 10.0.0.1 remote-as 65001
 neighbor 10.0.0.1 route-map MISSING in
""",
}

STATIC_RECURSIVE_CONFIGS = {
    "r1": """
hostname r1
interface e0
 ip address 10.0.0.1 255.255.255.252
ip route 192.168.0.0 255.255.0.0 10.0.0.2
ip route 172.30.0.0 255.255.0.0 192.168.1.1
""",
    "r2": """
hostname r2
interface e0
 ip address 10.0.0.2 255.255.255.252
interface lan
 ip address 192.168.1.1 255.255.255.0
""",
}


def build_reference_repository() -> LabRepository:
    """The labs shipped with the repository (run by the test suite,
    standing in for the daily validation job)."""
    repository = LabRepository()

    repository.register(
        Lab(
            name="ospf-basic",
            description="two OSPF routers exchange passive LAN prefixes",
            configs=OSPF_LAB_CONFIGS,
            expected=RuntimeState(
                routes={
                    "r1": [
                        "connected 10.0.0.0/30 via e0",
                        "connected 172.16.1.0/24 via lan",
                        "ospf 172.16.2.0/24 cost 11 via e0",
                    ],
                    "r2": [
                        "connected 10.0.0.0/30 via e0",
                        "connected 172.16.2.0/24 via lan",
                        "ospf 172.16.1.0/24 cost 11 via e0",
                    ],
                },
                traces=[
                    ExpectedTrace(
                        packet=Packet(
                            src_ip=Ip("172.16.1.10"),
                            dst_ip=Ip("172.16.2.10"),
                            dst_port=80,
                        ),
                        start_node="r1",
                        start_interface="lan",
                        disposition=Disposition.DELIVERED,
                        path=["r1", "r2"],
                    )
                ],
            ),
        )
    )

    repository.register(
        Lab(
            name="undefined-route-map-permits",
            description=(
                "device behaviour: an undefined import route map permits "
                "announcements unchanged (Lesson 3 long tail)"
            ),
            configs=UNDEFINED_ROUTE_MAP_CONFIGS,
            expected=RuntimeState(
                routes={
                    "r2": [
                        "bgp 172.20.0.0/16 via 10.0.0.1 lp 100 path [65001]",
                        "connected 10.0.0.0/30 via e0",
                    ],
                },
            ),
        )
    )

    repository.register(
        Lab(
            name="undefined-route-map-denies-deviation",
            description=(
                "the same network under the alternative semantics: the "
                "deviation lab that guards the model-behaviour knob"
            ),
            configs=UNDEFINED_ROUTE_MAP_CONFIGS,
            expected=RuntimeState(
                routes={
                    "r2": ["connected 10.0.0.0/30 via e0"],
                },
            ),
            semantics=PolicySemantics(undefined_route_map_permits=False),
        )
    )

    repository.register(
        Lab(
            name="static-recursive",
            description=(
                "a static route resolving through another static; the "
                "packet is forwarded to r2, which has no route back out "
                "- a classic asymmetric-static gotcha"
            ),
            configs=STATIC_RECURSIVE_CONFIGS,
            expected=RuntimeState(
                routes={
                    "r1": [
                        "connected 10.0.0.0/30 via e0",
                        "static 172.30.0.0/16 -> 192.168.1.1 [1]",
                        "static 192.168.0.0/16 -> 10.0.0.2 [1]",
                    ],
                },
                traces=[
                    ExpectedTrace(
                        packet=Packet(
                            src_ip=Ip("10.0.0.1"), dst_ip=Ip("172.30.5.5"),
                        ),
                        start_node="r1",
                        start_interface="e0",
                        disposition=Disposition.NO_ROUTE,
                        path=["r1", "r2"],
                    )
                ],
            ),
        )
    )
    return repository
