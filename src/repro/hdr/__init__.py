"""Packet headers: IPv4 primitives, concrete packets, and the BDD
packet-set encoding (§4.2.2 of the paper)."""

from repro.hdr.fields import DEFAULT_LAYOUT, HeaderLayout
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.ip import Ip, Prefix, ip_range_to_prefixes
from repro.hdr.packet import Packet, packet_from_field_values

__all__ = [
    "DEFAULT_LAYOUT",
    "HeaderLayout",
    "HeaderSpace",
    "PacketEncoder",
    "Ip",
    "Prefix",
    "ip_range_to_prefixes",
    "Packet",
    "packet_from_field_values",
]
