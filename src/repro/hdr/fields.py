"""Packet-header field layout over BDD variables.

This module fixes the BDD variable order, which "dramatically affects the
size of the resulting BDD" (§4.2.2). We follow the paper's heuristic:

* fields that are filtered or transformed most often come first —
  Destination IP, Source IP, Destination Port, Source Port, ICMP Code,
  ICMP Type, IP Protocol, then less used fields (TCP Flags, Packet
  Length, DSCP, ECN);
* within a field, the most significant bit comes first;
* fields that packet transformations (NAT) can rewrite get a *paired*
  output variable per bit, interleaved with the input variable ("we
  interleave the variables for input-output packet pairs since a variable
  in the output packet tends to closely depend on the corresponding
  variable of the input packet");
* a small network-dependent extension region follows the header: zone
  bits for zone-based firewalls (reused across devices, so logarithmic in
  the max zone count — "in practice we have never needed more than four
  bits") and waypoint bits for waypoint queries.

The number of variables is independent of network size: only the
extension region varies, by a handful of bits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

# Field names. Order in _FIELD_SPECS is the BDD variable order.
DST_IP = "dst_ip"
SRC_IP = "src_ip"
DST_PORT = "dst_port"
SRC_PORT = "src_port"
ICMP_CODE = "icmp_code"
ICMP_TYPE = "icmp_type"
IP_PROTOCOL = "ip_protocol"
TCP_FLAGS = "tcp_flags"
PACKET_LENGTH = "packet_length"
DSCP = "dscp"
ECN = "ecn"

# Extension fields (allocated after the header fields).
ZONE_IN = "zone_in"
ZONE_OUT = "zone_out"
WAYPOINT = "waypoint"

# (name, width_in_bits, paired_with_output_vars)
_FIELD_SPECS: List[Tuple[str, int, bool]] = [
    (DST_IP, 32, True),
    (SRC_IP, 32, True),
    (DST_PORT, 16, True),
    (SRC_PORT, 16, True),
    (ICMP_CODE, 8, False),
    (ICMP_TYPE, 8, False),
    (IP_PROTOCOL, 8, False),
    (TCP_FLAGS, 8, False),
    (PACKET_LENGTH, 16, False),
    (DSCP, 6, False),
    (ECN, 2, False),
]

HEADER_FIELDS: Tuple[str, ...] = tuple(name for name, _, _ in _FIELD_SPECS)
PAIRED_FIELDS: Tuple[str, ...] = tuple(
    name for name, _, paired in _FIELD_SPECS if paired
)

# Well-known IP protocol numbers.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_OSPF = 89

# TCP flag bit positions within the TCP_FLAGS field (MSB first).
TCP_CWR, TCP_ECE, TCP_URG, TCP_ACK, TCP_PSH, TCP_RST, TCP_SYN, TCP_FIN = range(8)


class HeaderLayout:
    """Assignment of BDD variable levels to packet-header field bits.

    ``var(field, bit)`` gives the level of the *input* variable for a bit
    (bit 0 = most significant). Paired fields additionally have
    ``out_var(field, bit)`` at the immediately following level.
    """

    def __init__(
        self,
        num_zone_bits: int = 4,
        num_waypoint_bits: int = 8,
        field_order: "Tuple[str, ...] | None" = None,
    ):
        """``field_order`` overrides the paper's heuristic ordering of
        the header fields (used by the variable-order ablation); it must
        be a permutation of :data:`HEADER_FIELDS`."""
        if num_zone_bits < 0 or num_waypoint_bits < 0:
            raise ValueError("bit counts must be non-negative")
        self.num_zone_bits = num_zone_bits
        self.num_waypoint_bits = num_waypoint_bits
        self._in_base: Dict[str, int] = {}
        self._width: Dict[str, int] = {}
        self._paired: Dict[str, bool] = {}
        specs = _FIELD_SPECS
        if field_order is not None:
            if sorted(field_order) != sorted(HEADER_FIELDS):
                raise ValueError("field_order must permute HEADER_FIELDS")
            by_name = {name: (name, w, p) for name, w, p in _FIELD_SPECS}
            specs = [by_name[name] for name in field_order]
        self.field_order = tuple(name for name, _w, _p in specs)
        level = 0
        for name, width, paired in specs:
            self._in_base[name] = level
            self._width[name] = width
            self._paired[name] = paired
            level += width * (2 if paired else 1)
        self.header_vars = level
        for name, width in ((ZONE_IN, num_zone_bits), (ZONE_OUT, num_zone_bits)):
            self._in_base[name] = level
            self._width[name] = width
            self._paired[name] = False
            level += width
        self._in_base[WAYPOINT] = level
        self._width[WAYPOINT] = num_waypoint_bits
        self._paired[WAYPOINT] = False
        level += num_waypoint_bits
        self.num_vars = level

    def fields(self) -> Tuple[str, ...]:
        """All fields in variable order (header then extension fields)."""
        return tuple(self._in_base)

    def width(self, field: str) -> int:
        """Bit width of ``field``."""
        return self._width[field]

    def is_paired(self, field: str) -> bool:
        """True if the field has interleaved output variables."""
        return self._paired[field]

    def var(self, field: str, bit: int) -> int:
        """Input-variable level for ``bit`` of ``field`` (0 = MSB)."""
        self._check_bit(field, bit)
        base = self._in_base[field]
        return base + (2 * bit if self._paired[field] else bit)

    def out_var(self, field: str, bit: int) -> int:
        """Output-variable level for ``bit`` of a paired field."""
        if not self._paired[field]:
            raise ValueError(f"field {field!r} has no output variables")
        self._check_bit(field, bit)
        return self._in_base[field] + 2 * bit + 1

    def vars_of(self, field: str) -> Tuple[int, ...]:
        """All input-variable levels of ``field``, MSB first."""
        return tuple(self.var(field, b) for b in range(self._width[field]))

    def out_vars_of(self, field: str) -> Tuple[int, ...]:
        """All output-variable levels of a paired field, MSB first."""
        return tuple(self.out_var(field, b) for b in range(self._width[field]))

    def rename_out_to_in(self, fields: Iterable[str]) -> Dict[int, int]:
        """Rename map taking output variables back to input variables."""
        mapping: Dict[int, int] = {}
        for field in fields:
            for bit in range(self._width[field]):
                mapping[self.out_var(field, bit)] = self.var(field, bit)
        return mapping

    def _check_bit(self, field: str, bit: int) -> None:
        if field not in self._width:
            raise ValueError(f"unknown field: {field!r}")
        if not 0 <= bit < self._width[field]:
            raise ValueError(f"bit {bit} out of range for {field}")


#: The default layout shared by analyses that do not need a custom one.
DEFAULT_LAYOUT = HeaderLayout()
