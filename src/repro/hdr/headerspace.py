"""Encoding sets of packets as BDDs (§4.2.2).

:class:`PacketEncoder` is the bridge between the networking domain (IPs,
prefixes, port ranges, protocols) and the BDD engine. It owns a
:class:`~repro.bdd.engine.BddEngine` sized for a
:class:`~repro.hdr.fields.HeaderLayout`, and provides constraint builders
for input variables, constraint builders for transformation output
variables, and conversions between concrete packets and BDD models.

:class:`HeaderSpace` is the user-facing declarative description of a set
of packets (the parameterization surface of queries, §4.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.hdr import fields as f
from repro.hdr.fields import DEFAULT_LAYOUT, HeaderLayout
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet

PortRange = Tuple[int, int]


class PacketEncoder:
    """Builds BDDs over packet-header variables."""

    def __init__(
        self,
        layout: Optional[HeaderLayout] = None,
        engine: Optional[BddEngine] = None,
    ):
        self.layout = layout or HeaderLayout()
        self.engine = engine or BddEngine(self.layout.num_vars)
        if self.engine.num_vars < self.layout.num_vars:
            raise ValueError("engine universe smaller than layout")
        self._field_cube_cache: Dict[Tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    # Constraints on input variables

    def field_eq(self, field: str, value: int, _out: bool = False) -> int:
        """BDD for ``field == value``."""
        width = self.layout.width(field)
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value} out of range for {field}")
        var_of = self.layout.out_var if _out else self.layout.var
        assignment = {
            var_of(field, bit): (value >> (width - 1 - bit)) & 1
            for bit in range(width)
        }
        return self.engine.from_assignment(assignment)

    def field_in_range(
        self, field: str, low: int, high: int, _out: bool = False
    ) -> int:
        """BDD for ``low <= field <= high`` (inclusive)."""
        width = self.layout.width(field)
        if low > high:
            return FALSE
        if not (0 <= low and high < (1 << width)):
            raise ValueError(f"range [{low}, {high}] out of range for {field}")
        if low == 0 and high == (1 << width) - 1:
            return TRUE
        var_of = self.layout.out_var if _out else self.layout.var
        engine = self.engine
        # Build value >= low and value <= high from LSB to MSB.
        geq = TRUE
        leq = TRUE
        for bit in reversed(range(width)):
            level = var_of(field, bit)
            v, nv = engine.var(level), engine.nvar(level)
            if (low >> (width - 1 - bit)) & 1:
                geq = engine.and_(v, geq)
            else:
                geq = engine.or_(v, geq)
            if (high >> (width - 1 - bit)) & 1:
                leq = engine.or_(nv, leq)
            else:
                leq = engine.and_(nv, leq)
        return engine.and_(geq, leq)

    def ip_eq(self, field: str, ip: "Ip | str") -> int:
        """BDD for an IP-valued field equal to a specific address."""
        return self.field_eq(field, Ip(ip).value)

    def ip_in_prefix(self, field: str, prefix: "Prefix | str", _out: bool = False) -> int:
        """BDD for an IP-valued field inside a prefix (tests only the
        first ``prefix.length`` bits — the canonical compact encoding)."""
        prefix = prefix if isinstance(prefix, Prefix) else Prefix(prefix)
        var_of = self.layout.out_var if _out else self.layout.var
        network = prefix.network
        assignment = {
            var_of(field, bit): network.bit(bit) for bit in range(prefix.length)
        }
        return self.engine.from_assignment(assignment)

    def ip_in_prefixes(self, field: str, prefixes: Iterable["Prefix | str"]) -> int:
        """Union of :meth:`ip_in_prefix` over several prefixes
        (balanced n-ary kernel: prefix lists can be hundreds wide)."""
        return self.engine.or_all(
            self.ip_in_prefix(field, prefix) for prefix in prefixes
        )

    def protocol(self, proto: int) -> int:
        """BDD for ``ip_protocol == proto``."""
        return self.field_eq(f.IP_PROTOCOL, proto)

    def tcp(self) -> int:
        return self.protocol(f.PROTO_TCP)

    def udp(self) -> int:
        return self.protocol(f.PROTO_UDP)

    def icmp(self) -> int:
        return self.protocol(f.PROTO_ICMP)

    def tcp_flag(self, bit: int, value: bool = True) -> int:
        """BDD constraining one TCP flag bit (per repro.hdr.fields order)."""
        level = self.layout.var(f.TCP_FLAGS, bit)
        return self.engine.var(level) if value else self.engine.nvar(level)

    def port_ranges(self, field: str, ranges: Sequence[PortRange]) -> int:
        """Union of inclusive port ranges for a port field."""
        return self.engine.or_all(
            self.field_in_range(field, low, high) for low, high in ranges
        )

    # ------------------------------------------------------------------
    # Constraints on transformation output variables (§4.2.3, NAT)

    def out_eq(self, field: str, value: int) -> int:
        """BDD for *output* ``field == value`` (paired fields only)."""
        return self.field_eq(field, value, _out=True)

    def out_ip_eq(self, field: str, ip: "Ip | str") -> int:
        return self.out_eq(field, Ip(ip).value)

    def out_in_prefix(self, field: str, prefix: "Prefix | str") -> int:
        """BDD for *output* field inside a prefix."""
        return self.ip_in_prefix(field, prefix, _out=True)

    def out_in_range(self, field: str, low: int, high: int) -> int:
        """BDD for *output* field within an inclusive range."""
        return self.field_in_range(field, low, high, _out=True)

    def identity(self, field: str) -> int:
        """BDD for *output field == input field* (unchanged by transform)."""
        engine = self.engine
        per_bit: List[int] = []
        for bit in range(self.layout.width(field)):
            in_level = self.layout.var(field, bit)
            out_level = self.layout.out_var(field, bit)
            both = engine.and_(engine.var(in_level), engine.var(out_level))
            neither = engine.and_(engine.nvar(in_level), engine.nvar(out_level))
            per_bit.append(engine.or_(both, neither))
        return engine.and_all(per_bit)

    def input_cube(self, fields: Iterable[str]) -> int:
        """Interned cube of the *input* variables of ``fields``."""
        key = tuple(sorted(fields))
        cube = self._field_cube_cache.get(key)
        if cube is None:
            levels: List[int] = []
            for field in key:
                levels.extend(self.layout.vars_of(field))
            cube = self.engine.cube(levels)
            self._field_cube_cache[key] = cube
        return cube

    def rename_out_to_in(self, fields: Iterable[str]) -> int:
        """Interned rename map from output to input variables of ``fields``."""
        return self.engine.rename_map(self.layout.rename_out_to_in(fields))

    def erase(self, node: int, fields: Iterable[str]) -> int:
        """Existentially quantify away the input variables of ``fields``
        (e.g. erasing zone bits when a packet exits a firewall)."""
        return self.engine.exists(node, self.input_cube(fields))

    # ------------------------------------------------------------------
    # Concrete <-> symbolic conversion

    def packet_bdd(self, packet: Packet) -> int:
        """The singleton set containing exactly ``packet``."""
        assignment: Dict[int, int] = {}
        for field in f.HEADER_FIELDS:
            value = packet.field_value(field)
            width = self.layout.width(field)
            for bit in range(width):
                assignment[self.layout.var(field, bit)] = (
                    value >> (width - 1 - bit)
                ) & 1
        return self.engine.from_assignment(assignment)

    def packet_from_model(self, assignment: Optional[Dict[int, int]]) -> Optional[Packet]:
        """Materialize a packet from a BDD satisfying assignment.

        Unassigned variables default to 0, matching the convention that a
        BDD model's free variables may take any value.
        """
        if assignment is None:
            return None
        values: Dict[str, int] = {}
        for field in f.HEADER_FIELDS:
            width = self.layout.width(field)
            value = 0
            for bit in range(width):
                value = (value << 1) | assignment.get(self.layout.var(field, bit), 0)
            values[field] = value
        from repro.hdr.packet import packet_from_field_values

        return packet_from_field_values(values)

    def example_packet(
        self, node: int, preferences: Sequence[int] = ()
    ) -> Optional[Packet]:
        """Pick a concrete packet from a set, guided by preferences
        (§4.4.3). Returns ``None`` for the empty set."""
        return self.packet_from_model(self.engine.best_sat(node, preferences))


@dataclass(frozen=True)
class HeaderSpace:
    """A declarative description of a set of packet headers.

    This is the input surface of parameterized queries: each attribute
    narrows the set; unset attributes leave their field unconstrained.
    """

    dst_prefixes: Tuple[Prefix, ...] = ()
    src_prefixes: Tuple[Prefix, ...] = ()
    not_dst_prefixes: Tuple[Prefix, ...] = ()
    not_src_prefixes: Tuple[Prefix, ...] = ()
    dst_ports: Tuple[PortRange, ...] = ()
    src_ports: Tuple[PortRange, ...] = ()
    ip_protocols: Tuple[int, ...] = ()
    tcp_flags_set: Tuple[int, ...] = ()
    tcp_flags_unset: Tuple[int, ...] = ()

    @staticmethod
    def build(
        dst: "Iterable[str | Prefix] | str | Prefix | None" = None,
        src: "Iterable[str | Prefix] | str | Prefix | None" = None,
        not_dst: "Iterable[str | Prefix] | str | Prefix | None" = None,
        not_src: "Iterable[str | Prefix] | str | Prefix | None" = None,
        dst_ports: Optional[Sequence[PortRange]] = None,
        src_ports: Optional[Sequence[PortRange]] = None,
        protocols: Optional[Sequence[int]] = None,
        tcp_flags_set: Optional[Sequence[int]] = None,
        tcp_flags_unset: Optional[Sequence[int]] = None,
    ) -> "HeaderSpace":
        """Convenience constructor accepting strings and scalars."""
        return HeaderSpace(
            dst_prefixes=_prefixes(dst),
            src_prefixes=_prefixes(src),
            not_dst_prefixes=_prefixes(not_dst),
            not_src_prefixes=_prefixes(not_src),
            dst_ports=tuple(dst_ports or ()),
            src_ports=tuple(src_ports or ()),
            ip_protocols=tuple(protocols or ()),
            tcp_flags_set=tuple(tcp_flags_set or ()),
            tcp_flags_unset=tuple(tcp_flags_unset or ()),
        )

    def to_bdd(self, encoder: PacketEncoder) -> int:
        """Encode this header space as a BDD.

        Each attribute contributes one conjunct (negative prefix sets as
        complements — AND is commutative, so carving them out early or
        late yields the same canonical diagram); the conjuncts are
        combined with the balanced n-ary intersection kernel.
        """
        engine = encoder.engine
        conjuncts: List[int] = []
        if self.dst_prefixes:
            conjuncts.append(encoder.ip_in_prefixes(f.DST_IP, self.dst_prefixes))
        if self.src_prefixes:
            conjuncts.append(encoder.ip_in_prefixes(f.SRC_IP, self.src_prefixes))
        if self.not_dst_prefixes:
            conjuncts.append(
                engine.not_(
                    encoder.ip_in_prefixes(f.DST_IP, self.not_dst_prefixes)
                )
            )
        if self.not_src_prefixes:
            conjuncts.append(
                engine.not_(
                    encoder.ip_in_prefixes(f.SRC_IP, self.not_src_prefixes)
                )
            )
        if self.dst_ports:
            conjuncts.append(encoder.port_ranges(f.DST_PORT, self.dst_ports))
        if self.src_ports:
            conjuncts.append(encoder.port_ranges(f.SRC_PORT, self.src_ports))
        if self.ip_protocols:
            conjuncts.append(
                engine.or_all(encoder.protocol(p) for p in self.ip_protocols)
            )
        for bit in self.tcp_flags_set:
            conjuncts.append(encoder.tcp_flag(bit, True))
        for bit in self.tcp_flags_unset:
            conjuncts.append(encoder.tcp_flag(bit, False))
        return engine.and_all(conjuncts)

    def contains(self, packet: Packet) -> bool:
        """Concrete membership check (no BDDs), used by the traceroute
        engine and differential tests."""
        if self.dst_prefixes and not any(
            p.contains_ip(packet.dst_ip) for p in self.dst_prefixes
        ):
            return False
        if self.src_prefixes and not any(
            p.contains_ip(packet.src_ip) for p in self.src_prefixes
        ):
            return False
        if any(p.contains_ip(packet.dst_ip) for p in self.not_dst_prefixes):
            return False
        if any(p.contains_ip(packet.src_ip) for p in self.not_src_prefixes):
            return False
        if self.dst_ports and not any(
            lo <= packet.dst_port <= hi for lo, hi in self.dst_ports
        ):
            return False
        if self.src_ports and not any(
            lo <= packet.src_port <= hi for lo, hi in self.src_ports
        ):
            return False
        if self.ip_protocols and packet.ip_protocol not in self.ip_protocols:
            return False
        if any(not packet.tcp_flag(bit) for bit in self.tcp_flags_set):
            return False
        if any(packet.tcp_flag(bit) for bit in self.tcp_flags_unset):
            return False
        return True


def _prefixes(value) -> Tuple[Prefix, ...]:
    if value is None:
        return ()
    if isinstance(value, (str, Prefix)):
        value = [value]
    return tuple(p if isinstance(p, Prefix) else Prefix(p) for p in value)
