"""IPv4 primitives: addresses, prefixes, and ranges.

These are the foundational value types used throughout the system:
configuration models, routes, FIBs, and the BDD packet encoding all speak
in terms of :class:`Ip` and :class:`Prefix`.

Both types are immutable, interned-friendly (cheap ``__hash__``/``__eq__``
on a single int), and totally ordered so they can key sorted structures
deterministically.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator, Tuple

MAX_IP = 0xFFFFFFFF

_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


@total_ordering
class Ip:
    """An IPv4 address, stored as a 32-bit unsigned integer."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | Ip"):
        if isinstance(value, Ip):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_IP:
                raise ValueError(f"IPv4 value out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_ip(value)
        else:
            raise TypeError(f"cannot build Ip from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 32-bit unsigned integer."""
        return self._value

    def bit(self, index: int) -> int:
        """Return bit ``index`` of the address, MSB first (index 0 = MSB)."""
        if not 0 <= index < 32:
            raise ValueError(f"bit index out of range: {index}")
        return (self._value >> (31 - index)) & 1

    def plus(self, offset: int) -> "Ip":
        """Return the address ``offset`` after this one (wrapping is an error)."""
        return Ip(self._value + offset)

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"Ip('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ip) and self._value == other._value

    def __lt__(self, other: "Ip") -> bool:
        if not isinstance(other, Ip):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)


def _parse_ip(text: str) -> int:
    match = _IP_RE.match(text.strip())
    if not match:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    octets = [int(g) for g in match.groups()]
    if any(o > 255 for o in octets):
        raise ValueError(f"invalid IPv4 address: {text!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def _mask(length: int) -> int:
    return (MAX_IP << (32 - length)) & MAX_IP if length else 0


@total_ordering
class Prefix:
    """An IPv4 prefix (network address + prefix length), e.g. ``10.0.3.0/24``.

    The network address is canonicalized: host bits below the prefix length
    are zeroed on construction.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: "int | str | Ip", length: "int | None" = None):
        if isinstance(network, str) and length is None:
            if "/" not in network:
                raise ValueError(f"prefix needs a /length: {network!r}")
            addr, _, plen = network.partition("/")
            network, length = _parse_ip(addr), int(plen)
        elif isinstance(network, Ip):
            network = network.value
        elif isinstance(network, str):
            network = _parse_ip(network)
        if length is None:
            raise ValueError("prefix length is required")
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        mask = _mask(length)
        self._network = network & mask
        self._length = length

    @property
    def network(self) -> Ip:
        """Canonical network address."""
        return Ip(self._network)

    @property
    def length(self) -> int:
        """Prefix length in bits (0–32)."""
        return self._length

    @property
    def mask(self) -> Ip:
        """The netmask as an address (e.g. 255.255.255.0 for /24)."""
        return Ip(_mask(self._length))

    @property
    def first_ip(self) -> Ip:
        """Lowest address covered by the prefix (the network address)."""
        return Ip(self._network)

    @property
    def last_ip(self) -> Ip:
        """Highest address covered by the prefix (the broadcast address)."""
        return Ip(self._network | (MAX_IP >> self._length if self._length else MAX_IP))

    @property
    def num_ips(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self._length)

    def contains_ip(self, ip: "Ip | int | str") -> bool:
        """True if ``ip`` is covered by this prefix."""
        value = Ip(ip).value
        return (value & _mask(self._length)) == self._network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is fully covered by this prefix (incl. equal)."""
        return (
            other._length >= self._length
            and (other._network & _mask(self._length)) == self._network
        )

    def overlaps(self, other: "Prefix") -> bool:
        """True if this prefix and ``other`` share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two next-longer subnets."""
        if self._length >= 32:
            raise ValueError("cannot subnet a /32")
        child_len = self._length + 1
        low = Prefix(self._network, child_len)
        high = Prefix(self._network | (1 << (32 - child_len)), child_len)
        return low, high

    def host_ips(self, limit: "int | None" = None) -> Iterator[Ip]:
        """Iterate over host addresses (excludes network/broadcast for /30
        and shorter; includes everything for /31 and /32)."""
        if self._length >= 31:
            start, end = self.first_ip.value, self.last_ip.value
        else:
            start, end = self.first_ip.value + 1, self.last_ip.value - 1
        count = 0
        for value in range(start, end + 1):
            if limit is not None and count >= limit:
                return
            count += 1
            yield Ip(value)

    def __str__(self) -> str:
        return f"{self.network}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self._network == other._network
            and self._length == other._length
        )

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        return hash((self._network, self._length))


ZERO_PREFIX = Prefix(0, 0)


def ip_range_to_prefixes(start: Ip, end: Ip) -> Iterator[Prefix]:
    """Cover the inclusive address range ``[start, end]`` with a minimal
    sequence of prefixes, in address order.

    This is the standard greedy range-to-CIDR decomposition used when
    converting range-based configuration (e.g. NAT pools) to prefix-based
    structures.
    """
    lo, hi = start.value, end.value
    if lo > hi:
        raise ValueError(f"empty range: {start} > {end}")
    while lo <= hi:
        # Largest power-of-two block aligned at lo that fits within [lo, hi].
        max_align = lo & -lo if lo else 1 << 32
        span = hi - lo + 1
        size = 1
        while size * 2 <= span and size * 2 <= max_align:
            size *= 2
        length = 32 - size.bit_length() + 1
        yield Prefix(lo, length)
        lo += size
        if lo == 0:  # wrapped past 2**32 - 1
            return
