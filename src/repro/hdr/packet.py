"""Concrete packets, as used by the traceroute engine and example output.

A :class:`Packet` is one point of the header space the symbolic engines
reason about. The same field names are used by :mod:`repro.hdr.fields`
(the BDD encoding) so concrete and symbolic engines can be differentially
tested against each other (§4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.hdr import fields as f
from repro.hdr.ip import Ip


@dataclass(frozen=True)
class Packet:
    """An immutable concrete IPv4 packet header."""

    dst_ip: Ip = field(default_factory=lambda: Ip(0))
    src_ip: Ip = field(default_factory=lambda: Ip(0))
    dst_port: int = 0
    src_port: int = 0
    icmp_code: int = 0
    icmp_type: int = 0
    ip_protocol: int = f.PROTO_TCP
    tcp_flags: int = 0
    packet_length: int = 64
    dscp: int = 0
    ecn: int = 0

    def __post_init__(self):
        _check_width("dst_port", self.dst_port, 16)
        _check_width("src_port", self.src_port, 16)
        _check_width("icmp_code", self.icmp_code, 8)
        _check_width("icmp_type", self.icmp_type, 8)
        _check_width("ip_protocol", self.ip_protocol, 8)
        _check_width("tcp_flags", self.tcp_flags, 8)
        _check_width("packet_length", self.packet_length, 16)
        _check_width("dscp", self.dscp, 6)
        _check_width("ecn", self.ecn, 2)

    def field_value(self, name: str) -> int:
        """Integer value of a header field by its layout name."""
        value = getattr(self, name)
        return value.value if isinstance(value, Ip) else value

    def with_fields(self, **changes) -> "Packet":
        """A copy of this packet with some fields replaced."""
        return replace(self, **changes)

    def tcp_flag(self, bit: int) -> bool:
        """Whether a TCP flag (bit position per repro.hdr.fields) is set."""
        return bool((self.tcp_flags >> (7 - bit)) & 1)

    def reversed(self) -> "Packet":
        """The header of return traffic: endpoints swapped.

        Used by bidirectional reachability and session matching.
        """
        return replace(
            self,
            dst_ip=self.src_ip,
            src_ip=self.dst_ip,
            dst_port=self.src_port,
            src_port=self.dst_port,
        )

    def describe(self) -> str:
        """Short human-readable rendering used in answers and traces."""
        proto = {
            f.PROTO_ICMP: "icmp",
            f.PROTO_TCP: "tcp",
            f.PROTO_UDP: "udp",
            f.PROTO_OSPF: "ospf",
        }.get(self.ip_protocol, str(self.ip_protocol))
        if self.ip_protocol in (f.PROTO_TCP, f.PROTO_UDP):
            return (
                f"{proto} {self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}"
            )
        if self.ip_protocol == f.PROTO_ICMP:
            return (
                f"icmp {self.src_ip} -> {self.dst_ip} "
                f"type {self.icmp_type} code {self.icmp_code}"
            )
        return f"{proto} {self.src_ip} -> {self.dst_ip}"


def _check_width(name: str, value: int, width: int) -> None:
    if not 0 <= value < (1 << width):
        raise ValueError(f"{name} out of range for {width} bits: {value}")


def packet_from_field_values(values: Dict[str, int]) -> Packet:
    """Build a packet from a (possibly partial) field-name -> int mapping.

    Missing fields take :class:`Packet` defaults. Used to materialize
    example packets from BDD satisfying assignments.
    """
    kwargs: Dict[str, object] = {}
    for name, value in values.items():
        if name in (f.DST_IP, f.SRC_IP):
            kwargs[name] = Ip(value)
        elif name in (f.ZONE_IN, f.ZONE_OUT, f.WAYPOINT):
            continue  # analysis-internal fields, not part of the header
        else:
            kwargs[name] = value
    return Packet(**kwargs)
