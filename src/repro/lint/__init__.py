"""Semantic configuration lint engine (Lesson 5).

The most-used Batfish analyses are not the deep dataplane questions but
the simple, local checks whose findings point at a file and line:
undefined references, unreachable ACL lines, half-open BGP sessions.
This package packages those checks as a pluggable rule framework:

* :mod:`repro.lint.model` — Severity / Location / Finding / LintConfig
* :mod:`repro.lint.registry` — ``@rule`` decorator and rule discovery
* :mod:`repro.lint.rules_semantic` — BDD-backed reachability rules
* :mod:`repro.lint.rules_cross` — cross-device compatibility rules
* :mod:`repro.lint.rules_hygiene` — reference/usage/address hygiene
* :mod:`repro.lint.runner` — parallel execution, timing, suppression
* :mod:`repro.lint.sarif` — SARIF 2.1.0 output and baseline diffing
* ``python -m repro.lint`` — the CLI

Suppression works at three levels: in-source ``lint-disable`` comments
(captured by the parsers into ``Device.lint_suppressions``), lintconfig
``suppress`` entries, and rule enable/disable sets.
"""

from repro.lint.model import (
    Finding,
    LintConfig,
    Location,
    Related,
    Severity,
    sort_findings,
)
from repro.lint.registry import Rule, all_rules, get_rule, rule
from repro.lint.runner import LintReport, lint_snapshot
from repro.lint.sarif import compare_to_baseline, result_keys, to_sarif

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Location",
    "Related",
    "Rule",
    "Severity",
    "all_rules",
    "compare_to_baseline",
    "get_rule",
    "lint_snapshot",
    "result_keys",
    "rule",
    "sort_findings",
    "to_sarif",
]
