"""Command-line entry point: ``python -m repro.lint``.

Examples::

    python -m repro.lint --snapshot configs/ --format text
    python -m repro.lint --network NET3 --format sarif --out lint.sarif
    python -m repro.lint --network all --fail-on warning
    python -m repro.lint --network all --format sarif \\
        --baseline ci/lint_baseline.sarif   # exit 2 on drift

Exit codes: 0 clean, 1 findings at/above ``--fail-on``, 2 baseline
drift or usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Dict, List, Optional

from repro.config.loader import load_snapshot_from_dir, load_snapshot_from_texts
from repro.lint.model import Finding, LintConfig, Location, Related
from repro.lint.registry import all_rules
from repro.lint.runner import LintReport, lint_snapshot
from repro.lint.sarif import compare_to_baseline, to_sarif


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Run the semantic configuration linter.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--snapshot", metavar="DIR", help="directory of *.cfg files to lint"
    )
    source.add_argument(
        "--network",
        metavar="NAME",
        help="synthetic network name (NET1..NET11) or 'all'",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write output to FILE instead of stdout"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "note", "never"),
        default="never",
        help="exit 1 when any finding at/above this severity is active",
    )
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", help="run only these rules"
    )
    parser.add_argument(
        "--disable", metavar="ID[,ID...]", help="skip these rules"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel rule workers"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="SARIF baseline to diff against; exit 2 on any drift",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="include per-rule wall-clock in text output",
    )
    return parser.parse_args(argv)


def _prefix_files(findings: List[Finding], prefix: str) -> List[Finding]:
    """Namespace finding locations with the network name so multi-network
    SARIF logs keep distinct, stable URIs."""

    def reroot(location: Location) -> Location:
        if not location.file:
            return location
        return Location(f"{prefix}/{location.file}", location.line)

    out = []
    for finding in findings:
        out.append(
            replace(
                finding,
                location=reroot(finding.location),
                related=tuple(
                    Related(reroot(rel.location), rel.message)
                    for rel in finding.related
                ),
            )
        )
    return out


def _network_configs(name: str) -> Dict[str, str]:
    from repro.synth.networks import network_by_name

    return network_by_name(name).generate(1)


def _collect_report(args: argparse.Namespace, config: LintConfig) -> LintReport:
    if args.snapshot:
        snapshot = load_snapshot_from_dir(args.snapshot)
        return lint_snapshot(snapshot, config, jobs=args.jobs)
    if args.network and args.network.lower() != "all":
        snapshot = load_snapshot_from_texts(_network_configs(args.network))
        return lint_snapshot(snapshot, config, jobs=args.jobs)
    # All synthetic networks: one merged report, URIs namespaced by
    # network name so the baseline stays unambiguous.
    from repro.synth.networks import NETWORKS

    merged = LintReport()
    for spec in NETWORKS:
        snapshot = load_snapshot_from_texts(spec.generate(1))
        report = lint_snapshot(snapshot, config, jobs=args.jobs)
        merged.findings.extend(_prefix_files(report.findings, spec.name))
        merged.total_seconds += report.total_seconds
        for rule_id, seconds in report.rule_seconds.items():
            merged.rule_seconds[rule_id] = (
                merged.rule_seconds.get(rule_id, 0.0) + seconds
            )
        for rule_id in report.rules_run:
            if rule_id not in merged.rules_run:
                merged.rules_run.append(rule_id)
    return merged


def _render_text(report: LintReport, timings: bool) -> str:
    lines: List[str] = []
    for finding in report.findings:
        mark = " (suppressed)" if finding.suppressed else ""
        lines.append(
            f"{finding.severity.label:7s} {finding.rule_id:28s} "
            f"{finding.hostname:12s} {finding.location}  "
            f"{finding.message}{mark}"
        )
        for rel in finding.related:
            lines.append(f"        ^ {rel.location}  {rel.message}")
    counts = report.counts_by_severity()
    summary = ", ".join(
        f"{counts.get(label, 0)} {label}"
        for label in ("error", "warning", "note")
    )
    suppressed = len(report.findings) - len(report.active())
    lines.append(
        f"{len(report.active())} findings ({summary}); "
        f"{suppressed} suppressed"
    )
    if timings:
        for rule_id, seconds in sorted(report.rule_seconds.items()):
            lines.append(f"  {rule_id:30s} {seconds * 1000:8.1f} ms")
        lines.append(f"  {'total':30s} {report.total_seconds * 1000:8.1f} ms")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.rule_id:30s} {rule.severity.label:8s} "
                f"{rule.category:12s} {rule.description}"
            )
        return 0
    if not args.snapshot and not args.network:
        print(
            "error: one of --snapshot or --network is required",
            file=sys.stderr,
        )
        return 2
    config = LintConfig.from_dict(
        {
            "rules": args.rules.split(",") if args.rules else None,
            "disable": args.disable.split(",") if args.disable else [],
        }
    )
    report = _collect_report(args, config)

    rules = all_rules()
    if args.format == "sarif":
        output = json.dumps(to_sarif(report.findings, rules), indent=2) + "\n"
    elif args.format == "json":
        output = json.dumps(report.to_json(), indent=2) + "\n"
    else:
        output = _render_text(report, args.timings)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        current = to_sarif(report.findings, rules)
        new, resolved = compare_to_baseline(current, baseline)
        if new or resolved:
            for key in new:
                print(f"baseline drift: new finding {key}", file=sys.stderr)
            for key in resolved:
                print(
                    f"baseline drift: resolved finding {key}", file=sys.stderr
                )
            return 2
        print("baseline: no drift", file=sys.stderr)
    return report.exit_code(args.fail_on)


if __name__ == "__main__":
    sys.exit(main())
