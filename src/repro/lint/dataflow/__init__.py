"""Static control-plane dataflow analysis (abstract interpretation
over the route-propagation graph).

Nodes are per-device per-protocol RIB domains; edges are BGP sessions,
OSPF adjacencies, and ``redistribute`` statements; route-maps compile
into transfer-function summaries over an abstract route domain (the
:mod:`repro.lint.routespace` BDD encoding plus a tag lattice). A
worklist fixpoint yields, for every domain, an over-approximation of
every route the control plane can ever carry there — the substrate for
the cross-device lint rules in :mod:`repro.lint.dataflow.rules` and the
containment differential in :mod:`repro.lint.dataflow.validate`.
"""

from repro.lint.dataflow.domain import (
    ORIGIN_FLAG,
    AbstractRoutes,
    build_universe,
)
from repro.lint.dataflow.engine import (
    DataflowAnalysis,
    analysis_for,
    analyze,
    clear_shared,
    set_shared,
)
from repro.lint.dataflow.graph import (
    Edge,
    NodeId,
    PropagationGraph,
    build_graph,
)
from repro.lint.dataflow.validate import validate_containment

__all__ = [
    "ORIGIN_FLAG",
    "AbstractRoutes",
    "DataflowAnalysis",
    "Edge",
    "NodeId",
    "PropagationGraph",
    "analysis_for",
    "analyze",
    "build_graph",
    "build_universe",
    "clear_shared",
    "set_shared",
    "validate_containment",
]
