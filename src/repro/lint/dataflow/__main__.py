"""Dataflow containment sweep: ``python -m repro.lint.dataflow``.

For every network in the registry, runs the propagation-graph fixpoint
and checks the containment differential of
:func:`repro.lint.dataflow.validate.validate_containment`: any prefix
the simulated control plane places in a RIB domain (or delivers across
a BGP session) must be inside the corresponding abstract set. CI runs
this as the ``dataflow-validate`` job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.config.loader import load_snapshot_from_texts
from repro.lint.dataflow.engine import analyze
from repro.lint.dataflow.validate import validate_containment
from repro.synth.networks import NETWORKS


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.dataflow",
        description="validate the dataflow fixpoint's containment "
        "contract against concrete simulation across the registry",
    )
    parser.add_argument(
        "--networks",
        help="comma-separated registry names (default: all)",
    )
    parser.add_argument(
        "--scale", type=int, default=1, help="registry scale knob (default 1)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="only NET1 (fast CI signal)"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        wanted = {"NET1"}
    elif args.networks:
        wanted = {n.strip() for n in args.networks.split(",") if n.strip()}
    else:
        wanted = {spec.name for spec in NETWORKS}

    total_divergences = 0
    checked = 0
    for spec in NETWORKS:
        if spec.name not in wanted:
            continue
        configs = spec.generate(args.scale)
        snapshot = load_snapshot_from_texts(configs)
        analysis = analyze(snapshot)
        divergences = validate_containment(snapshot, analysis)
        checked += 1
        status = "ok" if not divergences else "FAIL"
        print(
            f"{status} {spec.name}: {len(configs)} devices, "
            f"{len(analysis.graph.nodes)} nodes / "
            f"{len(analysis.graph.edges)} edges, "
            f"{analysis.iterations} fixpoint iterations "
            f"({analysis.fixpoint_seconds:.2f}s)"
        )
        for line in divergences:
            print(f"  DIVERGENCE {line}")
        if args.verbose and not divergences:
            for node in analysis.graph.nodes:
                state = analysis.states[node]
                print(f"    {node[0]}/{node[1]}: bdd={state.bdd}")
        total_divergences += len(divergences)
    print(
        f"dataflow validation: {checked} network(s), "
        f"{total_divergences} divergence(s)"
    )
    return 1 if total_divergences else 0


if __name__ == "__main__":
    sys.exit(main())
