"""The abstract route domain of the dataflow engine.

An abstract state is a pair:

* a :class:`~repro.lint.routespace.RouteSpace` BDD over prefix bits,
  length bits, the snapshot-wide community alphabet, and one *origin
  flag* variable ("this route entered BGP through redistribution" —
  what the route-leak rule keys on), and
* a small *tag lattice*: the set of route-tag values any route in the
  state may carry, widened to ⊤ (``None``) past a fixed size. Tags
  live outside the BDD because they are matched by equality against
  arbitrary integers — a per-value variable encoding would grow the
  universe with every edit.

Everything here over-approximates: joins are unions, transfers only
ever *add* behaviour for constructs they cannot model exactly (the
"never subtract inexact" rule inherited from the clause-reachability
encoder). See DESIGN.md "Propagation-graph soundness".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set

from repro.bdd.engine import FALSE
from repro.config.model import SetKind, Snapshot
from repro.lint.routespace import RouteSpaceUniverse

#: The extra BDD variable marking routes that entered BGP via a
#: ``redistribute`` statement (as opposed to a ``network`` statement).
ORIGIN_FLAG = "redistributed"

#: Tag sets wider than this widen to ⊤ (``None``).
MAX_TAGS = 32

#: The tag a route carries when nothing ever set one (PolicyRoute
#: default).
DEFAULT_TAG = 0

TagSet = Optional[FrozenSet[int]]  # None = ⊤ (any tag possible)


def snapshot_communities(snapshot: Snapshot) -> Set[str]:
    """Every community string the snapshot can mention on a route:
    community-list members (matchable) plus ``set community`` values
    (settable). Routes are originated with no communities, so this
    alphabet is closed under every concrete transfer."""
    communities: Set[str] = set()
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for clist in device.community_lists.values():
            communities.update(clist.communities)
        for route_map in device.route_maps.values():
            for clause in route_map.clauses:
                for set_clause in clause.sets:
                    if set_clause.kind in (
                        SetKind.COMMUNITY,
                        SetKind.COMMUNITY_ADDITIVE,
                    ):
                        communities.update(set_clause.value.split())
    return communities


def build_universe(snapshot: Snapshot) -> RouteSpaceUniverse:
    """The snapshot-wide variable space shared by every node state."""
    return RouteSpaceUniverse(
        communities=snapshot_communities(snapshot), flags=(ORIGIN_FLAG,)
    )


def universe_fingerprint(snapshot: Snapshot) -> str:
    """The fingerprint :func:`build_universe` would produce, computed
    without building a BDD engine (cheap warm-start compatibility
    probe)."""
    return RouteSpaceUniverse.fingerprint_of(
        snapshot_communities(snapshot), (ORIGIN_FLAG,)
    )


def join_tags(a: TagSet, b: TagSet) -> TagSet:
    if a is None or b is None:
        return None
    merged = a | b
    if len(merged) > MAX_TAGS:
        return None
    return merged


def tags_may_equal(tags: TagSet, value: int) -> bool:
    """Whether a route in a state with tag-set ``tags`` may carry
    ``value`` (⊤ admits everything)."""
    return tags is None or value in tags


@dataclass(frozen=True)
class AbstractRoutes:
    """One node's abstract state: a route-space BDD plus the tag set.

    ``bdd`` is a node id in the analysis universe's engine; states from
    different analyses never mix (the engine asserts by construction —
    BDD ids are engine-local).
    """

    bdd: int
    tags: TagSet

    @staticmethod
    def bottom() -> "AbstractRoutes":
        return AbstractRoutes(FALSE, frozenset())

    def is_bottom(self) -> bool:
        return self.bdd == FALSE

    def join(
        self, other: "AbstractRoutes", universe: RouteSpaceUniverse
    ) -> "AbstractRoutes":
        return AbstractRoutes(
            universe.engine.or_(self.bdd, other.bdd),
            join_tags(self.tags, other.tags),
        )


def private_space(universe: RouteSpaceUniverse) -> int:
    """RFC1918 address space (any length) — the confinement predicate
    the route-leak rule checks at external boundaries."""
    from repro.hdr.ip import Prefix

    return universe.engine.or_all(
        [
            universe.address_under(Prefix("10.0.0.0/8")),
            universe.address_under(Prefix("172.16.0.0/12")),
            universe.address_under(Prefix("192.168.0.0/16")),
        ]
    )


#: Community spellings that mark a route as not-to-be-exported; a route
#: carrying one crossing an eBGP edge is a leak.
NO_EXPORT_COMMUNITIES = ("no-export", "65535:65281")
