"""Worklist fixpoint over the route-propagation graph.

``analyze`` builds the snapshot universe and graph, seeds every node
with its locally-originated routes, and iterates edge transfers to a
least fixpoint. The result over-approximates, per RIB domain, every
route the control plane can ever carry there (DESIGN.md
"Propagation-graph soundness").

Delta runs warm-start from a cached base fixpoint: only nodes on dirty
devices and their descendants are reset to seeds and re-iterated;
clean ancestors keep their (provably identical) base values. The warm
path falls back to a full fixpoint whenever the device set or the
community alphabet (BDD variable order) changed.

The analysis is computed once in the lint runner *before* the rule pool
forks and published through a module-global slot
(:func:`set_shared` / :func:`analysis_for`), so forked rule workers
share the BDD tables copy-on-write instead of recomputing them.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config.model import Action, Snapshot
from repro.lint.dataflow.domain import (
    ORIGIN_FLAG,
    AbstractRoutes,
    DEFAULT_TAG,
    build_universe,
    join_tags,
    tags_may_equal,
    universe_fingerprint,
)
from repro.lint.dataflow.graph import (
    DOMAIN_BGP,
    DOMAIN_OSPF,
    DOMAIN_PROTOCOL_VALUES,
    Edge,
    NodeId,
    PolicySummary,
    PropagationGraph,
    build_graph,
)
from repro.lint.routespace import RouteSpaceUniverse

CACHE_KIND = "dataflow"


# ----------------------------------------------------------------------
# Transfer functions


def _apply_community_ops(
    universe: RouteSpaceUniverse,
    bdd: int,
    ops: Tuple[Tuple[str, Tuple[str, ...]], ...],
) -> int:
    """Replay ``set community [additive]`` on a route set: quantify the
    rewritten variables away, then pin them to their new values."""
    engine = universe.engine
    for kind, members in ops:
        if kind == "replace":
            all_levels = universe.community_levels()
            if all_levels:
                bdd = engine.exists(bdd, engine.cube(all_levels))
            member_levels = {
                universe.community_level(member) for member in members
            }
            for level in all_levels:
                if level in member_levels:
                    bdd = engine.and_(bdd, engine.var(level))
                else:
                    bdd = engine.and_(bdd, engine.nvar(level))
        else:  # "add"
            for member in members:
                level = universe.community_level(member)
                if level is None:
                    continue  # not in the alphabet: nothing can match it
                bdd = engine.exists(bdd, engine.cube([level]))
                bdd = engine.and_(bdd, engine.var(level))
    return bdd


def _strip_communities(universe: RouteSpaceUniverse, bdd: int) -> int:
    """Exact model of "communities dropped": quantify the community
    variables away, then pin them all to absent. Flag variables (our own
    instrumentation) survive."""
    engine = universe.engine
    levels = universe.community_levels()
    if not levels:
        return bdd
    bdd = engine.exists(bdd, engine.cube(levels))
    for level in levels:
        bdd = engine.and_(bdd, engine.nvar(level))
    return bdd


def _protocol_resolution(
    protocol_values: Tuple[str, ...], source_protocols: Tuple[str, ...]
) -> str:
    """How ``match protocol`` resolves against the edge's known source
    domain: "pass" (all possible source values match — exact),
    "fail" (none do — the clause can be skipped, exact), or "inexact"
    (mixed, or the source domain is unknown)."""
    if not protocol_values:
        return "pass"
    if not source_protocols:
        return "inexact"
    passing = [
        value
        for value in source_protocols
        if all(value.startswith(want) for want in protocol_values)
    ]
    if not passing:
        return "fail"
    if len(passing) == len(source_protocols):
        return "pass"
    return "inexact"


def apply_policy(
    universe: RouteSpaceUniverse,
    summary: Optional[PolicySummary],
    state: AbstractRoutes,
    source_protocols: Tuple[str, ...] = (),
) -> AbstractRoutes:
    """The abstract transfer of one route-map application.

    Mirrors the concrete first-match walk: a clause's *exact* match set
    is subtracted from the residual, an inexact clause's residual
    survives (it might not have matched concretely), and an
    unmatched-by-any-clause residual dies (implicit deny). Every inexact
    construct only ever widens the output.
    """
    if summary is None or not summary.defined:
        # No policy / undefined map: permit unchanged (DEFAULT_SEMANTICS
        # .undefined_route_map_permits).
        return state
    engine = universe.engine
    from repro.bdd.engine import FALSE

    residual = state.bdd
    out = FALSE
    out_tags = frozenset()  # type: ignore[var-annotated]
    for clause in summary.clauses:
        if residual == FALSE:
            break
        resolution = _protocol_resolution(
            clause.protocol_values, source_protocols
        )
        if resolution == "fail":
            continue  # exact: the clause never fires on this edge
        if clause.tag_eq is not None and not tags_may_equal(
            state.tags, clause.tag_eq
        ):
            continue  # exact: no route in the state carries that tag
        feasible = engine.and_(residual, clause.guard)
        if feasible == FALSE:
            # guard over-approximates, so concrete matches are empty too.
            continue
        if clause.action is Action.PERMIT:
            transformed = _apply_community_ops(
                universe, feasible, clause.community_ops
            )
            out = engine.or_(out, transformed)
            if clause.set_tag is not None:
                clause_tags = frozenset({clause.set_tag})
            elif clause.tag_eq is not None:
                clause_tags = frozenset({clause.tag_eq})
            else:
                clause_tags = state.tags
            out_tags = join_tags(out_tags, clause_tags)
        if clause.is_exact(resolution == "pass"):
            residual = engine.diff(residual, clause.guard)
        # Inexact clause: the residual survives untouched — routes it
        # *might* have matched also might fall through to later clauses.
    # Implicit deny: whatever residual remains is dropped.
    return AbstractRoutes(out, out_tags)


@dataclass(frozen=True)
class PolicyStage:
    """One route-map application along an edge, with its abstract
    input/output — the rules' window into per-clause dataflow."""

    role: str  # "redistribute" | "export" | "import"
    hostname: str
    policy: Optional[str]
    input: AbstractRoutes
    output: AbstractRoutes
    source_protocols: Tuple[str, ...] = ()


def apply_edge(
    universe: RouteSpaceUniverse,
    graph: PropagationGraph,
    edge: Edge,
    state: AbstractRoutes,
) -> Tuple[AbstractRoutes, List[PolicyStage]]:
    """The full transfer of one edge: value delivered into ``edge.dst``
    plus the per-policy stages for blame/coverage."""
    engine = universe.engine
    stages: List[PolicyStage] = []
    if edge.kind == "ospf-adjacency":
        # Flooding: identity (metric/area structure not modelled).
        return state, stages
    if edge.kind == "redistribute":
        assert edge.redist is not None
        source_protocols = DOMAIN_PROTOCOL_VALUES[edge.src[1]]
        # The concrete engine builds a *fresh* PolicyRoute per
        # redistributed route (tag 0, no communities are carried from
        # OSPF/static anyway — but BGP-sourced routes do keep their
        # communities in the BGP-redistribution path, which starts from
        # the main RIB; we over-approximate by feeding the full source
        # state through the map).
        state_in = AbstractRoutes(state.bdd, frozenset({DEFAULT_TAG}))
        summary = graph.summary(edge.hostname, edge.redist.route_map)
        out = apply_policy(universe, summary, state_in, source_protocols)
        stages.append(
            PolicyStage(
                role="redistribute",
                hostname=edge.hostname,
                policy=edge.redist.route_map,
                input=state_in,
                output=out,
                source_protocols=source_protocols,
            )
        )
        if edge.dst[1] == DOMAIN_OSPF:
            # OSPF externals carry (prefix, metric) only: communities,
            # flags and tags are all dropped.
            bdd = _strip_communities(universe, out.bdd)
            for level in universe.flag_levels():
                bdd = engine.exists(bdd, engine.cube([level]))
                bdd = engine.and_(bdd, engine.nvar(level))
            return AbstractRoutes(bdd, frozenset({DEFAULT_TAG})), stages
        assert edge.dst[1] == DOMAIN_BGP
        # Mark the origin: this route entered BGP via redistribution.
        flag_level = universe.flag_level(ORIGIN_FLAG)
        bdd = engine.exists(out.bdd, engine.cube([flag_level]))
        bdd = engine.and_(bdd, engine.var(flag_level))
        # local_route drops the transformed tag (fresh attributes).
        return AbstractRoutes(bdd, frozenset({DEFAULT_TAG})), stages
    assert edge.kind == "bgp-session"
    source_protocols = DOMAIN_PROTOCOL_VALUES[DOMAIN_BGP]
    export_summary = graph.summary(edge.hostname, edge.export_policy)
    exported = apply_policy(universe, export_summary, state, source_protocols)
    stages.append(
        PolicyStage(
            role="export",
            hostname=edge.hostname,
            policy=edge.export_policy,
            input=state,
            output=exported,
            source_protocols=source_protocols,
        )
    )
    if edge.is_ebgp:
        # Without send_community the concrete engine strips communities
        # on eBGP export. send_community is per-neighbor; modelling the
        # strip unconditionally would be *unsound* the other way (a
        # kept community could satisfy a later match), so widen: the
        # union of stripped and unstripped behaviours.
        stripped = _strip_communities(universe, exported.bdd)
        exported = AbstractRoutes(
            engine.or_(exported.bdd, stripped), exported.tags
        )
    import_summary = graph.summary(edge.dst[0], edge.import_policy)
    imported = apply_policy(universe, import_summary, exported, source_protocols)
    stages.append(
        PolicyStage(
            role="import",
            hostname=edge.dst[0],
            policy=edge.import_policy,
            input=exported,
            output=imported,
            source_protocols=source_protocols,
        )
    )
    return imported, stages


# ----------------------------------------------------------------------
# Fixpoint


def _run_fixpoint(
    universe: RouteSpaceUniverse,
    graph: PropagationGraph,
    states: Dict[NodeId, AbstractRoutes],
    worklist: List[NodeId],
) -> int:
    queue = deque(sorted(set(worklist)))
    queued: Set[NodeId] = set(queue)
    iterations = 0
    while queue:
        node = queue.popleft()
        queued.discard(node)
        iterations += 1
        state = states[node]
        for edge_index in graph.out_edges.get(node, ()):
            edge = graph.edges[edge_index]
            delivered, _ = apply_edge(universe, graph, edge, state)
            current = states[edge.dst]
            joined = current.join(delivered, universe)
            if joined.bdd != current.bdd or joined.tags != current.tags:
                states[edge.dst] = joined
                if edge.dst not in queued:
                    queue.append(edge.dst)
                    queued.add(edge.dst)
    return iterations


@dataclass
class DataflowAnalysis:
    """The fixpoint and everything the rules need to interrogate it."""

    universe: RouteSpaceUniverse
    graph: PropagationGraph
    states: Dict[NodeId, AbstractRoutes]
    edge_outputs: List[AbstractRoutes]
    iterations: int
    fixpoint_seconds: float
    warm_start: bool = False
    fingerprint: str = ""
    _stage_cache: Dict[int, List[PolicyStage]] = field(
        default_factory=dict, repr=False
    )

    def edge_stages(self, edge_index: int) -> List[PolicyStage]:
        """Per-policy stages of an edge evaluated at the fixpoint."""
        cached = self._stage_cache.get(edge_index)
        if cached is None:
            edge = self.graph.edges[edge_index]
            _, cached = apply_edge(
                self.universe, self.graph, edge, self.states[edge.src]
            )
            self._stage_cache[edge_index] = cached
        return cached

    def canonical_states(self) -> Dict[NodeId, object]:
        """Engine-independent view of the fixpoint, for comparing a
        warm-started run against a cold one."""
        return {
            node: (
                self.universe.engine.canonical(state.bdd),
                None if state.tags is None else tuple(sorted(state.tags)),
            )
            for node, state in self.states.items()
        }


def _descendants(
    roots: Set[NodeId], edge_pairs: List[Tuple[NodeId, NodeId]]
) -> Set[NodeId]:
    adjacency: Dict[NodeId, List[NodeId]] = {}
    for src, dst in edge_pairs:
        adjacency.setdefault(src, []).append(dst)
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def analyze(
    snapshot: Snapshot,
    cache=None,
    snapshot_key: Optional[str] = None,
    delta: Optional[dict] = None,
) -> DataflowAnalysis:
    """Run (or warm-start) the propagation fixpoint for a snapshot.

    ``delta`` — when linting a delta-derived session — carries
    ``{"base_key", "dirty_devices", "fallback"}``; with a cache hit on
    the base fixpoint and an unchanged device set / community alphabet,
    only the dirty subgraph is re-iterated.
    """
    started = time.perf_counter()
    fingerprint = universe_fingerprint(snapshot)
    hostnames = sorted(snapshot.hostnames())

    cached = None
    if (
        delta is not None
        and not delta.get("fallback")
        and delta.get("base_key")
        and cache is not None
    ):
        cached = cache.load(CACHE_KIND, delta["base_key"])
        if cached is not None and (
            cached.get("fingerprint") != fingerprint
            or cached.get("devices") != hostnames
        ):
            cached = None  # alphabet or device set changed: full fixpoint

    warm = False
    if cached is not None:
        universe = cached["universe"]
        graph = build_graph(snapshot, universe)
        base_states: Dict[NodeId, AbstractRoutes] = {
            node: AbstractRoutes(
                bdd, None if tags is None else frozenset(tags)
            )
            for node, (bdd, tags) in cached["states"].items()
        }
        dirty = set(delta.get("dirty_devices") or ())
        dirty_nodes = {
            node for node in set(graph.nodes) | set(base_states)
            if node[0] in dirty
        }
        # A node's fixpoint value depends only on its ancestors, so
        # resetting the dirty devices *and everything downstream of
        # them* (over both old and new edges) leaves every kept value
        # provably equal to what a cold run would compute.
        reset = _descendants(
            dirty_nodes, cached["edges"] + graph.edge_pairs()
        )
        states = {}
        missing_clean = False
        for node in graph.nodes:
            if node in reset:
                states[node] = graph.seeds[node]
            elif node in base_states:
                states[node] = base_states[node]
            else:
                missing_clean = True
                break
        if missing_clean:
            cached = None  # clean device grew a new domain: full run
        else:
            feeders = [
                edge.src
                for edge in graph.edges
                if edge.dst in reset and edge.src not in reset
            ]
            worklist = [n for n in graph.nodes if n in reset] + feeders
            iterations = _run_fixpoint(universe, graph, states, worklist)
            warm = True

    if cached is None:
        universe = build_universe(snapshot)
        graph = build_graph(snapshot, universe)
        states = dict(graph.seeds)
        iterations = _run_fixpoint(universe, graph, states, list(graph.nodes))

    edge_outputs = [
        apply_edge(universe, graph, edge, states[edge.src])[0]
        for edge in graph.edges
    ]
    elapsed = time.perf_counter() - started

    if cache is not None and snapshot_key is not None:
        cache.store(
            CACHE_KIND,
            snapshot_key,
            {
                "fingerprint": fingerprint,
                "devices": hostnames,
                "edges": graph.edge_pairs(),
                "states": {
                    node: (
                        state.bdd,
                        None
                        if state.tags is None
                        else tuple(sorted(state.tags)),
                    )
                    for node, state in states.items()
                },
                "universe": universe,
            },
        )

    return DataflowAnalysis(
        universe=universe,
        graph=graph,
        states=states,
        edge_outputs=edge_outputs,
        iterations=iterations,
        fixpoint_seconds=elapsed,
        warm_start=warm,
        fingerprint=fingerprint,
    )


# ----------------------------------------------------------------------
# Shared-analysis slot (computed pre-fork, read by pooled rule workers)

_SHARED: List[Tuple[Snapshot, DataflowAnalysis]] = []


def set_shared(snapshot: Snapshot, analysis: DataflowAnalysis) -> None:
    _SHARED[:] = [(snapshot, analysis)]


def clear_shared() -> None:
    _SHARED[:] = []


def analysis_for(snapshot: Snapshot) -> DataflowAnalysis:
    """The pre-computed analysis for ``snapshot`` when the runner
    published one (identity match — forked workers inherit the slot
    copy-on-write); a fresh cold run otherwise (direct rule
    invocation, tests)."""
    for shared_snapshot, analysis in _SHARED:
        if shared_snapshot is snapshot:
            return analysis
    return analyze(snapshot)
