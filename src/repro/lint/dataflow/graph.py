"""The static route-propagation graph and its transfer summaries.

Nodes are ``(hostname, domain)`` pairs, one per RIB domain a device
owns: ``connected``, ``static``, ``ospf``, ``bgp``. Edges mirror the
three ways the concrete engine moves routes between domains:

* ``redistribute`` — intra-device, from the source protocol's domain
  into OSPF or BGP, through the statement's route-map;
* ``bgp-session`` — inter-device, sender's export policy composed with
  the receiver's import policy (one directed edge per candidate session
  direction from :func:`repro.routing.bgp.compute_bgp_sessions`);
* ``ospf-adjacency`` — inter-device identity edges between OSPF domains
  of L3-adjacent, OSPF-enabled interfaces (intra-area and external
  flooding over-approximated as "everything reaches everyone").

Each route-map referenced by an edge compiles once into a
:class:`PolicySummary`: per clause, a guard BDD (exact for prefix-list /
community-list matches, ⊤-widened otherwise), the tag/protocol matches
the BDD cannot express, and the set operations the abstract transfer
replays. Session viability, next-hop resolution, route-reflector rules
and community-stripping (``send_community``) are deliberately *not*
modelled — every omission only adds routes, preserving the containment
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bdd.engine import FALSE, TRUE
from repro.config.model import (
    Action,
    Device,
    MatchKind,
    Protocol,
    Redistribution,
    RouteMap,
    SetKind,
    Snapshot,
)
from repro.lint.dataflow.domain import DEFAULT_TAG, AbstractRoutes, ORIGIN_FLAG
from repro.lint.model import Location
from repro.lint.routespace import RouteSpaceEncoder, RouteSpaceUniverse
from repro.routing.bgp import compute_bgp_sessions
from repro.routing.topology import build_layer3_topology

NodeId = Tuple[str, str]  # (hostname, domain)

DOMAIN_CONNECTED = "connected"
DOMAIN_STATIC = "static"
DOMAIN_OSPF = "ospf"
DOMAIN_BGP = "bgp"

#: Which domain feeds a ``redistribute <source>`` statement, and the
#: concrete ``Protocol.value`` strings routes from that domain may carry
#: (what ``match protocol`` compares against via ``startswith``).
_REDIST_DOMAIN: Dict[Protocol, str] = {
    Protocol.CONNECTED: DOMAIN_CONNECTED,
    Protocol.STATIC: DOMAIN_STATIC,
    Protocol.OSPF: DOMAIN_OSPF,
    Protocol.BGP: DOMAIN_BGP,
}

DOMAIN_PROTOCOL_VALUES: Dict[str, Tuple[str, ...]] = {
    DOMAIN_CONNECTED: (Protocol.CONNECTED.value,),
    DOMAIN_STATIC: (Protocol.STATIC.value,),
    DOMAIN_OSPF: (
        Protocol.OSPF.value,
        Protocol.OSPF_IA.value,
        Protocol.OSPF_E2.value,
    ),
    DOMAIN_BGP: (Protocol.BGP.value, Protocol.IBGP.value),
}


@dataclass(frozen=True)
class ClauseSummary:
    """One route-map clause as the abstract transfer sees it."""

    seq: int
    action: Action
    #: Over-approximate match set over prefix/community variables.
    guard: int
    #: True when ``guard`` is the *exact* prefix/community match set.
    guard_exact: bool
    #: ``match tag N`` — evaluated against the tag lattice.
    tag_eq: Optional[int] = None
    #: ``match protocol X`` values — resolvable on redistribution edges
    #: where the source domain is known.
    protocol_values: Tuple[str, ...] = ()
    #: as-path / metric matches present (never resolvable here).
    other_inexact: bool = False
    #: Ordered community rewrites: ("replace"|"add", members).
    community_ops: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: ``set tag N``.
    set_tag: Optional[int] = None
    #: Community-list names this clause matches on (resolved members in
    #: ``matched_communities``) — inputs to the community-dataflow rule.
    matched_lists: Tuple[str, ...] = ()
    matched_communities: Tuple[str, ...] = ()
    location: Location = Location()

    def is_exact(self, protocols_resolved: bool) -> bool:
        """Whether first-match residual subtraction is sound for this
        clause: every match condition is exactly represented."""
        return (
            self.guard_exact
            and self.tag_eq is None
            and not self.other_inexact
            and (not self.protocol_values or protocols_resolved)
        )


@dataclass(frozen=True)
class PolicySummary:
    """A compiled route-map: the transfer function's static half."""

    hostname: str
    name: str
    defined: bool
    clauses: Tuple[ClauseSummary, ...] = ()
    location: Location = Location()

    def is_identity(self) -> bool:
        """Structurally a no-op: undefined (model default permits
        unchanged) or a map whose first clause permits everything
        without rewriting."""
        if not self.defined:
            return True
        if not self.clauses:
            return False  # no clause matched -> implicit deny everything
        first = self.clauses[0]
        return (
            first.action is Action.PERMIT
            and first.guard == TRUE
            and first.guard_exact
            and first.tag_eq is None
            and not first.protocol_values
            and not first.other_inexact
            and not first.community_ops
            and first.set_tag is None
        )


@dataclass(frozen=True)
class Edge:
    """A directed propagation edge with everything blame needs."""

    src: NodeId
    dst: NodeId
    kind: str  # "redistribute" | "bgp-session" | "ospf-adjacency"
    #: Device to blame (dst-side for redistribute, sender for sessions).
    hostname: str
    location: Location = Location()
    #: Redistribute edges: the statement.
    redist: Optional[Redistribution] = None
    #: Session edges.
    is_ebgp: bool = False
    export_policy: Optional[str] = None
    import_policy: Optional[str] = None
    #: Receiver-side neighbor statement (import blame anchor).
    import_location: Location = Location()

    def describe(self) -> str:
        if self.kind == "redistribute":
            assert self.redist is not None
            via = (
                f" route-map {self.redist.route_map}"
                if self.redist.route_map
                else ""
            )
            return (
                f"{self.hostname}: redistribute {self.redist.source.value} "
                f"into {self.dst[1]}{via}"
            )
        if self.kind == "bgp-session":
            flavor = "eBGP" if self.is_ebgp else "iBGP"
            return f"{flavor} session {self.src[0]} -> {self.dst[0]}"
        return f"OSPF adjacency {self.src[0]} -> {self.dst[0]}"


@dataclass
class PropagationGraph:
    """Nodes, edges, seeds, and compiled policy summaries."""

    universe: RouteSpaceUniverse
    nodes: List[NodeId] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    seeds: Dict[NodeId, AbstractRoutes] = field(default_factory=dict)
    out_edges: Dict[NodeId, List[int]] = field(default_factory=dict)
    summaries: Dict[Tuple[str, Optional[str]], PolicySummary] = field(
        default_factory=dict
    )

    def summary(
        self, hostname: str, name: Optional[str]
    ) -> Optional[PolicySummary]:
        """The compiled summary for ``name`` on ``hostname``; ``None``
        when no policy applies at all."""
        if name is None:
            return None
        return self.summaries.get((hostname, name))

    def edge_pairs(self) -> List[Tuple[NodeId, NodeId]]:
        return [(edge.src, edge.dst) for edge in self.edges]


def _route_map_location(route_map: Optional[RouteMap]) -> Location:
    if route_map is None:
        return Location()
    return Location(route_map.source_file, route_map.source_line)


def compile_policy(
    universe: RouteSpaceUniverse, device: Device, name: str
) -> PolicySummary:
    """Compile one route-map into its clause summaries (shared
    universe, so summaries from different devices compose)."""
    route_map = device.route_maps.get(name)
    if route_map is None:
        return PolicySummary(device.hostname, name, defined=False)
    encoder = RouteSpaceEncoder(device, universe=universe)
    engine = universe.engine
    clauses: List[ClauseSummary] = []
    for clause in route_map.sorted_clauses():
        guard = TRUE
        guard_exact = True
        tag_eq: Optional[int] = None
        protocol_values: List[str] = []
        other_inexact = False
        matched_lists: List[str] = []
        matched_communities: List[str] = []
        for match in clause.matches:
            if match.kind is MatchKind.PREFIX_LIST:
                plist = device.prefix_lists.get(match.value)
                if plist is None:
                    # undefined_prefix_list_fails_match: never holds.
                    guard = FALSE
                else:
                    guard = engine.and_(
                        guard, encoder.prefix_list_space(plist)
                    )
            elif match.kind is MatchKind.COMMUNITY:
                guard = engine.and_(
                    guard, encoder.community_list_space(match.value)
                )
                matched_lists.append(match.value)
                clist = device.community_lists.get(match.value)
                if clist is not None:
                    matched_communities.extend(clist.communities)
            elif match.kind is MatchKind.TAG:
                try:
                    value = int(match.value)
                except ValueError:
                    other_inexact = True
                    continue
                if tag_eq is not None and tag_eq != value:
                    guard = FALSE  # tag == a and tag == b, a != b
                else:
                    tag_eq = value
            elif match.kind is MatchKind.PROTOCOL:
                protocol_values.append(match.value)
            else:
                # as-path regexes, metric: widen to ⊤.
                other_inexact = True
        community_ops: List[Tuple[str, Tuple[str, ...]]] = []
        set_tag: Optional[int] = None
        for set_clause in clause.sets:
            if set_clause.kind is SetKind.COMMUNITY:
                community_ops.append(
                    ("replace", tuple(set_clause.value.split()))
                )
            elif set_clause.kind is SetKind.COMMUNITY_ADDITIVE:
                community_ops.append(("add", tuple(set_clause.value.split())))
            elif set_clause.kind is SetKind.TAG:
                try:
                    set_tag = int(set_clause.value)
                except ValueError:
                    pass
        clauses.append(
            ClauseSummary(
                seq=clause.seq,
                action=clause.action,
                guard=guard,
                guard_exact=guard_exact,
                tag_eq=tag_eq,
                protocol_values=tuple(protocol_values),
                other_inexact=other_inexact,
                community_ops=tuple(community_ops),
                set_tag=set_tag,
                matched_lists=tuple(matched_lists),
                matched_communities=tuple(matched_communities),
                location=Location(clause.source_file, clause.source_line),
            )
        )
    return PolicySummary(
        hostname=device.hostname,
        name=name,
        defined=True,
        clauses=tuple(clauses),
        location=_route_map_location(route_map),
    )


def _seed_atoms(
    universe: RouteSpaceUniverse, prefixes: List[object]
) -> AbstractRoutes:
    """Freshly-originated routes for ``prefixes``: exact atoms carrying
    no communities, no flags, and the default tag."""
    if not prefixes:
        return AbstractRoutes.bottom()
    engine = universe.engine
    bdd = engine.or_all(
        [universe.prefix_atom(prefix) for prefix in prefixes]  # type: ignore[arg-type]
    )
    bdd = engine.and_(bdd, universe.without_communities())
    return AbstractRoutes(bdd, frozenset({DEFAULT_TAG}))


def build_graph(
    snapshot: Snapshot, universe: RouteSpaceUniverse
) -> PropagationGraph:
    graph = PropagationGraph(universe=universe)
    node_set: Set[NodeId] = set()

    def add_node(node: NodeId, seed: AbstractRoutes) -> None:
        if node in node_set:
            existing = graph.seeds[node]
            graph.seeds[node] = existing.join(seed, universe)
            return
        node_set.add(node)
        graph.nodes.append(node)
        graph.seeds[node] = seed

    def ensure_summary(device: Device, name: Optional[str]) -> None:
        if name is None:
            return
        key = (device.hostname, name)
        if key not in graph.summaries:
            graph.summaries[key] = compile_policy(universe, device, name)

    # -- nodes + seeds -----------------------------------------------------
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        connected = [
            iface.prefix
            for iface in device.interfaces.values()
            if iface.enabled and iface.prefix is not None
        ]
        add_node((hostname, DOMAIN_CONNECTED), _seed_atoms(universe, connected))
        add_node(
            (hostname, DOMAIN_STATIC),
            _seed_atoms(
                universe, [route.prefix for route in device.static_routes]
            ),
        )
        if device.ospf is not None:
            ospf_prefixes = [
                iface.prefix
                for iface in device.interfaces.values()
                if iface.enabled
                and iface.ospf_enabled
                and iface.prefix is not None
            ]
            if device.ospf.default_information_originate:
                from repro.hdr.ip import Prefix

                ospf_prefixes.append(Prefix("0.0.0.0/0"))
            add_node((hostname, DOMAIN_OSPF), _seed_atoms(universe, ospf_prefixes))
        if device.bgp is not None:
            add_node(
                (hostname, DOMAIN_BGP),
                _seed_atoms(universe, list(device.bgp.networks)),
            )

    # -- redistribution edges ----------------------------------------------
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        targets: List[Tuple[str, List[Redistribution]]] = []
        if device.ospf is not None:
            targets.append((DOMAIN_OSPF, list(device.ospf.redistributions)))
        if device.bgp is not None:
            targets.append((DOMAIN_BGP, list(device.bgp.redistributions)))
        for domain, redistributions in targets:
            for redist in redistributions:
                src_domain = _REDIST_DOMAIN.get(redist.source)
                if src_domain is None:
                    continue
                src = (hostname, src_domain)
                if src not in node_set or src_domain == domain:
                    continue  # no such routes can exist on this device
                ensure_summary(device, redist.route_map)
                graph.edges.append(
                    Edge(
                        src=src,
                        dst=(hostname, domain),
                        kind="redistribute",
                        hostname=hostname,
                        location=Location(
                            redist.source_file, redist.source_line
                        ),
                        redist=redist,
                    )
                )

    # -- OSPF adjacency edges ----------------------------------------------
    seen_adjacent: Set[Tuple[NodeId, NodeId]] = set()
    topology = build_layer3_topology(snapshot)
    for l3_edge in topology.edges():
        tail_host, head_host = l3_edge.tail.node, l3_edge.head.node
        if tail_host == head_host:
            continue
        tail_node, head_node = (tail_host, DOMAIN_OSPF), (head_host, DOMAIN_OSPF)
        if tail_node not in node_set or head_node not in node_set:
            continue
        tail_iface = snapshot.device(tail_host).interfaces.get(
            l3_edge.tail.interface
        )
        head_iface = snapshot.device(head_host).interfaces.get(
            l3_edge.head.interface
        )
        if (
            tail_iface is None
            or head_iface is None
            or not tail_iface.ospf_enabled
            or not head_iface.ospf_enabled
        ):
            continue
        # Passive interfaces form no adjacency concretely; keeping the
        # edge anyway only over-approximates, and tolerates dialects
        # that advertise-but-not-peer differently.
        if (tail_node, head_node) in seen_adjacent:
            continue
        seen_adjacent.add((tail_node, head_node))
        graph.edges.append(
            Edge(
                src=tail_node,
                dst=head_node,
                kind="ospf-adjacency",
                hostname=head_host,
                location=Location(
                    head_iface.source_file, head_iface.source_line
                ),
            )
        )

    # -- BGP session edges -------------------------------------------------
    sessions, _issues = compute_bgp_sessions(snapshot)
    for session in sessions:
        src = (session.local_node, DOMAIN_BGP)
        dst = (session.remote_node, DOMAIN_BGP)
        if src not in node_set or dst not in node_set or src == dst:
            continue
        sender = snapshot.device(session.local_node)
        receiver = snapshot.device(session.remote_node)
        export_policy = session.neighbor.export_policy
        receiver_neighbor = (
            receiver.bgp.neighbors.get(session.local_ip)
            if receiver.bgp is not None
            else None
        )
        import_policy = (
            receiver_neighbor.import_policy if receiver_neighbor else None
        )
        ensure_summary(sender, export_policy)
        ensure_summary(receiver, import_policy)
        graph.edges.append(
            Edge(
                src=src,
                dst=dst,
                kind="bgp-session",
                hostname=session.local_node,
                location=Location(
                    session.neighbor.source_file, session.neighbor.source_line
                ),
                is_ebgp=not session.is_ibgp,
                export_policy=export_policy,
                import_policy=import_policy,
                import_location=(
                    Location(
                        receiver_neighbor.source_file,
                        receiver_neighbor.source_line,
                    )
                    if receiver_neighbor is not None
                    else Location()
                ),
            )
        )

    graph.nodes.sort()
    graph.edges.sort(key=lambda e: (e.src, e.dst, e.kind, str(e.location)))
    graph.out_edges = {node: [] for node in graph.nodes}
    for index, edge in enumerate(graph.edges):
        graph.out_edges[edge.src].append(index)
    return graph
