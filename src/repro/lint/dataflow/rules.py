"""Cross-device dataflow lint rules.

Each rule interrogates the propagation-graph fixpoint
(:func:`repro.lint.dataflow.engine.analysis_for`) instead of a single
device's configuration: leaks, loops and dead policy paths only exist
relative to what the *rest of the network* can deliver. Every finding
names the configuration line to blame and, where a route set witnesses
the problem, one concrete abstract route drawn from it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.bdd.engine import FALSE, TRUE
from repro.config.model import Action, Snapshot
from repro.lint.dataflow.domain import (
    NO_EXPORT_COMMUNITIES,
    ORIGIN_FLAG,
    AbstractRoutes,
    private_space,
)
from repro.lint.dataflow.engine import (
    DataflowAnalysis,
    PolicyStage,
    analysis_for,
    apply_edge,
    _protocol_resolution,
)
from repro.lint.dataflow.graph import NodeId, PolicySummary
from repro.lint.model import Finding, Location, Related, Severity
from repro.lint.registry import rule


def _witness(analysis: DataflowAnalysis, bdd: int) -> str:
    example = analysis.universe.space(bdd).example()
    if example is None:
        return ""
    prefix, communities = example
    carried = (
        " carrying " + ", ".join(sorted(communities)) if communities else ""
    )
    return f" (witness route: {prefix}{carried})"


def _redist_related(
    analysis: DataflowAnalysis, bgp_node: NodeId
) -> List[Related]:
    """The redistribute statements feeding a BGP domain — the origin of
    any ``redistributed``-flagged route there."""
    related = []
    for edge in analysis.graph.edges:
        if edge.kind == "redistribute" and edge.dst == bgp_node:
            assert edge.redist is not None
            related.append(
                Related(
                    edge.location,
                    f"route enters BGP here: redistribute "
                    f"{edge.redist.source.value} on {edge.hostname}",
                )
            )
    return related


@rule(
    "route-leak",
    Severity.ERROR,
    "dataflow",
    "Internal routes escaping over an eBGP session: a redistributed "
    "(internal-origin) route covering private address space, or a route "
    "carrying a no-export community, can reach an external peer "
    "(propagation-graph fixpoint; over-approximate, so silence is proof "
    "of confinement).",
    scope="dataflow",
)
def route_leak(snapshot: Snapshot) -> List[Finding]:
    analysis = analysis_for(snapshot)
    universe = analysis.universe
    engine = universe.engine
    findings: List[Finding] = []
    confined = private_space(universe)
    no_export = engine.or_all(
        [universe.community(name) for name in NO_EXPORT_COMMUNITIES]
    )
    for index, edge in enumerate(analysis.graph.edges):
        if edge.kind != "bgp-session" or not edge.is_ebgp:
            continue
        out = analysis.edge_outputs[index]
        stages = analysis.edge_stages(index)
        if edge.export_policy and analysis.graph.summary(
            edge.hostname, edge.export_policy
        ):
            summary = analysis.graph.summaries[
                (edge.hostname, edge.export_policy)
            ]
            location = summary.location
            policy_label = f"export route-map {edge.export_policy}"
        else:
            location = edge.location
            policy_label = "no export policy"
        related = _redist_related(analysis, edge.src)
        if edge.import_location.file:
            related.append(
                Related(
                    edge.import_location,
                    f"received by {edge.dst[0]} here",
                )
            )
        leak = engine.and_(
            engine.and_(out.bdd, confined), universe.flag(ORIGIN_FLAG)
        )
        if leak != FALSE:
            findings.append(
                Finding(
                    "route-leak",
                    Severity.ERROR,
                    "dataflow",
                    edge.hostname,
                    f"redistributed internal route in private address "
                    f"space can leak to eBGP peer {edge.dst[0]} "
                    f"({policy_label})" + _witness(analysis, leak),
                    location,
                    tuple(related),
                )
            )
        # no-export is checked on the export-stage output, before the
        # (widened) eBGP community strip: advertising at all is the bug.
        exported = stages[0].output if stages else out
        tagged = engine.and_(exported.bdd, no_export)
        if tagged != FALSE:
            findings.append(
                Finding(
                    "route-leak",
                    Severity.ERROR,
                    "dataflow",
                    edge.hostname,
                    f"route carrying a no-export community is advertised "
                    f"to eBGP peer {edge.dst[0]} ({policy_label})"
                    + _witness(analysis, tagged),
                    location,
                    tuple(related),
                )
            )
    return findings


def _strongly_connected(
    nodes: Sequence[NodeId], edge_pairs: Sequence[Tuple[NodeId, NodeId]]
) -> Dict[NodeId, int]:
    """Iterative Tarjan: node -> SCC id."""
    adjacency: Dict[NodeId, List[NodeId]] = {node: [] for node in nodes}
    for src, dst in edge_pairs:
        adjacency[src].append(dst)
    index_of: Dict[NodeId, int] = {}
    low: Dict[NodeId, int] = {}
    on_stack: Set[NodeId] = set()
    stack: List[NodeId] = []
    component: Dict[NodeId, int] = {}
    counter = [0]
    components = [0]
    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[NodeId, int]] = [(root, 0)]
        while work:
            node, child = work.pop()
            if child == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = adjacency[node]
            while child < len(successors):
                nxt = successors[child]
                child += 1
                if nxt not in index_of:
                    work.append((node, child))
                    work.append((nxt, 0))
                    recurse = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if recurse:
                continue
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components[0]
                    if member == node:
                        break
                components[0] += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return component


def _cycle_edges(
    analysis: DataflowAnalysis,
    start: NodeId,
    goal: NodeId,
    allowed: Set[NodeId],
) -> Optional[List[int]]:
    """Shortest edge path ``start -> goal`` inside one SCC."""
    if start == goal:
        return []
    frontier = [start]
    came_from: Dict[NodeId, Tuple[NodeId, int]] = {}
    seen = {start}
    while frontier:
        next_frontier: List[NodeId] = []
        for node in frontier:
            for edge_index in analysis.graph.out_edges.get(node, ()):
                dst = analysis.graph.edges[edge_index].dst
                if dst not in allowed or dst in seen:
                    continue
                seen.add(dst)
                came_from[dst] = (node, edge_index)
                if dst == goal:
                    path: List[int] = []
                    cursor = goal
                    while cursor != start:
                        cursor, via = came_from[cursor]
                        path.append(via)
                    path.reverse()
                    return path
                next_frontier.append(dst)
        frontier = next_frontier
    return None


@rule(
    "redistribution-loop",
    Severity.ERROR,
    "dataflow",
    "Mutual redistribution cycle that actually carries routes: a "
    "redistribute statement whose target domain can propagate routes "
    "back into its own source domain (protocol cycle through sessions, "
    "adjacencies and other redistributions).",
    scope="dataflow",
)
def redistribution_loop(snapshot: Snapshot) -> List[Finding]:
    analysis = analysis_for(snapshot)
    universe = analysis.universe
    graph = analysis.graph
    component = _strongly_connected(graph.nodes, graph.edge_pairs())
    findings: List[Finding] = []
    for index, edge in enumerate(graph.edges):
        if edge.kind != "redistribute":
            continue
        if component[edge.src] != component[edge.dst]:
            continue
        scc_nodes = {
            node
            for node in graph.nodes
            if component[node] == component[edge.src]
        }
        back_path = _cycle_edges(analysis, edge.dst, edge.src, scc_nodes)
        if back_path is None:
            continue
        cycle = [index] + back_path
        # Push the source domain's fixpoint value once around the cycle:
        # a non-empty result means routes genuinely circulate, not just
        # that the cycle exists structurally.
        value = analysis.states[edge.src]
        for step in cycle:
            value, _ = apply_edge(universe, graph, graph.edges[step], value)
            if value.is_bottom():
                break
        if value.is_bottom():
            continue
        assert edge.redist is not None
        related = tuple(
            Related(
                graph.edges[step].location,
                f"cycle continues: {graph.edges[step].describe()}",
            )
            for step in cycle[1:]
        )
        findings.append(
            Finding(
                "redistribution-loop",
                Severity.ERROR,
                "dataflow",
                edge.hostname,
                f"redistribute {edge.redist.source.value} into "
                f"{edge.dst[1]} on {edge.hostname} closes a "
                f"{len(cycle)}-edge redistribution cycle that carries "
                "routes back into its own source domain"
                + _witness(analysis, value.bdd),
                edge.location,
                related,
            )
        )
    return findings


def _is_identity_chain(
    summary: Optional[PolicySummary],
) -> bool:
    return summary is None or summary.is_identity()


@rule(
    "filter-gap",
    Severity.WARNING,
    "dataflow",
    "eBGP session direction with no effective route filtering anywhere "
    "along it: neither the sender's export policy nor the receiver's "
    "import policy constrains what is advertised.",
    scope="dataflow",
)
def filter_gap(snapshot: Snapshot) -> List[Finding]:
    analysis = analysis_for(snapshot)
    graph = analysis.graph
    unfiltered: Dict[str, List[int]] = {}
    for index, edge in enumerate(graph.edges):
        if edge.kind != "bgp-session" or not edge.is_ebgp:
            continue
        export_summary = graph.summary(edge.hostname, edge.export_policy)
        import_summary = graph.summary(edge.dst[0], edge.import_policy)
        if _is_identity_chain(export_summary) and _is_identity_chain(
            import_summary
        ):
            unfiltered.setdefault(edge.hostname, []).append(index)
    findings: List[Finding] = []
    for hostname in sorted(unfiltered):
        indices = unfiltered[hostname]
        first = graph.edges[indices[0]]
        peers = sorted({graph.edges[i].dst[0] for i in indices})
        related = tuple(
            Related(
                graph.edges[i].location,
                f"also unfiltered towards {graph.edges[i].dst[0]}",
            )
            for i in indices[1:]
        )
        findings.append(
            Finding(
                "filter-gap",
                Severity.WARNING,
                "dataflow",
                hostname,
                f"{len(indices)} eBGP session(s) from {hostname} "
                f"(peers: {', '.join(peers)}) advertise with no route "
                "filtering in either direction — everything in the BGP "
                "RIB is exported and accepted verbatim",
                first.location,
                related,
            )
        )
    return findings


def _edge_summaries(
    analysis: DataflowAnalysis, index: int
) -> List[PolicySummary]:
    edge = analysis.graph.edges[index]
    names: List[Tuple[str, Optional[str]]] = []
    if edge.kind == "redistribute":
        assert edge.redist is not None
        names.append((edge.hostname, edge.redist.route_map))
    elif edge.kind == "bgp-session":
        names.append((edge.hostname, edge.export_policy))
        names.append((edge.dst[0], edge.import_policy))
    summaries = []
    for hostname, name in names:
        summary = analysis.graph.summary(hostname, name)
        if summary is not None:
            summaries.append(summary)
    return summaries


def _downstream_matched(
    analysis: DataflowAnalysis,
) -> Dict[NodeId, FrozenSet[str]]:
    """For each node: every community some policy on an edge reachable
    *from* that node matches on."""
    edge_matched: List[FrozenSet[str]] = []
    for index in range(len(analysis.graph.edges)):
        members: Set[str] = set()
        for summary in _edge_summaries(analysis, index):
            for clause in summary.clauses:
                members.update(clause.matched_communities)
        edge_matched.append(frozenset(members))
    result: Dict[NodeId, FrozenSet[str]] = {}
    for node in analysis.graph.nodes:
        seen = {node}
        frontier = [node]
        matched: Set[str] = set()
        while frontier:
            current = frontier.pop()
            for edge_index in analysis.graph.out_edges.get(current, ()):
                matched |= edge_matched[edge_index]
                dst = analysis.graph.edges[edge_index].dst
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        result[node] = frozenset(matched)
    return result


@rule(
    "community-dataflow",
    Severity.WARNING,
    "dataflow",
    "Community plumbing that cannot work: a community set on routes that "
    "no downstream policy ever matches, or a community-list match on an "
    "edge where no arriving route can carry any of its members.",
    scope="dataflow",
)
def community_dataflow(snapshot: Snapshot) -> List[Finding]:
    analysis = analysis_for(snapshot)
    universe = analysis.universe
    engine = universe.engine
    graph = analysis.graph
    downstream = _downstream_matched(analysis)
    well_known = set(NO_EXPORT_COMMUNITIES)

    # key -> (feasible anywhere, consumed anywhere, sample finding args)
    set_candidates: Dict[Tuple[str, str, int, str], Tuple[bool, Location]] = {}
    set_consumed: Set[Tuple[str, str, int, str]] = set()
    match_candidates: Dict[Tuple[str, str, int, str], Location] = {}
    match_carried: Set[Tuple[str, str, int, str]] = set()

    for index, edge in enumerate(graph.edges):
        stages = analysis.edge_stages(index)
        for stage_pos, stage in enumerate(stages):
            if stage.policy is None:
                continue
            summary = graph.summary(stage.hostname, stage.policy)
            if summary is None or not summary.defined:
                continue
            later_matched: Set[str] = set(downstream[edge.dst])
            for later in stages[stage_pos + 1 :]:
                later_summary = graph.summary(later.hostname, later.policy)
                if later_summary is not None:
                    for clause in later_summary.clauses:
                        later_matched.update(clause.matched_communities)
            residual = stage.input.bdd
            for clause in summary.clauses:
                if residual == FALSE:
                    break
                feasible = engine.and_(residual, clause.guard) != FALSE
                key_base = (stage.hostname, summary.name, clause.seq)
                # (a) set-but-never-matched
                if clause.action is Action.PERMIT:
                    for _kind, members in clause.community_ops:
                        for member in members:
                            if member in well_known:
                                continue
                            key = key_base + (member,)
                            if member in later_matched:
                                set_consumed.add(key)
                            if feasible:
                                previous = set_candidates.get(key)
                                set_candidates[key] = (
                                    True,
                                    previous[1]
                                    if previous
                                    else clause.location,
                                )
                # (b) match-never-carried
                if residual != FALSE:
                    for list_name in clause.matched_lists:
                        key = key_base + (list_name,)
                        members = [
                            c
                            for c in clause.matched_communities
                            if universe.has_community(c)
                        ]
                        carriers = engine.and_(
                            residual,
                            engine.or_all(
                                [universe.community(c) for c in members]
                            )
                            if members
                            else FALSE,
                        )
                        if carriers != FALSE:
                            match_carried.add(key)
                        else:
                            match_candidates.setdefault(key, clause.location)
                if clause.is_exact(
                    _protocol_resolution(
                        clause.protocol_values, stage.source_protocols
                    )
                    == "pass"
                ):
                    residual = engine.diff(residual, clause.guard)

    findings: List[Finding] = []
    for key in sorted(set_candidates):
        if key in set_consumed:
            continue
        feasible, location = set_candidates[key]
        if not feasible:
            continue
        hostname, map_name, seq, member = key
        findings.append(
            Finding(
                "community-dataflow",
                Severity.WARNING,
                "dataflow",
                hostname,
                f"route-map {map_name} clause {seq} sets community "
                f"{member}, but no policy downstream of any edge using "
                "this map ever matches it — the community is dead "
                "signalling",
                location,
            )
        )
    for key in sorted(match_candidates):
        if key in match_carried:
            continue
        hostname, map_name, seq, list_name = key
        findings.append(
            Finding(
                "community-dataflow",
                Severity.WARNING,
                "dataflow",
                hostname,
                f"route-map {map_name} clause {seq} matches "
                f"community-list {list_name}, but no route the control "
                "plane can deliver to this policy carries any of its "
                "communities — the clause can never fire",
                match_candidates[key],
            )
        )
    return findings


@rule(
    "unreachable-policy-path",
    Severity.WARNING,
    "dataflow",
    "Route-map clause that is satisfiable in principle but dead in this "
    "network: no route the propagation fixpoint can deliver to any edge "
    "using the policy ever reaches the clause.",
    scope="dataflow",
)
def unreachable_policy_path(snapshot: Snapshot) -> List[Finding]:
    analysis = analysis_for(snapshot)
    universe = analysis.universe
    engine = universe.engine
    graph = analysis.graph

    # Join the abstract inputs of every stage that applies each policy.
    inputs: Dict[Tuple[str, str], AbstractRoutes] = {}
    protocols: Dict[Tuple[str, str], Set[str]] = {}
    for index in range(len(graph.edges)):
        for stage in analysis.edge_stages(index):
            if stage.policy is None:
                continue
            key = (stage.hostname, stage.policy)
            current = inputs.get(key)
            inputs[key] = (
                stage.input
                if current is None
                else current.join(stage.input, universe)
            )
            protocols.setdefault(key, set()).update(stage.source_protocols)

    findings: List[Finding] = []
    for key in sorted(inputs):
        hostname, map_name = key
        summary = graph.summary(hostname, map_name)
        if summary is None or not summary.defined:
            continue
        delivered = inputs[key]
        source_protocols = tuple(sorted(protocols.get(key, set())))
        intrinsic_residual = TRUE
        dataflow_residual = delivered.bdd
        for clause in summary.clauses:
            if obs.active():
                obs.touch("route_map_clause", hostname, map_name, clause.seq)
            intrinsically_reachable = (
                engine.and_(intrinsic_residual, clause.guard) != FALSE
            )
            resolution = _protocol_resolution(
                clause.protocol_values, source_protocols
            )
            dataflow_reachable = (
                resolution != "fail"
                and (
                    clause.tag_eq is None
                    or delivered.tags is None
                    or clause.tag_eq in delivered.tags
                )
                and engine.and_(dataflow_residual, clause.guard) != FALSE
            )
            if intrinsically_reachable and not dataflow_reachable:
                findings.append(
                    Finding(
                        "unreachable-policy-path",
                        Severity.WARNING,
                        "dataflow",
                        hostname,
                        f"route-map {map_name} clause {clause.seq} is "
                        "satisfiable on its own, but no route the "
                        "control plane delivers to this policy ever "
                        "reaches it (dead in this network, not in "
                        "general)",
                        clause.location,
                    )
                )
            if clause.is_exact(False):
                intrinsic_residual = engine.diff(
                    intrinsic_residual, clause.guard
                )
            if clause.is_exact(resolution == "pass") and dataflow_reachable:
                dataflow_residual = engine.diff(
                    dataflow_residual, clause.guard
                )
    return findings
