"""Containment differential: abstract fixpoint vs simulated routes.

The soundness contract (DESIGN.md "Propagation-graph soundness") is
checkable: every route the concrete simulation places in a RIB domain
must be contained in that domain's abstract fixpoint set, and every BGP
candidate a receiver holds from a peer must be contained in the
corresponding session edge's abstract output. ``python -m repro.lint.dataflow``
runs this across the network registry (the ``dataflow-validate`` CI
job); any divergence is a transfer-function bug, never "the network's
fault"."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bdd.engine import FALSE
from repro.config.model import Protocol, Snapshot
from repro.lint.dataflow.engine import DataflowAnalysis, analyze
from repro.lint.dataflow.graph import (
    DOMAIN_BGP,
    DOMAIN_CONNECTED,
    DOMAIN_OSPF,
    DOMAIN_STATIC,
)

_PROTOCOL_DOMAIN: Dict[Protocol, str] = {
    Protocol.CONNECTED: DOMAIN_CONNECTED,
    Protocol.STATIC: DOMAIN_STATIC,
    Protocol.OSPF: DOMAIN_OSPF,
    Protocol.OSPF_IA: DOMAIN_OSPF,
    Protocol.OSPF_E2: DOMAIN_OSPF,
    Protocol.BGP: DOMAIN_BGP,
    Protocol.IBGP: DOMAIN_BGP,
}


def validate_containment(
    snapshot: Snapshot, analysis: Optional[DataflowAnalysis] = None
) -> List[str]:
    """Simulate the dataplane and check both containment obligations.

    Returns human-readable divergence descriptions (empty = sound on
    this snapshot).
    """
    from repro.routing.engine import compute_dataplane

    if analysis is None:
        analysis = analyze(snapshot)
    universe = analysis.universe
    engine = universe.engine
    dataplane = compute_dataplane(snapshot)
    divergences: List[str] = []

    # 1. Node-level: every simulated RIB route is in its domain's set.
    for hostname in sorted(dataplane.nodes):
        state = dataplane.nodes[hostname]
        for route in state.main_rib.routes():
            domain = _PROTOCOL_DOMAIN.get(route.protocol)
            if domain is None:
                continue  # aggregates etc.: domains we do not model
            node = (hostname, domain)
            abstract = analysis.states.get(node)
            if abstract is None:
                divergences.append(
                    f"{hostname}: simulated {route.protocol.value} route "
                    f"{route.prefix} but the graph has no {domain} domain"
                )
                continue
            atom = universe.prefix_atom(route.prefix)
            if engine.and_(atom, abstract.bdd) == FALSE:
                divergences.append(
                    f"{hostname}/{domain}: simulated route {route.prefix} "
                    f"({route.protocol.value}) is outside the abstract "
                    "fixpoint set"
                )

    # 2. Edge-level: every BGP candidate held from a peer is in the
    #    delivering session edge's abstract output.
    ip_owner: Dict[object, str] = {}
    for hostname in snapshot.hostnames():
        for _name, address, _length in snapshot.device(
            hostname
        ).interface_ips():
            ip_owner[address] = hostname
    edge_outputs_by_pair: Dict[tuple, int] = {}
    for index, edge in enumerate(analysis.graph.edges):
        if edge.kind != "bgp-session":
            continue
        pair = (edge.src[0], edge.dst[0])
        bdd = analysis.edge_outputs[index].bdd
        if pair in edge_outputs_by_pair:
            bdd = engine.or_(edge_outputs_by_pair[pair], bdd)
        edge_outputs_by_pair[pair] = bdd
    for hostname in sorted(dataplane.nodes):
        rib = dataplane.nodes[hostname].bgp_rib
        if rib is None:
            continue
        for prefix, peers in rib._candidates.items():
            for peer_ip, _route in peers.items():
                if peer_ip is None:
                    continue  # locally originated
                sender = ip_owner.get(peer_ip)
                if sender is None:
                    continue
                combined = edge_outputs_by_pair.get((sender, hostname))
                if combined is None:
                    divergences.append(
                        f"{hostname}: holds BGP candidate {prefix} from "
                        f"{sender} but the graph has no session edge "
                        f"{sender} -> {hostname}"
                    )
                    continue
                atom = universe.prefix_atom(prefix)
                if engine.and_(atom, combined) == FALSE:
                    divergences.append(
                        f"{hostname}: BGP candidate {prefix} received "
                        f"from {sender} is outside the session edge's "
                        "abstract output"
                    )
    return divergences
