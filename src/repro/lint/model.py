"""Core data model for the lint framework.

Lesson 5: the most-used Batfish analyses are the simple, local ones —
undefined references, unreachable ACL lines, incompatible BGP sessions —
because their findings localize to a file and line the operator can fix
immediately. Everything in this package therefore carries *provenance*:
a :class:`Finding` points at the configuration line that produced it,
plus related locations (witnesses) explaining *why*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


class Severity(enum.IntEnum):
    """Ordered so that comparisons implement ``--fail-on`` thresholds."""

    NOTE = 1
    WARNING = 2
    ERROR = 3

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.label for s in cls)}"
            )


@dataclass(frozen=True)
class Location:
    """A (file, line) provenance pointer. ``line == 0`` means the
    structure has no recorded source position (synthetic or vendor
    structures without line tracking)."""

    file: str = ""
    line: int = 0

    def __str__(self) -> str:
        if not self.file:
            return "<unknown>"
        return f"{self.file}:{self.line}" if self.line else self.file

    def to_json(self) -> Dict:
        return {"file": self.file, "line": self.line}


@dataclass(frozen=True)
class Related:
    """A witness location: a second configuration line that explains the
    finding (e.g. the earlier ACL line shadowing this one)."""

    location: Location
    message: str

    def to_json(self) -> Dict:
        return {"location": self.location.to_json(), "message": self.message}


@dataclass(frozen=True)
class Finding:
    """One lint result, with provenance and optional witnesses."""

    rule_id: str
    severity: Severity
    category: str
    hostname: str
    message: str
    location: Location = Location()
    related: Tuple[Related, ...] = ()
    suppressed: bool = False
    #: Why the finding is suppressed ("" when not suppressed), e.g.
    #: "lint-disable at r1.cfg:3" or "lintconfig suppression".
    suppression: str = ""

    def to_json(self) -> Dict:
        row = {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "category": self.category,
            "node": self.hostname,
            "message": self.message,
            "location": self.location.to_json(),
        }
        if self.related:
            row["related"] = [r.to_json() for r in self.related]
        if self.suppressed:
            row["suppressed"] = True
            row["suppression"] = self.suppression
        return row


_CONFIG_KEYS = {"rules", "disable", "severity", "suppress"}


@dataclass
class LintConfig:
    """Per-run rule configuration (the ``lintconfig`` dict of the API).

    * ``rules`` — when non-None, only these rule ids run.
    * ``disable`` — rule ids excluded from the run.
    * ``severity`` — per-rule severity overrides.
    * ``suppress`` — (rule-or-*, hostname-or-*) pairs; matching findings
      are kept but marked suppressed (SARIF ``suppressions``).
    """

    rules: Optional[Set[str]] = None
    disable: Set[str] = field(default_factory=set)
    severity: Dict[str, Severity] = field(default_factory=dict)
    suppress: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def from_dict(cls, raw: Optional[Dict]) -> "LintConfig":
        if not raw:
            return cls()
        unknown = set(raw) - _CONFIG_KEYS
        if unknown:
            raise ValueError(
                f"unknown lintconfig keys: {sorted(unknown)}; "
                f"expected {sorted(_CONFIG_KEYS)}"
            )
        rules = raw.get("rules")
        severity = {
            rule: Severity.from_name(level)
            for rule, level in (raw.get("severity") or {}).items()
        }
        suppress: List[Tuple[str, str]] = []
        for entry in raw.get("suppress") or []:
            if isinstance(entry, str):
                suppress.append((entry, "*"))
            else:
                suppress.append(
                    (entry.get("rule", "*"), entry.get("node", "*"))
                )
        return cls(
            rules=set(rules) if rules is not None else None,
            disable=set(raw.get("disable") or ()),
            severity=severity,
            suppress=suppress,
        )

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        return self.rules is None or rule_id in self.rules

    def effective_severity(self, rule_id: str, default: Severity) -> Severity:
        return self.severity.get(rule_id, default)

    def suppresses(self, finding: Finding) -> bool:
        for rule, node in self.suppress:
            if rule in ("*", finding.rule_id) and node in ("*", finding.hostname):
                return True
        return False


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order: severity first, then rule,
    then location."""
    return sorted(
        findings,
        key=lambda f: (
            -int(f.severity),
            f.rule_id,
            f.hostname,
            f.location.file,
            f.location.line,
            f.message,
        ),
    )
