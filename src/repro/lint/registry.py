"""Rule registry: rules declare themselves with the :func:`rule`
decorator and the runner discovers them here.

Keeping registration declarative means adding a check is one function in
one module — the property that let Batfish accumulate dozens of
questions without touching its core (Lesson 5's "simple checks get used
the most" argues for making simple checks cheap to add).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.config.model import Snapshot
from repro.lint.model import Finding, Severity

RuleFn = Callable[[Snapshot], List[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: metadata plus the check function."""

    rule_id: str
    severity: Severity
    category: str
    description: str
    fn: RuleFn
    #: ``"device"`` when the rule inspects one device at a time (its
    #: findings for a device depend only on that device's configuration)
    #: — the runner can then memoize per device and re-lint only devices
    #: that changed. ``"snapshot"`` (the default) for rules that relate
    #: multiple devices (duplicate IPs, session compatibility, ...).
    #: ``"dataflow"`` for rules that read the propagation-graph fixpoint
    #: (:mod:`repro.lint.dataflow`) — the runner computes the fixpoint
    #: once before the pool forks and delta runs warm-start it instead
    #: of re-iterating the whole graph.
    scope: str = "snapshot"

    def run(self, snapshot: Snapshot) -> List[Finding]:
        return self.fn(snapshot)


_REGISTRY: Dict[str, Rule] = {}


def rule(
    rule_id: str,
    severity: Severity,
    category: str,
    description: str,
    scope: str = "snapshot",
) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function. The function receives a snapshot and
    returns findings; it should build each finding through the
    :func:`finding` helper so rule metadata stays consistent. Rules
    whose findings are per-device functions of that device alone should
    declare ``scope="device"`` to opt into per-device memoization."""

    if scope not in ("snapshot", "device", "dataflow"):
        raise ValueError(f"unknown lint rule scope: {scope!r}")

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(
            rule_id, severity, category, description, fn, scope
        )
        return fn

    return decorate


def _load_builtin_rules() -> None:
    # Importing the rule modules triggers their @rule decorators.
    from repro.lint import rules_cross  # noqa: F401
    from repro.lint import rules_hygiene  # noqa: F401
    from repro.lint import rules_semantic  # noqa: F401
    from repro.lint.dataflow import rules  # noqa: F401


def all_rules() -> List[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    _load_builtin_rules()
    return _REGISTRY.get(rule_id)
