"""A small BDD encoding of *route* space for policy reachability.

The packet-space encoder (`repro.hdr`) models packets; route maps match
on route attributes instead — the announced prefix (address + length)
and the community set. This module builds a per-device BDD over:

* 32 variables for the prefix network address (MSB first),
* 6 variables for the prefix length (0..32 in a 6-bit field),
* one variable per distinct community string named by the device's
  community lists ("does the route carry community C").

That is enough to encode prefix-list and community-list matches
*exactly*, mirroring the concrete first-match semantics of
``PrefixList.permits`` / ``CommunityList.permits``. Matches the engine
cannot encode (as-path regexes, tag/metric/protocol) are treated as
"unknown": the clause's space becomes an over-approximation, which
keeps unreachability findings sound — a clause is only flagged when
even the over-approximation has no route left to match.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.config.model import (
    Action,
    Device,
    MatchKind,
    PrefixList,
    PrefixListLine,
    RouteMapClause,
)

ADDR_BITS = 32
LEN_BITS = 6  # values 0..63; only 0..32 are produced by parsers


class RouteSpaceEncoder:
    """Per-device symbolic encoder for route-map match spaces."""

    def __init__(self, device: Device):
        self.device = device
        communities = sorted(
            {
                community
                for clist in device.community_lists.values()
                for community in clist.communities
            }
        )
        self._community_var: Dict[str, int] = {
            community: ADDR_BITS + LEN_BITS + index
            for index, community in enumerate(communities)
        }
        self.engine = BddEngine(ADDR_BITS + LEN_BITS + len(communities))

    # -- field primitives --------------------------------------------------

    def _length_eq(self, value: int) -> int:
        engine = self.engine
        bdd = TRUE
        for bit in range(LEN_BITS):
            level = ADDR_BITS + bit
            if (value >> (LEN_BITS - 1 - bit)) & 1:
                bdd = engine.and_(bdd, engine.var(level))
            else:
                bdd = engine.and_(bdd, engine.nvar(level))
        return bdd

    def length_in_range(self, low: int, high: int) -> int:
        if low > high:
            return FALSE
        return self.engine.or_all(
            [self._length_eq(value) for value in range(low, high + 1)]
        )

    def address_under(self, prefix) -> int:
        """Routes whose network address lies inside ``prefix`` (the
        containment half of ``Prefix.contains_prefix``)."""
        engine = self.engine
        bdd = TRUE
        network = prefix.network
        for bit in range(prefix.length):
            if network.bit(bit):
                bdd = engine.and_(bdd, engine.var(bit))
            else:
                bdd = engine.and_(bdd, engine.nvar(bit))
        return bdd

    def community(self, name: str) -> int:
        level = self._community_var.get(name)
        if level is None:
            return FALSE
        return self.engine.var(level)

    # -- structure spaces --------------------------------------------------

    def prefix_list_line_space(self, line: PrefixListLine) -> int:
        """Exact encoding of ``PrefixListLine.matches``."""
        if line.ge is None and line.le is None:
            band = self._length_eq(line.prefix.length)
        else:
            low = line.ge if line.ge is not None else line.prefix.length
            high = line.le if line.le is not None else 32
            # contains_prefix additionally requires the matched prefix to
            # be at least as long as the list entry's.
            low = max(low, line.prefix.length)
            band = self.length_in_range(low, high)
        return self.engine.and_(self.address_under(line.prefix), band)

    def prefix_list_space(self, plist: PrefixList) -> int:
        """First-match permit space with implicit deny."""
        engine = self.engine
        remaining = TRUE
        permitted = FALSE
        for line in plist.lines:
            space = self.prefix_list_line_space(line)
            effective = engine.and_(space, remaining)
            if line.action is Action.PERMIT:
                permitted = engine.or_(permitted, effective)
            remaining = engine.diff(remaining, space)
        return permitted

    def community_list_space(self, name: str) -> int:
        clist = self.device.community_lists.get(name)
        if clist is None:
            return FALSE
        return self.engine.or_all(
            [self.community(c) for c in clist.communities]
        )

    def clause_space(self, clause: RouteMapClause) -> Tuple[int, bool]:
        """The set of routes a clause's match conditions accept.

        Returns ``(space, exact)``. When ``exact`` is False the space is
        an over-approximation (some match kind was not encodable), safe
        for proving *unreachability* but not for subtracting from the
        residual of later clauses.
        """
        engine = self.engine
        space = TRUE
        exact = True
        for match in clause.matches:
            if match.kind is MatchKind.PREFIX_LIST:
                plist = self.device.prefix_lists.get(match.value)
                if plist is None:
                    # Mirrors DEFAULT_SEMANTICS.undefined_prefix_list_
                    # fails_match: the match never holds.
                    space = FALSE
                else:
                    space = engine.and_(space, self.prefix_list_space(plist))
            elif match.kind is MatchKind.COMMUNITY:
                space = engine.and_(
                    space, self.community_list_space(match.value)
                )
            else:
                # as-path regexes, tag/metric/protocol: not encoded.
                exact = False
        return space, exact

    def route_map_clause_spaces(
        self, clauses: List[RouteMapClause]
    ) -> List[Tuple[RouteMapClause, int, bool]]:
        return [
            (clause, *self.clause_space(clause)) for clause in clauses
        ]
