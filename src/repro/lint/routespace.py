"""A small BDD encoding of *route* space for policy reachability.

The packet-space encoder (`repro.hdr`) models packets; route maps match
on route attributes instead — the announced prefix (address + length)
and the community set. This module builds a BDD over:

* 32 variables for the prefix network address (MSB first),
* 6 variables for the prefix length (0..32 in a 6-bit field),
* one variable per distinct community string,
* optional extra flag variables (the dataflow engine uses one to track
  "this route entered BGP through redistribution").

That is enough to encode prefix-list and community-list matches
*exactly*, mirroring the concrete first-match semantics of
``PrefixList.permits`` / ``CommunityList.permits``. Matches the engine
cannot encode (as-path regexes, tag/metric/protocol) are treated as
"unknown": the clause's space becomes an over-approximation, which
keeps unreachability findings sound — a clause is only flagged when
even the over-approximation has no route left to match.

Two layers:

* :class:`RouteSpaceUniverse` — the shared variable order (address +
  length + a fixed community alphabet). One universe per device for the
  single-device clause-reachability rules; one snapshot-wide universe
  for the cross-device dataflow fixpoint, so sets built on different
  devices combine.
* :class:`RouteSpace` — a public, immutable set-of-routes value with
  ``union`` / ``intersect`` / ``complement``; the dataflow lattice's
  carrier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.config.model import (
    Action,
    Device,
    MatchKind,
    PrefixList,
    PrefixListLine,
    RouteMapClause,
)
from repro.hdr.ip import Prefix

ADDR_BITS = 32
LEN_BITS = 6  # values 0..63; only 0..32 are produced by parsers


class RouteSpaceUniverse:
    """The variable order shared by every :class:`RouteSpace` built
    against it: 32 address bits, 6 length bits, then one variable per
    community in a fixed (sorted) alphabet, then any extra flag
    variables. Sets from two universes never mix; the dataflow engine
    builds one snapshot-wide universe so sets built on different
    devices can be joined.
    """

    def __init__(
        self,
        communities: Sequence[str] = (),
        flags: Sequence[str] = (),
    ):
        self.communities: Tuple[str, ...] = tuple(sorted(set(communities)))
        self.flags: Tuple[str, ...] = tuple(flags)
        self._community_var: Dict[str, int] = {
            community: ADDR_BITS + LEN_BITS + index
            for index, community in enumerate(self.communities)
        }
        base = ADDR_BITS + LEN_BITS + len(self.communities)
        self._flag_var: Dict[str, int] = {
            name: base + index for index, name in enumerate(self.flags)
        }
        self.engine = BddEngine(base + len(self.flags))

    def fingerprint(self) -> str:
        """Content address of the variable order. Two universes with the
        same fingerprint produce comparable canonical BDDs."""
        return self.fingerprint_of(self.communities, self.flags)

    @staticmethod
    def fingerprint_of(
        communities: Sequence[str], flags: Sequence[str]
    ) -> str:
        """The fingerprint a universe built from these inputs would
        have, without building one (communities are normalized the same
        way the constructor does)."""
        digest = hashlib.sha256()
        for community in sorted(set(communities)):
            digest.update(community.encode())
            digest.update(b"\x00")
        digest.update(b"\x01")
        for flag in flags:
            digest.update(flag.encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- field primitives --------------------------------------------------

    def length_eq(self, value: int) -> int:
        engine = self.engine
        bdd = TRUE
        for bit in range(LEN_BITS):
            level = ADDR_BITS + bit
            if (value >> (LEN_BITS - 1 - bit)) & 1:
                bdd = engine.and_(bdd, engine.var(level))
            else:
                bdd = engine.and_(bdd, engine.nvar(level))
        return bdd

    def length_in_range(self, low: int, high: int) -> int:
        if low > high:
            return FALSE
        return self.engine.or_all(
            [self.length_eq(value) for value in range(low, high + 1)]
        )

    def address_under(self, prefix: Prefix) -> int:
        """Routes whose network address lies inside ``prefix`` (the
        containment half of ``Prefix.contains_prefix``)."""
        engine = self.engine
        bdd = TRUE
        network = prefix.network
        for bit in range(prefix.length):
            if network.bit(bit):
                bdd = engine.and_(bdd, engine.var(bit))
            else:
                bdd = engine.and_(bdd, engine.nvar(bit))
        return bdd

    def prefix_atom(self, prefix: Prefix) -> int:
        """The exact single point for one announced prefix: all 32
        address bits pinned to the (masked) network address plus the
        exact length. Community/flag variables are left free — intersect
        with :meth:`without_communities` to pin them all to absent."""
        engine = self.engine
        bdd = self.length_eq(prefix.length)
        network = prefix.network
        for bit in range(ADDR_BITS):
            if network.bit(bit):
                bdd = engine.and_(bdd, engine.var(bit))
            else:
                bdd = engine.and_(bdd, engine.nvar(bit))
        return bdd

    def community(self, name: str) -> int:
        level = self._community_var.get(name)
        if level is None:
            return FALSE
        return self.engine.var(level)

    def has_community(self, name: str) -> bool:
        return name in self._community_var

    def flag(self, name: str) -> int:
        return self.engine.var(self._flag_var[name])

    def community_levels(self) -> List[int]:
        return [self._community_var[c] for c in self.communities]

    def community_level(self, name: str) -> Optional[int]:
        return self._community_var.get(name)

    def flag_level(self, name: str) -> int:
        return self._flag_var[name]

    def flag_levels(self) -> List[int]:
        return [self._flag_var[f] for f in self.flags]

    def without_communities(self) -> int:
        """The constraint "carries no community and no flag" — the state
        of a freshly originated (connected/static/network-statement)
        route."""
        engine = self.engine
        bdd = TRUE
        for level in self._community_var.values():
            bdd = engine.and_(bdd, engine.nvar(level))
        for level in self._flag_var.values():
            bdd = engine.and_(bdd, engine.nvar(level))
        return bdd

    def space(self, bdd: int) -> "RouteSpace":
        return RouteSpace(self, bdd)

    def empty(self) -> "RouteSpace":
        return RouteSpace(self, FALSE)

    def full(self) -> "RouteSpace":
        return RouteSpace(self, TRUE)


@dataclass(frozen=True)
class RouteSpace:
    """A set of abstract routes (prefix + community/flag membership)
    over a :class:`RouteSpaceUniverse`.

    **Over-approximation contract.** Spaces produced from route-map
    clauses are *supersets* of the concrete match sets whenever a clause
    contains a match the encoding cannot express (as-path regex, tag,
    metric, protocol): inexact constraints widen to ⊤ — they are never
    used to *shrink* a set. Consequently:

    * ``union`` and ``intersect`` of over-approximations are again
      over-approximations, so emptiness of any combination soundly
      proves concrete emptiness (the unreachable-clause argument);
    * ``complement`` of an over-approximation is an
      *under*-approximation — never complement an inexact space and
      then claim a route is outside the original set. Complement is
      exact only for spaces built purely from encodable constraints
      (prefix lists, community lists, atoms).
    """

    universe: RouteSpaceUniverse
    bdd: int

    def _check(self, other: "RouteSpace") -> None:
        if other.universe is not self.universe:
            raise ValueError(
                "RouteSpace operands belong to different universes"
            )

    def union(self, other: "RouteSpace") -> "RouteSpace":
        self._check(other)
        return RouteSpace(
            self.universe, self.universe.engine.or_(self.bdd, other.bdd)
        )

    def intersect(self, other: "RouteSpace") -> "RouteSpace":
        self._check(other)
        return RouteSpace(
            self.universe, self.universe.engine.and_(self.bdd, other.bdd)
        )

    def complement(self) -> "RouteSpace":
        """Set complement over the full universe. See the class
        docstring: only meaningful for exactly-encoded spaces."""
        return RouteSpace(
            self.universe, self.universe.engine.not_(self.bdd)
        )

    def difference(self, other: "RouteSpace") -> "RouteSpace":
        self._check(other)
        return RouteSpace(
            self.universe, self.universe.engine.diff(self.bdd, other.bdd)
        )

    def is_empty(self) -> bool:
        return self.bdd == FALSE

    def contains_prefix(self, prefix: Prefix) -> bool:
        """True when some route announcing exactly ``prefix`` (any
        community/flag membership) is in the set."""
        atom = self.universe.prefix_atom(prefix)
        return self.universe.engine.and_(atom, self.bdd) != FALSE

    def example(
        self,
    ) -> Optional[Tuple[Prefix, FrozenSet[str]]]:
        """One witness route from the set: its prefix and the
        communities it carries (free variables default to absent)."""
        assignment = self.universe.engine.any_sat(self.bdd)
        if assignment is None:
            return None
        address = 0
        for bit in range(ADDR_BITS):
            address = (address << 1) | assignment.get(bit, 0)
        length = 0
        for bit in range(LEN_BITS):
            length = (length << 1) | assignment.get(ADDR_BITS + bit, 0)
        length = min(length, 32)
        carried = frozenset(
            community
            for community, level in self.universe._community_var.items()
            if assignment.get(level, 0)
        )
        return Prefix(address, length), carried

    def canonical(self) -> object:
        """Engine-independent structural form (see
        :meth:`repro.bdd.engine.BddEngine.canonical`); equal across
        engines sharing the universe fingerprint iff the sets match."""
        return self.universe.engine.canonical(self.bdd)


class RouteSpaceEncoder:
    """Per-device symbolic encoder for route-map match spaces.

    Builds a private single-device universe by default; pass a shared
    ``universe`` (the dataflow engine's snapshot-wide one) to make the
    resulting spaces combinable across devices.
    """

    def __init__(
        self, device: Device, universe: Optional[RouteSpaceUniverse] = None
    ):
        self.device = device
        if universe is None:
            universe = RouteSpaceUniverse(
                communities={
                    community
                    for clist in device.community_lists.values()
                    for community in clist.communities
                }
            )
        self.universe = universe
        self.engine = universe.engine

    # -- field primitives (delegated to the universe) ----------------------

    def _length_eq(self, value: int) -> int:
        return self.universe.length_eq(value)

    def length_in_range(self, low: int, high: int) -> int:
        return self.universe.length_in_range(low, high)

    def address_under(self, prefix: Prefix) -> int:
        return self.universe.address_under(prefix)

    def community(self, name: str) -> int:
        return self.universe.community(name)

    # -- structure spaces --------------------------------------------------

    def prefix_list_line_space(self, line: PrefixListLine) -> int:
        """Exact encoding of ``PrefixListLine.matches``."""
        if line.ge is None and line.le is None:
            band = self._length_eq(line.prefix.length)
        else:
            low = line.ge if line.ge is not None else line.prefix.length
            high = line.le if line.le is not None else 32
            # contains_prefix additionally requires the matched prefix to
            # be at least as long as the list entry's.
            low = max(low, line.prefix.length)
            band = self.length_in_range(low, high)
        return self.engine.and_(self.address_under(line.prefix), band)

    def prefix_list_space(self, plist: PrefixList) -> int:
        """First-match permit space with implicit deny."""
        engine = self.engine
        remaining = TRUE
        permitted = FALSE
        for line in plist.lines:
            space = self.prefix_list_line_space(line)
            effective = engine.and_(space, remaining)
            if line.action is Action.PERMIT:
                permitted = engine.or_(permitted, effective)
            remaining = engine.diff(remaining, space)
        return permitted

    def community_list_space(self, name: str) -> int:
        clist = self.device.community_lists.get(name)
        if clist is None:
            return FALSE
        return self.engine.or_all(
            [self.community(c) for c in clist.communities]
        )

    def clause_space(self, clause: RouteMapClause) -> Tuple[int, bool]:
        """The set of routes a clause's match conditions accept.

        Returns ``(space, exact)``. When ``exact`` is False the space is
        an over-approximation (some match kind was not encodable), safe
        for proving *unreachability* but not for subtracting from the
        residual of later clauses.
        """
        engine = self.engine
        space = TRUE
        exact = True
        for match in clause.matches:
            if match.kind is MatchKind.PREFIX_LIST:
                plist = self.device.prefix_lists.get(match.value)
                if plist is None:
                    # Mirrors DEFAULT_SEMANTICS.undefined_prefix_list_
                    # fails_match: the match never holds.
                    space = FALSE
                else:
                    space = engine.and_(space, self.prefix_list_space(plist))
            elif match.kind is MatchKind.COMMUNITY:
                space = engine.and_(
                    space, self.community_list_space(match.value)
                )
            else:
                # as-path regexes, tag/metric/protocol: not encoded.
                exact = False
        return space, exact

    def route_map_clause_spaces(
        self, clauses: List[RouteMapClause]
    ) -> List[Tuple[RouteMapClause, int, bool]]:
        return [
            (clause, *self.clause_space(clause)) for clause in clauses
        ]
