"""Cross-device lint rules.

These require two devices' configurations at once — the class of check
only a whole-snapshot tool can do (and where Batfish found most of its
early adoption: half-open BGP peerings and mismatched adjacency
parameters that no per-device linter can see).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.config.model import Device, Interface, Snapshot
from repro.lint.model import Finding, Location, Related, Severity
from repro.lint.registry import rule
from repro.routing.bgp import compute_bgp_sessions
from repro.routing.topology import Layer3Edge, build_layer3_topology


def _neighbor_location(device: Device, peer_ip) -> Location:
    if device.bgp is None:
        return Location()
    neighbor = device.bgp.neighbors.get(peer_ip)
    if neighbor is None:
        return Location()
    return Location(neighbor.source_file, neighbor.source_line)


def _iface_location(iface: Interface) -> Location:
    return Location(iface.source_file, iface.source_line)


@rule(
    "bgp-session-compat",
    Severity.ERROR,
    "cross-device",
    "BGP neighbor statements that cannot form a working session: unknown "
    "peer address, missing reciprocal configuration, AS number mismatch, "
    "or one-sided update-source / ebgp-multihop settings.",
)
def bgp_session_compat(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    sessions, issues = compute_bgp_sessions(snapshot)
    for issue in issues:
        device = snapshot.device(issue.node)
        findings.append(
            Finding(
                "bgp-session-compat",
                Severity.ERROR,
                "cross-device",
                issue.node,
                f"BGP neighbor {issue.peer_ip}: {issue.issue}",
                _neighbor_location(device, issue.peer_ip),
            )
        )
    # Consistency checks on candidate sessions: the peering may come up,
    # but one-sided knobs are a classic latent failure (the session drops
    # the day the topology makes the asymmetry matter).
    seen_pairs: Set[Tuple] = set()
    for session in sessions:
        pair = tuple(
            sorted(
                [
                    (session.local_node, str(session.remote_ip)),
                    (session.remote_node, str(session.local_ip)),
                ]
            )
        )
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        local_device = snapshot.device(session.local_node)
        remote_device = snapshot.device(session.remote_node)
        local_nb = session.neighbor
        remote_nb = (
            remote_device.bgp.neighbors.get(session.local_ip)
            if remote_device.bgp
            else None
        )
        if remote_nb is None:
            continue
        if local_nb.ebgp_multihop != remote_nb.ebgp_multihop:
            with_it, without = (
                (session.local_node, session.remote_node)
                if local_nb.ebgp_multihop
                else (session.remote_node, session.local_node)
            )
            findings.append(
                Finding(
                    "bgp-session-compat",
                    Severity.ERROR,
                    "cross-device",
                    session.local_node,
                    f"BGP session with {session.remote_node}: "
                    f"ebgp-multihop is set on {with_it} but not on "
                    f"{without}",
                    _neighbor_location(local_device, session.remote_ip),
                    (
                        Related(
                            _neighbor_location(remote_device, session.local_ip),
                            f"{session.remote_node} neighbor statement",
                        ),
                    ),
                )
            )
        if local_nb.update_source:
            source_iface = local_device.interfaces.get(local_nb.update_source)
            if (
                source_iface is not None
                and source_iface.address is not None
                and source_iface.address != session.local_ip
            ):
                findings.append(
                    Finding(
                        "bgp-session-compat",
                        Severity.ERROR,
                        "cross-device",
                        session.local_node,
                        f"BGP neighbor {session.remote_ip}: update-source "
                        f"{local_nb.update_source} sources the session from "
                        f"{source_iface.address}, but {session.remote_node} "
                        f"peers with {session.local_ip}",
                        _neighbor_location(local_device, session.remote_ip),
                        (
                            Related(
                                _neighbor_location(
                                    remote_device, session.local_ip
                                ),
                                f"{session.remote_node} expects the session "
                                f"from {session.local_ip}",
                            ),
                        ),
                    )
                )
    return findings


def _undirected_edges(snapshot: Snapshot) -> List[Layer3Edge]:
    """One representative per physical adjacency (tail < head)."""
    topology = build_layer3_topology(snapshot)
    return [
        edge for edge in topology.edges() if (edge.tail, edge.head) == tuple(
            sorted([edge.tail, edge.head])
        )
    ]


@rule(
    "ospf-adjacency-mismatch",
    Severity.ERROR,
    "cross-device",
    "L3-adjacent interfaces whose OSPF parameters can never form an "
    "adjacency: area, hello-interval, or dead-interval disagree, or OSPF "
    "runs on only one end.",
)
def ospf_adjacency_mismatch(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for edge in _undirected_edges(snapshot):
        a = snapshot.device(edge.tail.node).interfaces[edge.tail.interface]
        b = snapshot.device(edge.head.node).interfaces[edge.head.interface]
        link = f"{edge.tail} <-> {edge.head}"
        witness = (Related(_iface_location(b), f"remote end {edge.head}"),)
        if a.ospf_enabled and b.ospf_enabled:
            mismatches = []
            if a.ospf_area != b.ospf_area:
                mismatches.append(f"area {a.ospf_area} vs {b.ospf_area}")
            if a.ospf_hello_interval != b.ospf_hello_interval:
                mismatches.append(
                    f"hello-interval {a.ospf_hello_interval} vs "
                    f"{b.ospf_hello_interval}"
                )
            if a.ospf_dead_interval != b.ospf_dead_interval:
                mismatches.append(
                    f"dead-interval {a.ospf_dead_interval} vs "
                    f"{b.ospf_dead_interval}"
                )
            for mismatch in mismatches:
                findings.append(
                    Finding(
                        "ospf-adjacency-mismatch",
                        Severity.ERROR,
                        "cross-device",
                        edge.tail.node,
                        f"OSPF adjacency {link} cannot form: {mismatch}",
                        _iface_location(a),
                        witness,
                    )
                )
        elif a.ospf_enabled != b.ospf_enabled:
            enabled_end = edge.tail if a.ospf_enabled else edge.head
            silent_end = edge.head if a.ospf_enabled else edge.tail
            silent_device = snapshot.device(silent_end.node)
            # Only flag when the silent side runs OSPF elsewhere — a
            # host-facing or BGP-only neighbor is not a mistake.
            if silent_device.ospf is not None:
                findings.append(
                    Finding(
                        "ospf-adjacency-mismatch",
                        Severity.ERROR,
                        "cross-device",
                        enabled_end.node,
                        f"OSPF runs on {enabled_end} but not on the "
                        f"adjacent {silent_end}, though {silent_end.node} "
                        "has an OSPF process",
                        _iface_location(a if a.ospf_enabled else b),
                        (
                            Related(
                                _iface_location(b if a.ospf_enabled else a),
                                f"silent end {silent_end}",
                            ),
                        ),
                    )
                )
    return findings


@rule(
    "mtu-mismatch",
    Severity.WARNING,
    "cross-device",
    "L3-adjacent interfaces with different MTUs: OSPF adjacencies stall "
    "in ExStart and large packets blackhole.",
)
def mtu_mismatch(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for edge in _undirected_edges(snapshot):
        a = snapshot.device(edge.tail.node).interfaces[edge.tail.interface]
        b = snapshot.device(edge.head.node).interfaces[edge.head.interface]
        if a.mtu != b.mtu:
            findings.append(
                Finding(
                    "mtu-mismatch",
                    Severity.WARNING,
                    "cross-device",
                    edge.tail.node,
                    f"MTU mismatch on link {edge.tail} <-> {edge.head}: "
                    f"{a.mtu} vs {b.mtu}",
                    _iface_location(a),
                    (
                        Related(
                            _iface_location(b),
                            f"remote end {edge.head} (mtu {b.mtu})",
                        ),
                    ),
                )
            )
    return findings
