"""Configuration-hygiene lint rules.

Thin adapters over the existing reference/topology analyses so their
results flow through the common Finding model (severity, provenance,
suppression, SARIF) instead of bespoke answer shapes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.model import Device, Snapshot
from repro.config.references import (
    StructureType,
    undefined_references,
    unused_structures,
)
from repro.lint.model import Finding, Location, Related, Severity
from repro.lint.registry import rule
from repro.routing.topology import duplicate_ips


def _definition_location(
    device: Device, structure_type: StructureType, name: str
) -> Location:
    """Best-effort location of a structure's definition."""
    holder = {
        StructureType.ACL: device.acls,
        StructureType.PREFIX_LIST: device.prefix_lists,
        StructureType.COMMUNITY_LIST: device.community_lists,
        StructureType.ROUTE_MAP: device.route_maps,
        StructureType.INTERFACE: device.interfaces,
    }.get(structure_type)
    structure = holder.get(name) if holder is not None else None
    if structure is not None and getattr(structure, "source_line", 0):
        return Location(structure.source_file, structure.source_line)
    return Location()


@rule(
    "undefined-reference",
    Severity.ERROR,
    "hygiene",
    "Reference to a structure (ACL, route map, prefix list, interface, "
    "zone, ...) that is not defined on the device — the classic typo "
    "that silently changes behavior.",
    scope="device",
)
def undefined_reference(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for ref in undefined_references(device):
            findings.append(
                Finding(
                    "undefined-reference",
                    Severity.ERROR,
                    "hygiene",
                    hostname,
                    f"undefined {ref.structure_type.value} {ref.name} "
                    f"referenced by {ref.context}",
                    Location(ref.source_file, ref.source_line),
                )
            )
    return findings


@rule(
    "unused-structure",
    Severity.NOTE,
    "hygiene",
    "Defined structure never reachable from any active reference site "
    "(transitive: a prefix list used only by an unused route map is "
    "itself unused).",
    scope="device",
)
def unused_structure(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for unused in unused_structures(device):
            findings.append(
                Finding(
                    "unused-structure",
                    Severity.NOTE,
                    "hygiene",
                    hostname,
                    f"{unused.structure_type.value} {unused.name} is "
                    "defined but never used",
                    _definition_location(
                        device, unused.structure_type, unused.name
                    ),
                )
            )
    return findings


@rule(
    "duplicate-ip",
    Severity.WARNING,
    "hygiene",
    "IP address assigned to more than one enabled interface in the "
    "snapshot.",
)
def duplicate_ip(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for ip, owners in duplicate_ips(snapshot):
        first, rest = owners[0], owners[1:]
        first_iface = snapshot.device(first.node).interfaces[first.interface]
        related = []
        for owner in rest:
            iface = snapshot.device(owner.node).interfaces[owner.interface]
            related.append(
                Related(
                    Location(iface.source_file, iface.source_line),
                    f"also assigned on {owner}",
                )
            )
        findings.append(
            Finding(
                "duplicate-ip",
                Severity.WARNING,
                "hygiene",
                first.node,
                f"address {ip} is assigned to {len(owners)} interfaces: "
                + ", ".join(str(owner) for owner in owners),
                Location(first_iface.source_file, first_iface.source_line),
                tuple(related),
            )
        )
    return findings
