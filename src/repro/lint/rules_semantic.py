"""Semantic (BDD-backed) lint rules.

These go beyond syntax: each rule asks a satisfiability question about
packet or route space. `acl-line-unreachable` is this codebase's
``filterLineReachability`` — per Lesson 5 one of the most-used Batfish
analyses because an unreachable line is almost always a bug and the
finding names the exact lines involved.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import obs
from repro.bdd.engine import FALSE, TRUE
from repro.config.model import Acl, Device, Snapshot
from repro.dataplane.acl import line_space
from repro.hdr.headerspace import PacketEncoder
from repro.lint.model import Finding, Location, Related, Severity
from repro.lint.registry import rule
from repro.lint.routespace import RouteSpaceEncoder


def _acl_location(device: Device, acl: Acl, index: int) -> Location:
    line = acl.lines[index]
    if line.source_line:
        return Location(line.source_file, line.source_line)
    return Location(acl.source_file, acl.source_line)


def _blocking_witnesses(
    engine, spaces: List[int], index: int, covered: int, device: Device, acl: Acl
) -> Tuple[Related, ...]:
    """The minimal prefix-walk of earlier lines that jointly absorb
    ``covered`` packet space (same witness discipline as
    ``unreachable_filter_lines``)."""
    related: List[Related] = []
    remaining = covered
    for earlier in range(index):
        if remaining == FALSE:
            break
        overlap = engine.and_(spaces[earlier], remaining)
        if overlap == FALSE:
            continue
        earlier_line = acl.lines[earlier]
        related.append(
            Related(
                _acl_location(device, acl, earlier),
                f"line {earlier} ({earlier_line.name or earlier_line.action.value})"
                " matches part of this line's space first",
            )
        )
        remaining = engine.diff(remaining, spaces[earlier])
    return tuple(related)


def _acl_line_findings(snapshot: Snapshot, want_unreachable: bool) -> List[Finding]:
    encoder = PacketEncoder()
    engine = encoder.engine
    findings: List[Finding] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for acl_name in sorted(device.acls):
            acl = device.acls[acl_name]
            spaces = [line_space(line, encoder) for line in acl.lines]
            remaining = TRUE
            for index, space in enumerate(spaces):
                if obs.active():
                    obs.touch("acl_line", hostname, acl.name, index)
                acl_line = acl.lines[index]
                label = acl_line.name or f"line {index}"
                effective = engine.and_(space, remaining)
                if want_unreachable and effective == FALSE:
                    if space == FALSE:
                        findings.append(
                            Finding(
                                "acl-line-unreachable",
                                Severity.ERROR,
                                "semantic",
                                hostname,
                                f"ACL {acl.name} {label} is unsatisfiable: "
                                "no packet can match it regardless of position",
                                _acl_location(device, acl, index),
                            )
                        )
                    else:
                        findings.append(
                            Finding(
                                "acl-line-unreachable",
                                Severity.ERROR,
                                "semantic",
                                hostname,
                                f"ACL {acl.name} {label} is unreachable: "
                                "every packet it matches is taken by earlier lines",
                                _acl_location(device, acl, index),
                                _blocking_witnesses(
                                    engine, spaces, index, space, device, acl
                                ),
                            )
                        )
                elif (
                    not want_unreachable
                    and effective != FALSE
                    and effective != space
                ):
                    stolen = engine.diff(space, effective)
                    findings.append(
                        Finding(
                            "acl-line-partially-shadowed",
                            Severity.WARNING,
                            "semantic",
                            hostname,
                            f"ACL {acl.name} {label} is partially shadowed: "
                            "earlier lines already match some of its packets",
                            _acl_location(device, acl, index),
                            _blocking_witnesses(
                                engine, spaces, index, stolen, device, acl
                            ),
                        )
                    )
                remaining = engine.diff(remaining, space)
    return findings


@rule(
    "acl-line-unreachable",
    Severity.ERROR,
    "semantic",
    "ACL line that no packet can ever reach (fully shadowed by earlier "
    "lines, or unsatisfiable on its own) — the filterLineReachability check.",
    scope="device",
)
def acl_line_unreachable(snapshot: Snapshot) -> List[Finding]:
    return _acl_line_findings(snapshot, want_unreachable=True)


@rule(
    "acl-line-partially-shadowed",
    Severity.WARNING,
    "semantic",
    "ACL line whose match space partially overlaps earlier lines: it still "
    "fires, but not for all packets it names — often an ordering mistake.",
    scope="device",
)
def acl_line_partially_shadowed(snapshot: Snapshot) -> List[Finding]:
    return _acl_line_findings(snapshot, want_unreachable=False)


@rule(
    "route-map-clause-unreachable",
    Severity.WARNING,
    "semantic",
    "Route-map clause that can never fire: its match space is empty or "
    "fully absorbed by earlier clauses (residual route-space analysis; "
    "over-approximates unencodable matches, so findings are sound).",
    scope="device",
)
def route_map_clause_unreachable(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        if not device.route_maps:
            continue
        encoder = RouteSpaceEncoder(device)
        engine = encoder.engine
        for map_name in sorted(device.route_maps):
            route_map = device.route_maps[map_name]
            residual = TRUE
            earlier_exact: List[Tuple[int, int, Location]] = []
            for clause in route_map.sorted_clauses():
                if obs.active():
                    obs.touch(
                        "route_map_clause", hostname, route_map.name, clause.seq
                    )
                space, exact = encoder.clause_space(clause)
                location = Location(clause.source_file, clause.source_line)
                if engine.and_(space, residual) == FALSE:
                    if space == FALSE:
                        message = (
                            f"route-map {route_map.name} clause {clause.seq} "
                            "matches no route (its match conditions are "
                            "unsatisfiable)"
                        )
                        related: Tuple[Related, ...] = ()
                    else:
                        message = (
                            f"route-map {route_map.name} clause {clause.seq} "
                            "is unreachable: earlier clauses match every "
                            "route it could match"
                        )
                        witnesses: List[Related] = []
                        remaining = space
                        for seq, espace, elocation in earlier_exact:
                            if remaining == FALSE:
                                break
                            if engine.and_(espace, remaining) == FALSE:
                                continue
                            witnesses.append(
                                Related(
                                    elocation,
                                    f"clause {seq} matches part of this "
                                    "clause's route space first",
                                )
                            )
                            remaining = engine.diff(remaining, espace)
                        related = tuple(witnesses)
                    findings.append(
                        Finding(
                            "route-map-clause-unreachable",
                            Severity.WARNING,
                            "semantic",
                            hostname,
                            message,
                            location,
                            related,
                        )
                    )
                if exact:
                    earlier_exact.append((clause.seq, space, location))
                    residual = engine.diff(residual, space)
    return findings


@rule(
    "vacuous-match",
    Severity.WARNING,
    "semantic",
    "Prefix list or community list whose match space is empty (matches "
    "nothing): dead configuration that silently denies everything.",
    scope="device",
)
def vacuous_match(snapshot: Snapshot) -> List[Finding]:
    findings: List[Finding] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        needs_engine = device.prefix_lists or device.community_lists
        if not needs_engine:
            continue
        encoder = RouteSpaceEncoder(device)
        engine = encoder.engine
        for name in sorted(device.prefix_lists):
            plist = device.prefix_lists[name]
            location = Location(plist.source_file, plist.source_line)
            if not plist.lines:
                findings.append(
                    Finding(
                        "vacuous-match",
                        Severity.WARNING,
                        "semantic",
                        hostname,
                        f"prefix-list {name} has no lines: with the "
                        "implicit deny it matches nothing",
                        location,
                    )
                )
                continue
            for index, line in enumerate(plist.lines):
                if encoder.prefix_list_line_space(line) == FALSE:
                    findings.append(
                        Finding(
                            "vacuous-match",
                            Severity.WARNING,
                            "semantic",
                            hostname,
                            f"prefix-list {name} line {index} can never "
                            "match (empty length band)",
                            location,
                        )
                    )
            if encoder.prefix_list_space(plist) == FALSE:
                findings.append(
                    Finding(
                        "vacuous-match",
                        Severity.WARNING,
                        "semantic",
                        hostname,
                        f"prefix-list {name} permits nothing: every line "
                        "denies or is unsatisfiable",
                        location,
                    )
                )
        for name in sorted(device.community_lists):
            clist = device.community_lists[name]
            if not clist.communities:
                findings.append(
                    Finding(
                        "vacuous-match",
                        Severity.WARNING,
                        "semantic",
                        hostname,
                        f"community-list {name} lists no communities: it "
                        "matches no route",
                        Location(clist.source_file, clist.source_line),
                    )
                )
    return findings
