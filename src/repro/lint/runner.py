"""Lint runner: executes registered rules over a snapshot, in parallel,
with per-rule timing, suppression handling, and metrics.

Rules are independent, so they parallelize trivially with
``repro.parallel.pmap`` (fork-based; each worker gets a copy-on-write
view of the snapshot and builds its own BDD engines). Timing and
finding counts land in the ``repro.obs`` metrics registry
unconditionally — the service ``/metrics`` endpoint then shows
``lint.findings.<rule>`` counters without tracing enabled.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.config.model import Device, Snapshot
from repro.core.cache import engine_version
from repro.lint.model import Finding, LintConfig, Severity, sort_findings
from repro.lint.registry import Rule, all_rules
from repro.parallel import pmap


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    rules_run: List[str] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Propagation-fixpoint stats when any dataflow-scoped rule ran:
    #: {"fixpoint_seconds", "iterations", "nodes", "edges", "warm_start"}.
    dataflow: Optional[Dict] = None

    def active(self) -> List[Finding]:
        """Findings not suppressed by lint-disable comments or config."""
        return [f for f in self.findings if not f.suppressed]

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active():
            counts[finding.severity.label] = (
                counts.get(finding.severity.label, 0) + 1
            )
        return counts

    def counts_by_rule(self) -> Dict[str, int]:
        counts = {rule_id: 0 for rule_id in self.rules_run}
        for finding in self.active():
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def exit_code(self, fail_on: Optional[str]) -> int:
        """0 when clean under the threshold, 1 otherwise."""
        if not fail_on or fail_on == "never":
            return 0
        threshold = Severity.from_name(fail_on)
        return (
            1
            if any(f.severity >= threshold for f in self.active())
            else 0
        )

    def to_json(self) -> Dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "summary": {
                "total": len(self.active()),
                "suppressed": len(self.findings) - len(self.active()),
                "by_severity": self.counts_by_severity(),
                "by_rule": self.counts_by_rule(),
            },
            "rule_seconds": {
                rule_id: round(seconds, 6)
                for rule_id, seconds in sorted(self.rule_seconds.items())
            },
            "total_seconds": round(self.total_seconds, 6),
            **({"dataflow": self.dataflow} if self.dataflow else {}),
        }


def _apply_suppressions(
    findings: Sequence[Finding], snapshot: Snapshot, config: LintConfig
) -> List[Finding]:
    """Mark findings suppressed by in-source ``lint-disable`` comments
    (device-scoped) or by lintconfig suppress entries. Suppressed
    findings stay in the report (and SARIF) but don't fail the run."""
    out: List[Finding] = []
    for finding in findings:
        suppression = ""
        device = snapshot.devices.get(finding.hostname)
        if device is not None:
            for rule_id, source_file, source_line in device.lint_suppressions:
                if rule_id in ("*", finding.rule_id):
                    suppression = (
                        f"lint-disable at {source_file}:{source_line}"
                    )
                    break
        if not suppression and config.suppresses(finding):
            suppression = "lintconfig suppression"
        if suppression:
            finding = replace(
                finding, suppressed=True, suppression=suppression
            )
        out.append(finding)
    return out


def _device_lint_key(rule: Rule, device: Device) -> str:
    """Content address of one device-scoped rule evaluation: code
    version + rule + the device model's bytes. An unchanged file parses
    to an identical Device, so its key (and memoized findings) survive
    edits elsewhere in the snapshot."""
    digest = hashlib.sha256(engine_version().encode())
    digest.update(b"\x00lint\x00")
    digest.update(rule.rule_id.encode())
    digest.update(b"\x00")
    digest.update(pickle.dumps(device, protocol=pickle.HIGHEST_PROTOCOL))
    return digest.hexdigest()


def lint_snapshot(
    snapshot: Snapshot,
    config: Optional[LintConfig] = None,
    jobs: Optional[int] = None,
    cache=None,
    snapshot_key: Optional[str] = None,
    delta: Optional[Dict] = None,
) -> LintReport:
    """Run every enabled rule against ``snapshot`` and assemble a report.

    ``jobs`` follows the ``pmap`` convention (None = auto). Rules run in
    parallel; results come back in registry order so reports are
    deterministic regardless of scheduling.

    ``cache`` (a :class:`repro.core.cache.SnapshotCache`) memoizes
    device-scoped rules per device: when an incremental update touches
    two files out of two hundred, only those two devices' semantic
    checks (the expensive BDD ones) re-run. Snapshot-scoped rules —
    which relate devices to each other — always run in full. Findings
    are memoized *pre*-suppression and *pre*-severity-override, so
    lintconfig changes apply to memoized findings too.

    ``snapshot_key`` / ``delta`` wire the dataflow fixpoint into the
    incremental pipeline: the fixpoint is persisted under
    ``snapshot_key`` and, on a delta-derived session, ``delta =
    {"base_key", "dirty_devices", "fallback"}`` lets it warm-start from
    the base snapshot's cached fixpoint (only the dirty propagation
    subgraph re-iterates).
    """
    config = config or LintConfig()
    rules = [r for r in all_rules() if config.rule_enabled(r.rule_id)]

    # Dataflow-scoped rules share one propagation fixpoint. Compute it
    # before the pool forks: workers inherit the BDD tables and the
    # analysis copy-on-write through the module-global slot.
    dataflow_stats: Optional[Dict] = None
    if any(rule.scope == "dataflow" for rule in rules):
        from repro.lint.dataflow import engine as dataflow_engine

        analysis = dataflow_engine.analyze(
            snapshot, cache=cache, snapshot_key=snapshot_key, delta=delta
        )
        dataflow_engine.set_shared(snapshot, analysis)
        dataflow_stats = {
            "fixpoint_seconds": round(analysis.fixpoint_seconds, 6),
            "iterations": analysis.iterations,
            "nodes": len(analysis.graph.nodes),
            "edges": len(analysis.graph.edges),
            "warm_start": analysis.warm_start,
        }
        metrics = obs.metrics()
        metrics.observe(
            "lint.dataflow.fixpoint_seconds", analysis.fixpoint_seconds
        )
        metrics.observe("lint.dataflow.iterations", analysis.iterations)
        if analysis.warm_start:
            metrics.inc("lint.dataflow.warm_starts")

    # Work items: one per snapshot-scoped rule, one per (device rule,
    # device) pair not served from the memo. hostname None = whole
    # snapshot.
    items: List[Tuple[Rule, Optional[str]]] = []
    memoized: List[Tuple[str, List[Finding]]] = []
    memo_keys: Dict[Tuple[str, str], str] = {}
    for rule in rules:
        if rule.scope != "device" or cache is None:
            items.append((rule, None))
            continue
        for hostname in snapshot.hostnames():
            key = _device_lint_key(rule, snapshot.device(hostname))
            memo_keys[(rule.rule_id, hostname)] = key
            hit = cache.load("lint", key)
            if hit is not None:
                memoized.append((rule.rule_id, hit))
                obs.metrics().inc("lint.device_memo_hits")
            else:
                items.append((rule, hostname))
                obs.metrics().inc("lint.device_memo_misses")

    def run_one(item: Tuple[Rule, Optional[str]]):
        rule, hostname = item
        start = time.perf_counter()
        # Coverage touches made by this rule land in the
        # ``lint/<rule_id>`` vector (rolled up under ``lint`` by
        # prefix), whether the rule runs inline or on a pmap worker.
        with obs.context.attribution(f"lint/{rule.rule_id}"):
            if hostname is None:
                findings = rule.run(snapshot)
            else:
                # Device-scoped rules see a single-device snapshot; by
                # the scope contract this yields exactly the findings
                # the full snapshot would produce for that device.
                findings = rule.run(
                    Snapshot(devices={hostname: snapshot.device(hostname)})
                )
        elapsed = time.perf_counter() - start
        # Lands in the pmap worker's flight ring and ships back to the
        # parent with the originating request id — the per-rule trail a
        # postmortem of a slow or crashed lint job needs.
        obs.flight.record(
            "lint.rule", rule.rule_id,
            device=hostname or "", findings=len(findings),
            wall_s=round(elapsed, 6),
        )
        return rule.rule_id, hostname, findings, elapsed

    started = time.perf_counter()
    try:
        results = pmap(run_one, items, jobs=jobs, min_items=2)
    finally:
        if dataflow_stats is not None:
            from repro.lint.dataflow import engine as dataflow_engine

            dataflow_engine.clear_shared()
    total_seconds = time.perf_counter() - started

    report = LintReport(total_seconds=total_seconds, dataflow=dataflow_stats)
    metrics = obs.metrics()
    raw: Dict[str, List[Finding]] = {rule.rule_id: [] for rule in rules}
    seconds_by_rule: Dict[str, float] = {rule.rule_id: 0.0 for rule in rules}
    for rule_id, hostname, findings, seconds in results:
        raw[rule_id].extend(findings)
        seconds_by_rule[rule_id] += seconds
        if hostname is not None and cache is not None:
            cache.store("lint", memo_keys[(rule_id, hostname)], findings)
    for rule_id, findings in memoized:
        raw[rule_id].extend(findings)

    collected: List[Finding] = []
    for rule in rules:
        findings = raw[rule.rule_id]
        report.rules_run.append(rule.rule_id)
        report.rule_seconds[rule.rule_id] = seconds_by_rule[rule.rule_id]
        override = config.severity.get(rule.rule_id)
        if override is not None:
            findings = [replace(f, severity=override) for f in findings]
        collected.extend(findings)
        metrics.observe(
            f"lint.rule_seconds.{rule.rule_id}", seconds_by_rule[rule.rule_id]
        )
    collected = _apply_suppressions(collected, snapshot, config)
    report.findings = sort_findings(collected)
    for rule_id, count in report.counts_by_rule().items():
        metrics.inc(f"lint.findings.{rule_id}", count)
    metrics.inc("lint.runs")
    metrics.observe("lint.seconds", total_seconds)
    obs.observe_phase("lint", total_seconds)
    return report
