"""SARIF 2.1.0 output and baseline comparison.

SARIF (Static Analysis Results Interchange Format) is what lets the
lint findings ride existing tooling — code-review annotation, CI result
viewers — instead of inventing another report format. We emit one run
with full rule metadata, physical locations, witness
``relatedLocations``, and ``suppressions`` for findings disabled
in-source.

The baseline helpers implement drift checking for CI: normalize a SARIF
log to a set of result keys and diff two logs. New findings *and*
resolved findings both count as drift, so the committed baseline stays
an exact description of the fleet.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.model import Finding, Severity
from repro.lint.registry import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def _location_json(location, message: str = "") -> Dict:
    physical: Dict = {
        "artifactLocation": {"uri": location.file or "<unknown>"}
    }
    if location.line:
        physical["region"] = {"startLine": location.line}
    entry: Dict = {"physicalLocation": physical}
    if message:
        entry["message"] = {"text": message}
    return entry


def to_sarif(findings: Sequence[Finding], rules: Sequence[Rule]) -> Dict:
    """Render findings as a single-run SARIF 2.1.0 log."""
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    rule_metadata = [
        {
            "id": rule.rule_id,
            "name": rule.rule_id.replace("-", " ").title().replace(" ", ""),
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            "properties": {"category": rule.category},
        }
        for rule in rules
    ]
    results: List[Dict] = []
    for finding in findings:
        result: Dict = {
            "ruleId": finding.rule_id,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [_location_json(finding.location)],
            "properties": {
                "node": finding.hostname,
                "category": finding.category,
            },
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        if finding.related:
            result["relatedLocations"] = [
                _location_json(rel.location, rel.message)
                for rel in finding.related
            ]
        if finding.suppressed:
            kind = (
                "inSource"
                if finding.suppression.startswith("lint-disable")
                else "external"
            )
            result["suppressions"] = [
                {"kind": kind, "justification": finding.suppression}
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://github.com/batfish/batfish"
                        ),
                        "rules": rule_metadata,
                    }
                },
                "results": results,
            }
        ],
    }


ResultKey = Tuple[str, str, int, str]


def result_keys(sarif_log: Dict) -> Set[ResultKey]:
    """Normalize a SARIF log to comparable result keys. Suppressed
    results are excluded — suppressing a finding in-source resolves it
    from the baseline's point of view."""
    keys: Set[ResultKey] = set()
    for run in sarif_log.get("runs", []):
        for result in run.get("results", []):
            if result.get("suppressions"):
                continue
            locations = result.get("locations") or [{}]
            physical = locations[0].get("physicalLocation", {})
            uri = physical.get("artifactLocation", {}).get("uri", "")
            line = physical.get("region", {}).get("startLine", 0)
            keys.add(
                (
                    result.get("ruleId", ""),
                    uri,
                    line,
                    result.get("message", {}).get("text", ""),
                )
            )
    return keys


def compare_to_baseline(
    current: Dict, baseline: Dict
) -> Tuple[List[ResultKey], List[ResultKey]]:
    """Return (new, resolved) result keys, each sorted."""
    current_keys = result_keys(current)
    baseline_keys = result_keys(baseline)
    return (
        sorted(current_keys - baseline_keys),
        sorted(baseline_keys - current_keys),
    )
