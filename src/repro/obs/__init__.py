"""`repro.obs` — dependency-free tracing, metrics, and config coverage.

The observability subsystem the pipeline reports through:

* **Spans** (:func:`span` / :class:`Span`) — nested wall/CPU timing
  scopes streamed as JSON lines (``REPRO_TRACE=/path/trace.jsonl`` or
  ``Session(trace=...)``).
* **Metrics** (:func:`add`, :func:`gauge`, :func:`observe`) — named
  counters/gauges/histograms emitted from the hot paths: parser line and
  warning counts, per-iteration BGP RIB deltas, BDD node/unique-table
  sizes, snapshot-cache hits/misses, and ``pmap`` fan-out stats merged
  back from pool workers.
* **Config coverage** (:func:`touch`, ``Session.coverage_report()``) —
  which VI-model structures (interfaces, ACL lines, route-map clauses)
  each query exercised, in the spirit of Xu et al.'s *Test Coverage for
  Network Configurations*.
* **Report CLI** — ``python -m repro.obs.report trace.jsonl`` renders
  the per-phase time tree, top counters, and the coverage summary;
  ``--strict`` fails on unclosed spans (the CI gate).

All instrumentation is zero-cost when disabled: one module-level flag
guard per call site, no formatting or allocation off the hot path.
"""

from repro.obs import context, flight, profiler
from repro.obs.context import RequestContext, current_request_id, request_context
from repro.obs.coverage import CoverageReport, CoverageTracker, coverage_report
from repro.obs.metrics import BucketHistogram, Histogram, Metrics
from repro.obs.slo import SloTracker
from repro.obs.trace import (
    Span,
    active,
    add,
    coverage,
    current_span_name,
    disable,
    enable,
    enable_metrics,
    enabled,
    events,
    flush,
    gauge,
    merge_worker_dump,
    metrics,
    metrics_dump,
    metrics_enabled,
    observe,
    observe_bucket,
    observe_phase,
    reset,
    span,
    touch,
    trace_path,
    unclosed_spans,
    worker_dump,
)

__all__ = [
    "BucketHistogram",
    "CoverageReport",
    "CoverageTracker",
    "Histogram",
    "Metrics",
    "RequestContext",
    "SloTracker",
    "Span",
    "active",
    "add",
    "context",
    "coverage",
    "coverage_report",
    "current_request_id",
    "current_span_name",
    "disable",
    "enable",
    "enable_metrics",
    "enabled",
    "events",
    "flight",
    "flush",
    "gauge",
    "merge_worker_dump",
    "metrics",
    "metrics_dump",
    "metrics_enabled",
    "observe",
    "observe_bucket",
    "observe_phase",
    "profiler",
    "request_context",
    "reset",
    "span",
    "touch",
    "trace_path",
    "unclosed_spans",
    "worker_dump",
]
