"""Request-scoped trace context: who asked for this work, and until when.

Every piece of telemetry the pipeline emits — spans, metric exemplars,
flight-recorder events, postmortem bundles — should be attributable to
the *request* that caused it, even when the work happens three layers
down (an HTTP handler thread enqueues a job, a queue worker thread runs
it, and a ``pmap`` pool worker process parses one config file of it).
This module is the propagation mechanism:

* a :class:`RequestContext` is minted once, at the outermost entry
  point (the HTTP handler; CLI entry points may mint their own);
* it rides a :mod:`contextvars` variable, so it follows the logical
  flow of control within a thread and is cheap to read on hot paths
  (one ``ContextVar.get`` — no locks, no dict lookups);
* across *thread* boundaries it is carried explicitly (the
  :class:`repro.service.jobs.Job` stores it; the worker activates it);
* across *process* boundaries it is serialized into the worker payload
  (:func:`to_wire` / :func:`from_wire` — see
  :func:`repro.parallel.pmap`), so events emitted inside pool workers
  carry the same ``request_id`` as the parent's.

The context is intentionally tiny and immutable: a request id, an
optional tenant/client tag, and an optional absolute deadline. Anything
bigger belongs in span attributes, not in the ambient context.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterator, Optional


@dataclass(frozen=True)
class RequestContext:
    """Immutable per-request attribution carried through the pipeline."""

    request_id: str
    #: Client/tenant tag (free-form; the service fills it from the
    #: ``X-Tenant`` header). Empty string = unattributed.
    tenant: str = ""
    #: Absolute deadline (``time.time()`` epoch seconds); None = none.
    deadline_ts: Optional[float] = None
    #: The question (or ``lint/<rule>`` label) this work is executing on
    #: behalf of. Empty string = unattributed. Coverage touches are
    #: scoped to this value, so per-question coverage vectors survive
    #: the job queue's thread hop and ``pmap``'s fork boundary the same
    #: way ``request_id`` does.
    question: str = ""

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the deadline (negative = expired); None when
        the request carries no deadline."""
        if self.deadline_ts is None:
            return None
        return self.deadline_ts - (time.time() if now is None else now)

    @property
    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0


_CURRENT: contextvars.ContextVar[Optional[RequestContext]] = (
    contextvars.ContextVar("repro_request_context", default=None)
)


def new_request_id() -> str:
    """A fresh request id (``req-`` + 12 hex chars; unique enough for
    correlating telemetry, short enough for log lines)."""
    return f"req-{uuid.uuid4().hex[:12]}"


def current() -> Optional[RequestContext]:
    """The active request context on this thread, or None."""
    return _CURRENT.get()


def current_request_id() -> Optional[str]:
    """The active request id (the one hot paths stamp on events).

    Anonymous attribution-only contexts (see :func:`attribution`) carry
    an empty request id; those read as None here so events never get
    stamped with an empty ``rid``."""
    context = _CURRENT.get()
    if context is None:
        return None
    return context.request_id or None


def current_question() -> Optional[str]:
    """The question/rule label the current work is attributed to, or
    None. This is what :func:`repro.obs.trace.touch` scopes coverage
    touches with — a ``ContextVar.get`` plus one attribute read, cheap
    enough for the ACL/route-map hot paths."""
    context = _CURRENT.get()
    if context is None:
        return None
    return context.question or None


def activate(context: Optional[RequestContext]) -> contextvars.Token:
    """Install ``context`` as current; returns the token for
    :func:`deactivate`. Used where a ``with`` block doesn't fit (the
    job-queue worker loop)."""
    return _CURRENT.set(context)


def deactivate(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextlib.contextmanager
def request_context(
    request_id: Optional[str] = None,
    tenant: str = "",
    deadline_ts: Optional[float] = None,
) -> Iterator[RequestContext]:
    """Scope a request context over a block::

        with request_context(tenant="ci") as ctx:
            session.reachability(...)   # telemetry carries ctx.request_id
    """
    context = RequestContext(
        request_id=request_id or new_request_id(),
        tenant=tenant,
        deadline_ts=deadline_ts,
    )
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def attribution(question: str) -> Iterator[RequestContext]:
    """Scope coverage attribution to ``question`` over a block.

    Derives from the active request context when there is one (so the
    request id, tenant, and deadline keep flowing), otherwise mints an
    anonymous context carrying only the question label. Used by
    :func:`repro.service.serialize.run_question` (question handlers),
    the job-queue worker, and the lint runner (``lint/<rule_id>``)::

        with attribution("reachability"):
            ...   # every obs.touch() lands in this question's vector
    """
    base = _CURRENT.get()
    if base is None:
        context = RequestContext(request_id="", question=question)
    else:
        context = dataclasses.replace(base, question=question)
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


# ----------------------------------------------------------------------
# Process-boundary serialization (pmap worker payloads)


def to_wire(context: Optional[RequestContext]) -> Optional[Dict]:
    """JSON/pickle-ready form of a context (None stays None)."""
    if context is None:
        return None
    wire: Dict = {"request_id": context.request_id}
    if context.tenant:
        wire["tenant"] = context.tenant
    if context.deadline_ts is not None:
        wire["deadline_ts"] = context.deadline_ts
    if context.question:
        wire["question"] = context.question
    return wire


def from_wire(wire: Optional[Dict]) -> Optional[RequestContext]:
    """Rebuild a context shipped via :func:`to_wire` (tolerant of
    missing/extra keys — a version-skewed parent must not kill a
    worker)."""
    if not wire or not isinstance(wire, dict):
        return None
    request_id = wire.get("request_id") or ""
    question = wire.get("question") or ""
    # An attribution-only context (empty request id, question set) is a
    # legitimate wire — CLI entry points attribute without minting rids.
    if not request_id and not question:
        return None
    deadline = wire.get("deadline_ts")
    return RequestContext(
        request_id=str(request_id),
        tenant=str(wire.get("tenant", "") or ""),
        deadline_ts=float(deadline) if deadline is not None else None,
        question=str(question),
    )
