"""Configuration coverage: which parts of a config an analysis touched.

Xu et al.'s *Test Coverage for Network Configurations* argues that the
right observability primitive for tools like Batfish is per-structure
(ultimately per-line) coverage: a reachability suite that never
exercises an ACL line says nothing about that line. This module tracks
"touches" of vendor-independent model structures as queries run:

* ``interface`` — a packet (symbolic or concrete) entered/left it,
* ``acl_line`` — the concrete evaluator matched it (implicit deny is
  index ``-1``),
* ``route_map_clause`` — policy evaluation matched the clause.

Touches are attributed to the *question* (or ``lint/<rule_id>`` label)
riding the :mod:`repro.obs.context` contextvar — falling back to the
innermost open :class:`~repro.obs.trace.Span` — so a report can say
*which question* exercised a structure, and the tracker keeps one full
key-level coverage vector per attribution label. Totals come from
walking a :class:`~repro.config.model.Snapshot`, giving touched/total
ratios per structure kind — the coverage analogue of line/branch
coverage.

On top of the raw vectors the tracker keeps a small *run registry*:
one record per (snapshot, question, params) execution, holding the
question's coverage vector, its host footprint, and a scope class. The
delta engine reads the registry to rank questions by overlap with a
dirty set (coverage-guided prioritization; see
:mod:`repro.questions.coverage`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: kind, hostname, structure name, index-within-structure (or None).
CoverageKey = Tuple[str, str, str, Optional[int]]

KINDS = ("interface", "acl_line", "route_map_clause")


class CoverageTracker:
    """Accumulates structure touches; thread-safe, cheap when idle."""

    def __init__(self):
        self._lock = threading.Lock()
        self._touched: Dict[CoverageKey, int] = {}
        self._by_query: Dict[str, Dict[str, int]] = {}
        #: Full key-level coverage vector per attribution label
        #: (question name or ``lint/<rule_id>``).
        self._vectors: Dict[str, Dict[CoverageKey, int]] = {}
        #: Run registry: snapshot_key -> (question, params_key) ->
        #: record dict (see :func:`repro.questions.coverage`). Kept
        #: separate from the vectors: vectors describe the *current*
        #: tracker state, records describe completed executions and are
        #: what delta prioritization ranks against.
        self._runs: Dict[str, Dict[Tuple[str, str], Dict]] = {}

    def touch(
        self,
        kind: str,
        hostname: str,
        name: str,
        index: Optional[int] = None,
        query: Optional[str] = None,
    ) -> None:
        key = (kind, hostname, name, index)
        with self._lock:
            self._touched[key] = self._touched.get(key, 0) + 1
            if query:
                per_kind = self._by_query.setdefault(query, {})
                per_kind[kind] = per_kind.get(kind, 0) + 1
                vector = self._vectors.setdefault(query, {})
                vector[key] = vector.get(key, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self._touched.clear()
            self._by_query.clear()
            self._vectors.clear()
            self._runs.clear()

    def invalidate_hosts(self, hostnames) -> int:
        """Drop all touches attributed to the given devices.

        The incremental delta engine calls this for dirty devices: their
        structures changed (or their routing context did), so previous
        touches no longer describe the current configuration. Touches on
        clean devices are kept; the per-query kind aggregates are
        *recomputed* from the surviving per-question vectors so they
        never go stale relative to the key-level data. The run registry
        is untouched — records describe past executions against past
        snapshots and are pruned by snapshot key, not by host. Returns
        the number of global entries dropped.
        """
        hosts = set(hostnames)
        with self._lock:
            stale = [key for key in self._touched if key[1] in hosts]
            for key in stale:
                del self._touched[key]
            for vector in self._vectors.values():
                for key in [k for k in vector if k[1] in hosts]:
                    del vector[key]
            self._vectors = {
                label: vector
                for label, vector in self._vectors.items()
                if vector
            }
            # Aggregates re-derived from what survived — this is the
            # invariant the old code broke (stale ratios after deltas).
            self._by_query = {}
            for label, vector in self._vectors.items():
                per_kind = self._by_query.setdefault(label, {})
                for key, count in vector.items():
                    per_kind[key[0]] = per_kind.get(key[0], 0) + count
        return len(stale)

    def touched_keys(self) -> List[CoverageKey]:
        with self._lock:
            return sorted(self._touched, key=_key_order)

    def question_vector(self, question: str) -> Dict[CoverageKey, int]:
        """The combined coverage vector for ``question``.

        Prefix-matched: the label ``question`` itself plus any
        ``question/<sub>`` labels fold together, so the eleven
        ``lint/<rule_id>`` vectors roll up under ``lint``."""
        prefix = question + "/"
        out: Dict[CoverageKey, int] = {}
        with self._lock:
            for label, vector in self._vectors.items():
                if label != question and not label.startswith(prefix):
                    continue
                for key, count in vector.items():
                    out[key] = out.get(key, 0) + count
        return out

    def vector_labels(self) -> List[str]:
        with self._lock:
            return sorted(self._vectors)

    # -- run registry --------------------------------------------------

    def record_run(
        self, snapshot_key: str, question: str, params_key: str, record: Dict
    ) -> None:
        """Register a completed (question, params) execution against a
        snapshot. Overwrites any previous record for the same triple —
        the latest execution is the freshest description."""
        with self._lock:
            per_snapshot = self._runs.setdefault(snapshot_key, {})
            per_snapshot[(question, params_key)] = record

    def recorded_runs(self, snapshot_key: str) -> Dict[Tuple[str, str], Dict]:
        with self._lock:
            return dict(self._runs.get(snapshot_key, {}))

    def dump(self) -> Dict[str, object]:
        """JSON-ready snapshot (keys rendered as strings). The run
        registry is deliberately excluded: it is parent-process state,
        not something pmap workers accumulate."""
        with self._lock:
            return {
                "touched": {
                    _render_key(key): count
                    for key, count in sorted(
                        self._touched.items(), key=lambda kv: _key_order(kv[0])
                    )
                },
                "by_query": {
                    query: dict(sorted(kinds.items()))
                    for query, kinds in sorted(self._by_query.items())
                },
                "vectors": {
                    label: {
                        _render_key(key): count
                        for key, count in sorted(
                            vector.items(), key=lambda kv: _key_order(kv[0])
                        )
                    }
                    for label, vector in sorted(self._vectors.items())
                },
            }

    def merge(self, dump: Dict[str, object]) -> None:
        """Fold a worker's :meth:`dump` back in (inverse of rendering)."""
        if not dump:
            return
        with self._lock:
            for rendered, count in dump.get("touched", {}).items():
                key = _parse_key(rendered)
                if key is not None:
                    self._touched[key] = self._touched.get(key, 0) + int(count)
            for query, kinds in dump.get("by_query", {}).items():
                per_kind = self._by_query.setdefault(query, {})
                for kind, count in kinds.items():
                    per_kind[kind] = per_kind.get(kind, 0) + int(count)
            for label, rendered_vector in dump.get("vectors", {}).items():
                vector = self._vectors.setdefault(label, {})
                for rendered, count in rendered_vector.items():
                    key = _parse_key(rendered)
                    if key is not None:
                        vector[key] = vector.get(key, 0) + int(count)


def _key_order(key: CoverageKey):
    kind, hostname, name, index = key
    return (kind, hostname, name, -1 if index is None else index)


def _render_key(key: CoverageKey) -> str:
    kind, hostname, name, index = key
    rendered = f"{kind}:{hostname}:{name}"
    return rendered if index is None else f"{rendered}:{index}"


def _parse_key(rendered: str) -> Optional[CoverageKey]:
    parts = rendered.split(":")
    if len(parts) == 3:
        return (parts[0], parts[1], parts[2], None)
    if len(parts) == 4:
        try:
            return (parts[0], parts[1], parts[2], int(parts[3]))
        except ValueError:
            return None
    return None


# Public aliases: the persisted question records and the coverage API
# payloads carry keys in rendered form, so callers outside this module
# (repro.questions.coverage, the service) need the codec.
render_key = _render_key
parse_key = _parse_key


# ----------------------------------------------------------------------
# Reporting against a snapshot


@dataclass
class KindCoverage:
    kind: str
    touched: int
    total: int
    untouched: List[str] = field(default_factory=list)

    @property
    def pct(self) -> float:
        return 100.0 * self.touched / self.total if self.total else 0.0


@dataclass
class CoverageReport:
    """Touched/total per structure kind, with sample untouched labels."""

    kinds: Dict[str, KindCoverage]
    by_query: Dict[str, Dict[str, int]]

    def describe(self, max_untouched: int = 5) -> str:
        lines = []
        for kind in KINDS:
            cov = self.kinds[kind]
            lines.append(
                f"{kind:>17}: {cov.touched}/{cov.total} ({cov.pct:.0f}%)"
            )
            for label in cov.untouched[:max_untouched]:
                lines.append(f"{'':>19} untouched: {label}")
            hidden = len(cov.untouched) - max_untouched
            if hidden > 0:
                lines.append(f"{'':>19} ... and {hidden} more")
        return "\n".join(lines)


def coverage_report(tracker: CoverageTracker, snapshot) -> CoverageReport:
    """Compare touched structures against everything the snapshot defines."""
    touched = set()
    for kind, hostname, name, index in tracker.touched_keys():
        touched.add((kind, hostname, name, index))
    kinds: Dict[str, KindCoverage] = {
        kind: KindCoverage(kind=kind, touched=0, total=0) for kind in KINDS
    }

    def account(kind: str, hostname: str, name: str, index, label: str) -> None:
        cov = kinds[kind]
        cov.total += 1
        if (kind, hostname, name, index) in touched:
            cov.touched += 1
        else:
            cov.untouched.append(label)

    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface_name in sorted(device.interfaces):
            account(
                "interface", hostname, iface_name, None,
                f"{hostname}:{iface_name}",
            )
        for acl_name in sorted(device.acls):
            for index, line in enumerate(device.acls[acl_name].lines):
                label = f"{hostname}:{acl_name}#{index}"
                if line.source_line:
                    label += f" ({line.source_file}:{line.source_line})"
                account("acl_line", hostname, acl_name, index, label)
        for rm_name in sorted(device.route_maps):
            for clause in device.route_maps[rm_name].sorted_clauses():
                account(
                    "route_map_clause", hostname, rm_name, clause.seq,
                    f"{hostname}:{rm_name} seq {clause.seq}",
                )
    return CoverageReport(kinds=kinds, by_query=tracker.dump()["by_query"])
