"""Configuration coverage: which parts of a config an analysis touched.

Xu et al.'s *Test Coverage for Network Configurations* argues that the
right observability primitive for tools like Batfish is per-structure
(ultimately per-line) coverage: a reachability suite that never
exercises an ACL line says nothing about that line. This module tracks
"touches" of vendor-independent model structures as queries run:

* ``interface`` — a packet (symbolic or concrete) entered/left it,
* ``acl_line`` — the concrete evaluator matched it (implicit deny is
  index ``-1``),
* ``route_map_clause`` — policy evaluation matched the clause.

Touches are attributed to the innermost open :class:`~repro.obs.trace.Span`
(so a report can say *which question* exercised a structure) and carry
source provenance when the model has it. Totals come from walking a
:class:`~repro.config.model.Snapshot`, giving touched/total ratios per
structure kind — the coverage analogue of line/branch coverage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: kind, hostname, structure name, index-within-structure (or None).
CoverageKey = Tuple[str, str, str, Optional[int]]

KINDS = ("interface", "acl_line", "route_map_clause")


class CoverageTracker:
    """Accumulates structure touches; thread-safe, cheap when idle."""

    def __init__(self):
        self._lock = threading.Lock()
        self._touched: Dict[CoverageKey, int] = {}
        self._by_query: Dict[str, Dict[str, int]] = {}

    def touch(
        self,
        kind: str,
        hostname: str,
        name: str,
        index: Optional[int] = None,
        query: Optional[str] = None,
    ) -> None:
        key = (kind, hostname, name, index)
        with self._lock:
            self._touched[key] = self._touched.get(key, 0) + 1
            if query:
                per_kind = self._by_query.setdefault(query, {})
                per_kind[kind] = per_kind.get(kind, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self._touched.clear()
            self._by_query.clear()

    def invalidate_hosts(self, hostnames) -> int:
        """Drop all touches attributed to the given devices.

        The incremental delta engine calls this for dirty devices: their
        structures changed (or their routing context did), so previous
        touches no longer describe the current configuration. Touches on
        clean devices — and the per-query tallies, which describe past
        query executions rather than current structures — are kept.
        Returns the number of entries dropped.
        """
        hosts = set(hostnames)
        with self._lock:
            stale = [key for key in self._touched if key[1] in hosts]
            for key in stale:
                del self._touched[key]
        return len(stale)

    def touched_keys(self) -> List[CoverageKey]:
        with self._lock:
            return sorted(self._touched, key=_key_order)

    def dump(self) -> Dict[str, object]:
        """JSON-ready snapshot (keys rendered as strings)."""
        with self._lock:
            return {
                "touched": {
                    _render_key(key): count
                    for key, count in sorted(
                        self._touched.items(), key=lambda kv: _key_order(kv[0])
                    )
                },
                "by_query": {
                    query: dict(sorted(kinds.items()))
                    for query, kinds in sorted(self._by_query.items())
                },
            }

    def merge(self, dump: Dict[str, object]) -> None:
        """Fold a worker's :meth:`dump` back in (inverse of rendering)."""
        if not dump:
            return
        with self._lock:
            for rendered, count in dump.get("touched", {}).items():
                key = _parse_key(rendered)
                if key is not None:
                    self._touched[key] = self._touched.get(key, 0) + int(count)
            for query, kinds in dump.get("by_query", {}).items():
                per_kind = self._by_query.setdefault(query, {})
                for kind, count in kinds.items():
                    per_kind[kind] = per_kind.get(kind, 0) + int(count)


def _key_order(key: CoverageKey):
    kind, hostname, name, index = key
    return (kind, hostname, name, -1 if index is None else index)


def _render_key(key: CoverageKey) -> str:
    kind, hostname, name, index = key
    rendered = f"{kind}:{hostname}:{name}"
    return rendered if index is None else f"{rendered}:{index}"


def _parse_key(rendered: str) -> Optional[CoverageKey]:
    parts = rendered.split(":")
    if len(parts) == 3:
        return (parts[0], parts[1], parts[2], None)
    if len(parts) == 4:
        try:
            return (parts[0], parts[1], parts[2], int(parts[3]))
        except ValueError:
            return None
    return None


# ----------------------------------------------------------------------
# Reporting against a snapshot


@dataclass
class KindCoverage:
    kind: str
    touched: int
    total: int
    untouched: List[str] = field(default_factory=list)

    @property
    def pct(self) -> float:
        return 100.0 * self.touched / self.total if self.total else 0.0


@dataclass
class CoverageReport:
    """Touched/total per structure kind, with sample untouched labels."""

    kinds: Dict[str, KindCoverage]
    by_query: Dict[str, Dict[str, int]]

    def describe(self, max_untouched: int = 5) -> str:
        lines = []
        for kind in KINDS:
            cov = self.kinds[kind]
            lines.append(
                f"{kind:>17}: {cov.touched}/{cov.total} ({cov.pct:.0f}%)"
            )
            for label in cov.untouched[:max_untouched]:
                lines.append(f"{'':>19} untouched: {label}")
            hidden = len(cov.untouched) - max_untouched
            if hidden > 0:
                lines.append(f"{'':>19} ... and {hidden} more")
        return "\n".join(lines)


def coverage_report(tracker: CoverageTracker, snapshot) -> CoverageReport:
    """Compare touched structures against everything the snapshot defines."""
    touched = set()
    for kind, hostname, name, index in tracker.touched_keys():
        touched.add((kind, hostname, name, index))
    kinds: Dict[str, KindCoverage] = {
        kind: KindCoverage(kind=kind, touched=0, total=0) for kind in KINDS
    }

    def account(kind: str, hostname: str, name: str, index, label: str) -> None:
        cov = kinds[kind]
        cov.total += 1
        if (kind, hostname, name, index) in touched:
            cov.touched += 1
        else:
            cov.untouched.append(label)

    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface_name in sorted(device.interfaces):
            account(
                "interface", hostname, iface_name, None,
                f"{hostname}:{iface_name}",
            )
        for acl_name in sorted(device.acls):
            for index, line in enumerate(device.acls[acl_name].lines):
                label = f"{hostname}:{acl_name}#{index}"
                if line.source_line:
                    label += f" ({line.source_file}:{line.source_line})"
                account("acl_line", hostname, acl_name, index, label)
        for rm_name in sorted(device.route_maps):
            for clause in device.route_maps[rm_name].sorted_clauses():
                account(
                    "route_map_clause", hostname, rm_name, clause.seq,
                    f"{hostname}:{rm_name} seq {clause.seq}",
                )
    return CoverageReport(kinds=kinds, by_query=tracker.dump()["by_query"])
