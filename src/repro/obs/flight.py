"""Always-on flight recorder: the last N telemetry events, cheaply.

The paper's operational lesson (§5) is that failures in production are
mysterious precisely because nobody was tracing *at the time*: the
interesting request 504s once a day, and turning ``REPRO_TRACE`` on
after the fact records everything except the incident. The flight
recorder closes that gap the way an aircraft's does: a bounded ring
buffer of recent events that is **always running**, costing one dict
build and one ``deque.append`` per event (appends on a bounded deque
are O(1) and atomic under the GIL — no lock on the write path), and a
**postmortem bundle** snapshot taken at the moment something goes wrong
(job error, deadline expiry, delta fallback, SIGTERM) so the events
leading up to the failure are preserved even as the ring keeps rolling.

Two kinds of producers feed the ring:

* low-frequency *always-on* call sites (job lifecycle, pipeline phase
  boundaries, delta fallbacks, cache evictions) call :func:`record`
  directly — these run whether or not :mod:`repro.obs` tracing is
  enabled;
* when tracing *is* enabled, every span/metric trace event is mirrored
  into the ring by :mod:`repro.obs.trace`, so the recorder shows full
  detail during traced runs and coarse detail otherwise.

Every event carries the originating ``request_id`` (read from
:mod:`repro.obs.context` unless given explicitly), which is what makes
a bundle *attributable*: "the events of the request that died", not
"whatever the process was doing".

``REPRO_FLIGHT_EVENTS`` sizes the ring (default 4096 events);
``REPRO_FLIGHT_DUMP=/path.json`` dumps ring + bundles at interpreter
exit (the traced-pytest CI job uploads that file as an artifact).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.obs import context as _context

#: Default ring capacity; override with REPRO_FLIGHT_EVENTS.
DEFAULT_RING_EVENTS = 4096

#: Postmortem bundles retained in memory (oldest evicted first).
MAX_BUNDLES = 32


def _ring_limit() -> int:
    raw = os.environ.get("REPRO_FLIGHT_EVENTS", "").strip()
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_RING_EVENTS


class FlightRecorder:
    """The ring buffer plus its postmortem bundles."""

    def __init__(self, limit: Optional[int] = None):
        self._ring: deque = deque(maxlen=limit or _ring_limit())
        self._bundles: deque = deque(maxlen=MAX_BUNDLES)
        self._lock = threading.Lock()  # snapshots only, never the append path
        self._seq = 0
        self._dropped = 0
        #: Overhead-measurement escape hatch (benchmarks only).
        self.enabled = True

    # -- write path (hot, lock-free) -----------------------------------

    def record(self, kind: str, name: str, rid: Optional[str] = None, **fields) -> None:
        """Append one event. ``rid`` defaults to the active request id."""
        if not self.enabled:
            return
        event = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
        }
        if rid is None:
            rid = _context.current_request_id()
        if rid is not None:
            event["rid"] = rid
        if fields:
            event.update(fields)
        # seq is advisory (event ordering across threads); a lost
        # increment under contention is harmless, a lock here is not.
        self._seq += 1
        event["seq"] = self._seq
        if len(self._ring) == self._ring.maxlen:
            self._dropped += 1
        self._ring.append(event)

    def extend(self, events: Iterable[Dict]) -> None:
        """Fold in events shipped back from a pmap worker's ring."""
        if not self.enabled:
            return
        for event in events:
            if isinstance(event, dict):
                self._ring.append(event)

    # -- read path ------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> List[Dict]:
        with self._lock:
            events = list(self._ring)
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    def stats(self) -> Dict:
        return {
            "events": len(self._ring),
            "capacity": self._ring.maxlen,
            "dropped": self._dropped,
            "bundles": len(self._bundles),
        }

    # -- postmortems ----------------------------------------------------

    def snapshot_bundle(self, reason: str, **extra) -> Dict:
        """Freeze the current ring into a postmortem bundle.

        ``extra`` carries the failure-specific facts (the failed job's
        JSON, the delta fallback reason, cache stats, a profiler
        report). Returns the bundle; it is also retained (bounded) for
        ``GET /debug/flightrecorder`` and the drain-time disk dump.
        """
        with self._lock:
            bundle: Dict = {
                "reason": reason,
                "ts": time.time(),
                "rid": _context.current_request_id(),
                "events": list(self._ring),
            }
            if extra:
                bundle.update(extra)
            self._bundles.append(bundle)
        return bundle

    def bundles(self) -> List[Dict]:
        with self._lock:
            return list(self._bundles)

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._bundles.clear()
            self._seq = 0
            self._dropped = 0

    def dump(self) -> Dict:
        """JSON-ready snapshot of ring + bundles (the disk format)."""
        with self._lock:
            return {
                "schema": "repro-flightrecorder/v1",
                "pid": os.getpid(),
                "stats": self.stats(),
                "events": list(self._ring),
                "bundles": list(self._bundles),
            }

    def dump_to(self, path: str) -> None:
        """Write :meth:`dump` to ``path`` (best-effort: a failing dump
        must never mask the error that triggered it)."""
        try:
            with open(path, "w") as handle:
                json.dump(self.dump(), handle, indent=2, sort_keys=True, default=str)
                handle.write("\n")
        except OSError:
            pass


_RECORDER = FlightRecorder()


def recorder() -> FlightRecorder:
    return _RECORDER


def record(kind: str, name: str, rid: Optional[str] = None, **fields) -> None:
    """Module-level shorthand for :meth:`FlightRecorder.record`."""
    _RECORDER.record(kind, name, rid=rid, **fields)


def recent(limit: Optional[int] = None) -> List[Dict]:
    return _RECORDER.recent(limit)


def snapshot_bundle(reason: str, **extra) -> Dict:
    return _RECORDER.snapshot_bundle(reason, **extra)


def bundles() -> List[Dict]:
    return _RECORDER.bundles()


def reset() -> None:
    _RECORDER.reset()


def dump_path_from_env() -> Optional[str]:
    path = os.environ.get("REPRO_FLIGHT_DUMP", "").strip()
    return path or None
