"""The metrics half of :mod:`repro.obs`: named counters, gauges, and
histograms.

Instruments are identified by dotted string names (the full catalog is
documented in README's "Observability" section). The registry is a plain
dictionary triple guarded by one lock, so it is safe to update from any
thread; process-pool workers (:func:`repro.parallel.pmap`) run against
their own forked copy and ship a :meth:`Metrics.dump` back to the parent,
which :meth:`Metrics.merge`\\ s it — counters and histograms add, gauges
take the latest value.

The registry itself never formats strings or allocates beyond one dict
entry per instrument; the zero-cost-when-disabled guarantee lives one
level up, in the module-level helpers of :mod:`repro.obs.trace` that
early-return before reaching this module.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Histogram:
    """Streaming summary of one observed quantity (no stored samples)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def dump(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def merge(self, other: Dict[str, float]) -> None:
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("total", 0.0))
        low, high = float(other.get("min", 0.0)), float(other.get("max", 0.0))
        if self.min is None or low < self.min:
            self.min = low
        if self.max is None or high > self.max:
            self.max = high


class Metrics:
    """A registry of counters (monotonic), gauges (last value wins), and
    histograms (count/total/min/max summaries)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- updates ----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- reads ------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def top_counters(self, limit: int = 20) -> List:
        with self._lock:
            ranked = sorted(self._counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    # -- transport (worker merge, trace flush) ----------------------------

    def dump(self) -> Dict[str, Dict]:
        """JSON-ready snapshot with deterministically sorted keys."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.dump()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def merge(self, dump: Dict[str, Dict]) -> None:
        """Fold a worker's :meth:`dump` into this registry."""
        if not dump:
            return
        with self._lock:
            for name, value in dump.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in dump.get("gauges", {}).items():
                self._gauges[name] = value
            for name, summary in dump.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge(summary)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
