"""The metrics half of :mod:`repro.obs`: named counters, gauges, and
histograms — streaming summaries and fixed-bucket latency histograms.

Instruments are identified by dotted string names (the full catalog is
documented in README's "Observability" section). The registry is a plain
dictionary set guarded by one lock, so it is safe to update from any
thread; process-pool workers (:func:`repro.parallel.pmap`) run against
their own forked copy and ship a :meth:`Metrics.dump` back to the parent,
which :meth:`Metrics.merge`\\ s it.

Merge semantics are *defined*, per instrument kind:

* **counters** and **histograms** add — they are distributable sums, so
  merging is associative and order-independent;
* **gauges** are not distributable, so each gauge has a declared merge
  mode: ``"last"`` (last writer wins — right for "current depth"-style
  gauges where the parent's own value is authoritative) or ``"max"``
  (right for high-water marks). Worker dumps arrive in nondeterministic
  chunk-completion order, so :meth:`merge` with ``worker=True`` defaults
  undeclared gauges to ``max`` — the only order-independent choice —
  while trace-replay merges (:mod:`repro.obs.report`) keep last-write
  semantics for byte-compatibility with recorded streams.

Two histogram shapes coexist:

* :class:`Histogram` — count/total/min/max streaming summary, no stored
  samples; cheap, unlabeled, good for internal work counters;
* :class:`BucketHistogram` — fixed-boundary bucket counts with label
  sets (question/phase/disposition), the shape Prometheus exposition
  and p50/p95/p99 derivation need (:meth:`BucketHistogram.quantile`).

The registry itself never formats strings or allocates beyond one dict
entry per instrument; the zero-cost-when-disabled guarantee lives one
level up, in the module-level helpers of :mod:`repro.obs.trace` that
early-return before reaching this module.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets, in seconds — Prometheus-conventional
#: boundaries widened to cover both sub-millisecond BDD ops and
#: minutes-long data-plane generation on the largest networks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Canonical label-set key: sorted (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Streaming summary of one observed quantity (no stored samples)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def dump(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def merge(self, other: Dict[str, float]) -> None:
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("total", 0.0))
        low, high = float(other.get("min", 0.0)), float(other.get("max", 0.0))
        if self.min is None or low < self.min:
            self.min = low
        if self.max is None or high > self.max:
            self.max = high


class BucketHistogram:
    """Fixed-boundary bucket counts: the Prometheus histogram shape.

    ``counts[i]`` holds observations with ``value <= buckets[i]`` and
    greater than the previous boundary; ``counts[-1]`` is the overflow
    (``+Inf``) bucket. Buckets are per-instrument-fixed, so merging is
    element-wise addition and any scraper can aggregate across
    processes and derive quantiles.
    """

    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError("bucket histogram needs at least one boundary")
        self.buckets = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # +1 for +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``
        — exactly the ``_bucket{le=...}`` series of the exposition."""
        out: List[Tuple[float, int]] = []
        running = 0
        for boundary, count in zip(self.buckets, self.counts):
            running += count
            out.append((boundary, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by linear interpolation
        within the containing bucket — the same estimate
        ``histogram_quantile()`` computes server-side, so the number in
        BENCH json matches what a Prometheus dashboard would show."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for boundary, count in zip(self.buckets, self.counts):
            if running + count >= rank and count > 0:
                fraction = (rank - running) / count
                return lower + (boundary - lower) * fraction
            running += count
            lower = boundary
        # Overflow bucket: clamp to the largest finite boundary (no
        # upper edge to interpolate against).
        return self.buckets[-1]

    def dump(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    def merge(self, other: Dict) -> None:
        boundaries = tuple(float(b) for b in other.get("buckets", ()))
        counts = [int(c) for c in other.get("counts", ())]
        if len(counts) != len(boundaries) + 1:
            return  # malformed dump: drop rather than corrupt
        if boundaries == self.buckets:
            for i, c in enumerate(counts):
                self.counts[i] += c
        else:
            # Boundary skew (version drift): re-bucket by boundary value;
            # overflow observations stay overflow.
            for boundary, c in zip(boundaries, counts):
                if c:
                    self.counts[bisect_left(self.buckets, boundary)] += c
            self.counts[-1] += counts[-1]
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total", 0.0))


class Metrics:
    """A registry of counters (monotonic), gauges (declared merge mode),
    summary histograms, and labeled fixed-bucket histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._gauge_modes: Dict[str, str] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: name -> label-key -> BucketHistogram
        self._buckets: Dict[str, Dict[LabelKey, BucketHistogram]] = {}

    # -- updates ----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def declare_gauge(self, name: str, merge: str = "max") -> None:
        """Pin a gauge's worker-merge mode (``"max"`` or ``"last"``).

        Undeclared gauges merge with ``max`` from worker dumps (the
        deterministic default) and ``last`` from trace replays.
        """
        if merge not in ("max", "last"):
            raise ValueError(f"gauge merge mode must be max or last, got {merge!r}")
        with self._lock:
            self._gauge_modes[name] = merge

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def observe_bucket(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record ``value`` into the labeled bucket histogram ``name``.

        Label names/values become Prometheus labels verbatim (after
        sanitization), e.g. ``observe_bucket("service.request.seconds",
        0.21, question="routes", disposition="ok")``.
        """
        key = label_key(labels)
        with self._lock:
            family = self._buckets.get(name)
            if family is None:
                family = self._buckets[name] = {}
            histogram = family.get(key)
            if histogram is None:
                histogram = family[key] = BucketHistogram(buckets)
            histogram.observe(value)

    # -- reads ------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def bucket_histogram(
        self, name: str, **labels: str
    ) -> Optional[BucketHistogram]:
        with self._lock:
            family = self._buckets.get(name)
            if family is None:
                return None
            return family.get(label_key(labels))

    def bucket_families(self) -> Dict[str, Dict[LabelKey, BucketHistogram]]:
        """Shallow snapshot of the labeled histogram families (the
        exposition renderer and percentile derivation iterate this)."""
        with self._lock:
            return {name: dict(family) for name, family in self._buckets.items()}

    def top_counters(self, limit: int = 20) -> List:
        with self._lock:
            ranked = sorted(self._counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def percentiles(
        self, quantiles: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, Dict[str, float]]:
        """Per-family-and-label-set quantile estimates from the bucketed
        histograms, keyed ``name{label="value",...}`` (BENCH json and
        the report CLI consume this)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, family in sorted(self.bucket_families().items()):
            for key, histogram in sorted(family.items()):
                rendered = name
                if key:
                    rendered += (
                        "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"
                    )
                out[rendered] = {
                    f"p{int(q * 100)}": round(histogram.quantile(q), 6)
                    for q in quantiles
                }
                out[rendered]["count"] = histogram.count
        return out

    # -- transport (worker merge, trace flush) ----------------------------

    def dump(self) -> Dict[str, Dict]:
        """JSON-ready snapshot with deterministically sorted keys."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.dump()
                    for name, histogram in sorted(self._histograms.items())
                },
                "bucket_histograms": {
                    name: [
                        {"labels": dict(key), **histogram.dump()}
                        for key, histogram in sorted(family.items())
                    ]
                    for name, family in sorted(self._buckets.items())
                },
            }

    def merge(self, dump: Dict[str, Dict], worker: bool = False) -> None:
        """Fold a :meth:`dump` into this registry.

        ``worker=True`` marks a pmap worker dump: undeclared gauges
        merge with ``max`` so the result is independent of the order
        chunks complete in; ``worker=False`` (trace replay) keeps
        last-write-wins for undeclared gauges.
        """
        if not dump:
            return
        with self._lock:
            for name, value in dump.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in dump.get("gauges", {}).items():
                mode = self._gauge_modes.get(name, "max" if worker else "last")
                previous = self._gauges.get(name)
                if mode == "max" and previous is not None:
                    value = max(previous, value)
                self._gauges[name] = value
            for name, summary in dump.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge(summary)
            for name, entries in dump.get("bucket_histograms", {}).items():
                family = self._buckets.get(name)
                if family is None:
                    family = self._buckets[name] = {}
                for entry in entries:
                    key = label_key(entry.get("labels", {}))
                    histogram = family.get(key)
                    if histogram is None:
                        boundaries = entry.get("buckets") or DEFAULT_BUCKETS
                        histogram = family[key] = BucketHistogram(boundaries)
                    histogram.merge(entry)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._gauge_modes.clear()
            self._histograms.clear()
            self._buckets.clear()
