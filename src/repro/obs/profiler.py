"""Opt-in sampling profiler: periodic thread-stack snapshots.

When a job is slow in production the question is never "was it slow"
(the histograms say so) but "*where* was it slow" — and attaching a
deterministic profiler to a live service is exactly the 2x-overhead
bargain nobody takes. This sampler takes the aircraft-style trade
instead: a daemon thread wakes ``REPRO_PROFILE_HZ`` times a second,
walks every Python thread's current stack via
``sys._current_frames()``, and aggregates two views:

* **self** — the leaf frame (where the CPU actually is);
* **cumulative** — every frame on the stack (who is responsible).

Sampling cost is a few microseconds per thread per tick, independent of
how hot the profiled code is, so even 100 Hz stays far inside the
obs-overhead budget. The aggregated top-frames report is attached to
slow-job postmortem bundles (see :mod:`repro.service.jobs`) and
rendered by ``python -m repro.obs.report profile``.

Off by default; enable with ``REPRO_PROFILE_HZ=50`` in the service
environment or programmatically via :func:`start`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional


def hz_from_env() -> float:
    raw = os.environ.get("REPRO_PROFILE_HZ", "").strip()
    if not raw:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        return 0.0
    return value if value > 0 else 0.0


class SamplingProfiler:
    """A daemon thread sampling all Python stacks at a fixed rate."""

    def __init__(self, hz: float = 50.0, max_depth: int = 64):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = hz
        self.interval = 1.0 / hz
        self.max_depth = max_depth
        self.samples = 0
        self.started_ts: Optional[float] = None
        self._self_counts: Dict[str, int] = {}
        self._cumulative_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self.started_ts = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- sampling -------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(own_id)

    def _sample(self, skip_thread_id: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for thread_id, frame in frames.items():
                if thread_id == skip_thread_id:
                    continue
                depth = 0
                leaf = True
                seen = set()
                while frame is not None and depth < self.max_depth:
                    code = frame.f_code
                    key = (
                        f"{code.co_name} "
                        f"({os.path.basename(code.co_filename)}:{code.co_firstlineno})"
                    )
                    if leaf:
                        self._self_counts[key] = self._self_counts.get(key, 0) + 1
                        leaf = False
                    if key not in seen:  # recursion: count a frame once
                        seen.add(key)
                        self._cumulative_counts[key] = (
                            self._cumulative_counts.get(key, 0) + 1
                        )
                    frame = frame.f_back
                    depth += 1

    # -- reporting ------------------------------------------------------

    def report(self, top: int = 25) -> Dict:
        """JSON-ready top-frames report (attached to postmortems)."""
        with self._lock:
            samples = self.samples
            self_counts = dict(self._self_counts)
            cumulative = dict(self._cumulative_counts)

        def ranked(counts: Dict[str, int]) -> List[Dict]:
            rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
            return [
                {
                    "frame": frame,
                    "count": count,
                    "fraction": round(count / samples, 4) if samples else 0.0,
                }
                for frame, count in rows
            ]

        return {
            "schema": "repro-profile/v1",
            "hz": self.hz,
            "samples": samples,
            "duration_s": (
                round(time.time() - self.started_ts, 3) if self.started_ts else 0.0
            ),
            "self": ranked(self_counts),
            "cumulative": ranked(cumulative),
        }


def render_report(report: Dict) -> str:
    """Human rendering of a :meth:`SamplingProfiler.report` dict."""
    lines = [
        f"== sampling profile ({report.get('hz', '?')} Hz, "
        f"{report.get('samples', 0)} samples over "
        f"{report.get('duration_s', 0.0)}s) =="
    ]
    for section, title in (("self", "self (leaf frames)"),
                           ("cumulative", "cumulative (on-stack)")):
        lines.append(f"-- {title} --")
        rows = report.get(section, [])
        if not rows:
            lines.append("  (no samples)")
        for row in rows:
            lines.append(
                f"  {row.get('fraction', 0.0) * 100:5.1f}%  "
                f"{row.get('count', 0):>6}  {row.get('frame', '?')}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-global instance (the service wires this up)

_PROFILER: Optional[SamplingProfiler] = None


def start(hz: float) -> SamplingProfiler:
    """Start (or return) the process-global profiler."""
    global _PROFILER
    if _PROFILER is None or not _PROFILER.running:
        _PROFILER = SamplingProfiler(hz=hz).start()
    return _PROFILER


def maybe_start_from_env() -> Optional[SamplingProfiler]:
    """Start the global profiler iff ``REPRO_PROFILE_HZ`` is set."""
    hz = hz_from_env()
    if hz > 0:
        return start(hz)
    return None


def active() -> Optional[SamplingProfiler]:
    """The running global profiler, or None."""
    if _PROFILER is not None and _PROFILER.running:
        return _PROFILER
    return None


def stop() -> None:
    global _PROFILER
    if _PROFILER is not None:
        _PROFILER.stop()
        _PROFILER = None
