"""Prometheus text exposition (and its strict validator) for the
:class:`repro.obs.metrics.Metrics` registry.

The service's ``GET /metrics`` originally served a bespoke JSON dump —
readable by humans, invisible to every scraper on earth. This module
renders the registry into the Prometheus text exposition format
(version 0.0.4), the lingua franca any collector understands:

* dotted instrument names are sanitized to metric-name charset
  (``service.job.seconds`` → ``repro_service_job_seconds``), prefixed
  ``repro_`` so a shared scrape config can namespace us;
* counters gain the conventional ``_total`` suffix;
* summary :class:`Histogram`\\ s export ``_sum``/``_count`` (summary
  type without quantile lines — legal, and honest about what a
  min/max/mean summary can offer);
* :class:`BucketHistogram` families export full histogram series —
  cumulative ``_bucket{le=...}`` per label set, ``_sum``, ``_count`` —
  from which any scraper derives p50/p95/p99 per question/phase/
  disposition.

:func:`parse_exposition` is the strict validator the CI smoke job and
the tests run against the rendered text: unique families, HELP/TYPE
present and preceding samples, bucket ``le`` boundaries increasing,
cumulative bucket counts monotone, ``+Inf`` bucket equal to ``_count``.
Rendering through our own strict parser keeps us honest without
needing the real ``prometheus_client`` wheel in the container.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Metrics

#: Namespace prefix for every exported family.
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: HELP text per instrument-name prefix (best-effort; families without
#: an entry get a generated one — HELP must always be present).
_HELP: Dict[str, str] = {
    "service.request.seconds": "End-to-end question latency by question, phase, and disposition.",
    "phase.seconds": "Pipeline phase latency (parse/dataplane/bdd/delta/lint).",
    "service.job.seconds": "Job execution wall seconds.",
    "service.job.queue_seconds": "Time jobs spent queued before a worker picked them up.",
    "service.queue.depth": "Jobs currently waiting in the bounded queue.",
    "service.queue.oldest_age_seconds": "Age of the oldest queued job.",
    "slo.breaches": "Requests that exceeded their question's latency objective.",
    "slo.requests": "Requests evaluated against a latency objective.",
    "coverage.ratio": "Fraction of a structure kind's instances this question's runs touched.",
    "uncovered_stanzas": "Config structures across stored snapshots that no question touched.",
    "sweep.runs": "Resilience sweeps executed.",
    "sweep.scenarios": "Failure scenarios enumerated across all sweeps.",
    "sweep.scenarios_evaluated": "Scenarios actually simulated (not pruned).",
    "sweep.scenarios_pruned": "Scenarios whose verdict was proved without simulation.",
    "sweep.minimal_sets_found": "Minimal failing element sets reported by sweeps.",
    "sweep.delta_fallbacks": "Sweep scenarios whose delta analysis fell back to a full recompute.",
    "sweep.scenario.seconds": "Per-scenario simulation latency within sweeps.",
}


def sanitize_name(name: str) -> str:
    """Map a dotted instrument name onto the metric-name charset."""
    cleaned = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return PREFIX + cleaned


def sanitize_label(name: str) -> str:
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not _LABEL_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _render_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{sanitize_label(k)}="{_escape_label_value(str(v))}"' for k, v in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _help_for(raw_name: str) -> str:
    return _HELP.get(raw_name, f"repro metric {raw_name}.")


class _Family:
    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: List[str] = []

    def sample(self, suffix: str, labels: List[Tuple[str, str]], value: float) -> None:
        self.lines.append(
            f"{self.name}{suffix}{_render_labels(labels)} {_format_value(value)}"
        )

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
            *self.lines,
        ]


def render_exposition(
    metrics: Metrics,
    extra_counters: Optional[Dict[str, float]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
    extra_labeled_gauges: Optional[
        Dict[str, List[Tuple[Dict[str, str], float]]]
    ] = None,
) -> str:
    """Render the registry (plus service-supplied extras) as exposition
    text. Families are emitted in sorted order; colliding sanitized
    names merge into one family (same type wins; a type clash renames
    the latecomer) so the output never carries duplicate families."""
    families: Dict[str, _Family] = {}

    def family(raw: str, kind: str, suffix: str = "") -> _Family:
        name = sanitize_name(raw) + suffix
        existing = families.get(name)
        if existing is not None:
            if existing.kind != kind:
                # Sanitization collision across instrument kinds: keep
                # both, disambiguated — never emit a duplicate family.
                return family(raw + "_" + kind, kind, suffix)
            return existing
        made = families[name] = _Family(name, kind, _help_for(raw))
        return made

    dump = metrics.dump()
    for raw, value in sorted((extra_counters or {}).items()):
        family(raw, "counter", "_total").sample("", [], float(value))
    for raw, value in sorted(dump["counters"].items()):
        family(raw, "counter", "_total").sample("", [], float(value))
    for raw, value in sorted((extra_gauges or {}).items()):
        family(raw, "gauge").sample("", [], float(value))
    # Labeled gauge series (e.g. coverage.ratio{question, kind}) — the
    # registry's own gauges are unlabeled, so these only come from
    # service-supplied extras.
    for raw, samples in sorted((extra_labeled_gauges or {}).items()):
        fam = family(raw, "gauge")
        for labels, value in samples:
            fam.sample("", sorted(labels.items()), float(value))
    for raw, value in sorted(dump["gauges"].items()):
        family(raw, "gauge").sample("", [], float(value))
    for raw, summary in sorted(dump["histograms"].items()):
        fam = family(raw, "summary")
        fam.sample("_sum", [], float(summary["total"]))
        fam.sample("_count", [], float(summary["count"]))
    for raw, entries in sorted(dump["bucket_histograms"].items()):
        fam = family(raw, "histogram")
        for entry in entries:
            labels = sorted(entry.get("labels", {}).items())
            boundaries = entry["buckets"]
            running = 0
            for boundary, count in zip(boundaries, entry["counts"]):
                running += count
                fam.sample(
                    "_bucket",
                    labels + [("le", _format_value(float(boundary)))],
                    float(running),
                )
            fam.sample(
                "_bucket",
                labels + [("le", "+Inf")],
                float(running + entry["counts"][-1]),
            )
            fam.sample("_sum", labels, float(entry["total"]))
            fam.sample("_count", labels, float(entry["count"]))
    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict validation (tests + CI)


class ExpositionError(ValueError):
    """The exposition text violates the format contract."""


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+\d+)?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _base_family(sample_name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    if kind == "summary":
        for suffix in ("_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def parse_exposition(text: str) -> Dict[str, Dict]:
    """Parse (and strictly validate) exposition text.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value)]}}``. Raises :class:`ExpositionError` on: duplicate HELP or
    TYPE for a family, samples without a preceding TYPE, malformed
    sample lines, non-increasing histogram ``le`` boundaries,
    non-monotone cumulative bucket counts, a missing ``+Inf`` bucket,
    or ``+Inf`` disagreeing with ``_count``.
    """
    families: Dict[str, Dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ExpositionError(f"line {lineno}: malformed HELP")
            name = parts[2]
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if entry["help"] is not None:
                raise ExpositionError(f"line {lineno}: duplicate HELP for {name}")
            entry["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ExpositionError(f"line {lineno}: malformed TYPE")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(f"line {lineno}: unknown type {kind!r}")
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if entry["type"] is not None:
                raise ExpositionError(f"line {lineno}: duplicate TYPE for {name}")
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if not match:
            raise ExpositionError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ExpositionError(
                f"line {lineno}: bad sample value {raw_value!r}"
            ) from None
        owner = None
        for name, entry in families.items():
            if entry["type"] and sample_name == name:
                owner = name
                break
            if entry["type"] and _base_family(sample_name, entry["type"]) == name:
                owner = name
                break
        if owner is None:
            raise ExpositionError(
                f"line {lineno}: sample {sample_name!r} has no preceding TYPE"
            )
        families[owner]["samples"].append((sample_name, labels, value))
    for name, entry in families.items():
        if entry["type"] is None:
            raise ExpositionError(f"family {name}: missing TYPE")
        if entry["help"] is None:
            raise ExpositionError(f"family {name}: missing HELP")
        if entry["type"] == "histogram":
            _validate_histogram(name, entry["samples"])
    return families


def _validate_histogram(family: str, samples: List[Tuple[str, Dict, float]]) -> None:
    """Per-label-set: le increasing, cumulative counts monotone, +Inf
    present and equal to _count."""
    series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for sample_name, labels, value in samples:
        base_labels = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        if sample_name == family + "_bucket":
            le_raw = labels.get("le")
            if le_raw is None:
                raise ExpositionError(f"{family}: bucket sample without le")
            le = float(le_raw.replace("+Inf", "inf"))
            series.setdefault(base_labels, []).append((le, value))
        elif sample_name == family + "_count":
            counts[base_labels] = value
    for base_labels, buckets in series.items():
        boundaries = [le for le, _ in buckets]
        if boundaries != sorted(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ExpositionError(
                f"{family}{dict(base_labels)}: le boundaries not increasing"
            )
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise ExpositionError(
                f"{family}{dict(base_labels)}: cumulative bucket counts not monotone"
            )
        if not boundaries or boundaries[-1] != math.inf:
            raise ExpositionError(f"{family}{dict(base_labels)}: missing +Inf bucket")
        if base_labels in counts and values[-1] != counts[base_labels]:
            raise ExpositionError(
                f"{family}{dict(base_labels)}: +Inf bucket {values[-1]} != "
                f"_count {counts[base_labels]}"
            )
