"""Render a ``repro.obs`` JSONL trace: time tree, counters, coverage.

Usage::

    python -m repro.obs.report trace.jsonl [--strict] [--top N]

* the **span tree** aggregates spans by their name-path (parent names
  joined with ``/``), summing wall/CPU time and counting invocations —
  one line per distinct path, children indented under parents;
* **top counters**, **gauges**, and **histogram** summaries come from the
  trace's ``metrics`` events (merged across processes);
* the **coverage summary** shows touched/total per structure kind when a
  snapshot's coverage event is present;
* ``--strict`` exits non-zero when any span started but never closed
  (a ``start`` line without a matching ``span`` line, or a ``flush``
  event listing unclosed spans) or when a span's close timestamp
  precedes its start timestamp (a clock regression or corrupted merge)
  — the CI gate for leaked or inconsistent spans.

An ``explain`` subcommand renders provenance derivation trees::

    python -m repro.obs.report explain route --snapshot DIR NODE PREFIX
    python -m repro.obs.report explain flow --snapshot DIR NODE IFACE \
        --src-ip A --dst-ip B [--protocol tcp|udp|icmp] [--dst-port N]

Corrupt or half-written lines (a process died mid-write, interleaved
appends) are counted and skipped, never fatal: a damaged trace must
degrade to a partial report, not an exception.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Metrics


class TraceReport:
    """Parsed view of one JSONL trace file."""

    def __init__(self):
        self.spans: List[Dict] = []
        self.starts: Dict[Tuple[int, int], str] = {}  # (pid, id) -> name
        self.start_ts: Dict[Tuple[int, int], float] = {}  # (pid, id) -> ts
        self.ends: set = set()
        self.metrics = Metrics()
        self.coverage: Dict = {}
        self.flush_unclosed: List[str] = []
        self.corrupt_lines = 0
        self.total_lines = 0

    # -- ingestion --------------------------------------------------------

    def feed_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        self.total_lines += 1
        try:
            event = json.loads(line)
        except (json.JSONDecodeError, ValueError):
            self.corrupt_lines += 1
            return
        if not isinstance(event, dict):
            self.corrupt_lines += 1
            return
        kind = event.get("type")
        if kind == "start":
            key = (event.get("pid", 0), event.get("id", 0))
            self.starts[key] = event.get("name", "?")
            if isinstance(event.get("ts"), (int, float)):
                self.start_ts[key] = float(event["ts"])
        elif kind == "span":
            self.spans.append(event)
            self.ends.add((event.get("pid", 0), event.get("id", 0)))
        elif kind == "metrics":
            self.metrics.merge(event)
        elif kind == "coverage":
            self.coverage = event
        elif kind == "flush":
            self.flush_unclosed.extend(event.get("unclosed", []))

    @classmethod
    def from_file(cls, path: str) -> "TraceReport":
        report = cls()
        try:
            with open(path, errors="replace") as handle:
                for line in handle:
                    report.feed_line(line)
        except OSError as error:
            print(f"cannot read trace: {error}", file=sys.stderr)
        return report

    # -- analysis ---------------------------------------------------------

    def unclosed(self) -> List[str]:
        """Span names that started but never produced a close event."""
        leaked = [
            name
            for key, name in sorted(self.starts.items())
            if key not in self.ends
        ]
        return sorted(set(leaked) | set(self.flush_unclosed))

    def time_regressions(self) -> List[str]:
        """Spans whose close event carries a timestamp earlier than their
        start event's — impossible on a sane clock, so a symptom of clock
        regression or a corrupted multi-process merge."""
        bad: List[str] = []
        for event in self.spans:
            key = (event.get("pid", 0), event.get("id", 0))
            close_ts = event.get("ts")
            start_ts = self.start_ts.get(key)
            if (
                isinstance(close_ts, (int, float))
                and start_ts is not None
                and float(close_ts) < start_ts
            ):
                bad.append(
                    f"{event.get('name', '?')} (pid {key[0]}, id {key[1]}: "
                    f"closed {float(close_ts):.6f} < started {start_ts:.6f})"
                )
        return sorted(bad)

    def span_tree(self) -> List[Tuple[str, int, float, float]]:
        """Aggregated (path, count, wall_s, cpu_s) rows, tree-ordered.

        Spans are keyed by their name-path: the chain of ancestor span
        names joined with '/'. Identical paths aggregate (count goes up),
        so repeated phases (e.g. per-network pipelines) fold into one
        line each.
        """
        # Resolve each span's path through its parent chain, per process.
        by_id: Dict[Tuple[int, int], Dict] = {
            (event.get("pid", 0), event.get("id", 0)): event
            for event in self.spans
        }
        paths: Dict[Tuple[int, int], str] = {}

        def path_of(key: Tuple[int, int]) -> str:
            if key in paths:
                return paths[key]
            event = by_id[key]
            parent_key = (key[0], event.get("parent", 0))
            name = event.get("name", "?")
            if parent_key[1] == 0 or parent_key not in by_id:
                result = name
            else:
                result = f"{path_of(parent_key)}/{name}"
            paths[key] = result
            return result

        aggregated: Dict[str, List[float]] = {}
        order: List[str] = []
        for key in by_id:
            path = path_of(key)
            event = by_id[key]
            if path not in aggregated:
                aggregated[path] = [0, 0.0, 0.0]
                order.append(path)
            entry = aggregated[path]
            entry[0] += 1
            entry[1] += float(event.get("wall_s", 0.0))
            entry[2] += float(event.get("cpu_s", 0.0))
        # Tree order: parents before children, stable across runs.
        order.sort()
        return [
            (path, int(aggregated[path][0]), aggregated[path][1], aggregated[path][2])
            for path in order
        ]

    def coverage_summary(self) -> Dict:
        """The trace's coverage event as a JSON-ready section: distinct
        structures touched per kind, per-query kind tallies, and — when
        the trace carries per-question vectors — distinct structures per
        question (``lint/<rule>`` labels rolled up under ``lint``)."""
        touched = self.coverage.get("touched", {})
        per_kind: Dict[str, int] = {}
        for key in touched:
            kind = key.split(":", 1)[0]
            per_kind[kind] = per_kind.get(kind, 0) + 1
        merged_keys: Dict[str, set] = {}
        for label, vector in (self.coverage.get("vectors") or {}).items():
            # Distinct structures per top-level question: lint/<rule>
            # labels roll up, and a structure two rules both touch
            # counts once.
            merged_keys.setdefault(label.split("/", 1)[0], set()).update(vector)
        questions: Dict[str, Dict[str, int]] = {}
        for question, keys in merged_keys.items():
            kinds = questions.setdefault(question, {})
            for key in keys:
                kind = key.split(":", 1)[0]
                kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "touched_by_kind": dict(sorted(per_kind.items())),
            "by_query": {
                query: dict(sorted(kinds.items()))
                for query, kinds in sorted(
                    (self.coverage.get("by_query") or {}).items()
                )
            },
            "questions": {
                question: dict(sorted(kinds.items()))
                for question, kinds in sorted(questions.items())
            },
        }

    # -- rendering --------------------------------------------------------

    def to_json(self, top: int = 20) -> Dict:
        """The whole report as one JSON document (``--json``)."""
        dump = self.metrics.dump()
        return {
            "schema": "repro-obs-report/v1",
            "spans": [
                {
                    "path": path,
                    "count": count,
                    "wall_s": round(wall, 6),
                    "cpu_s": round(cpu, 6),
                }
                for path, count, wall, cpu in self.span_tree()
            ],
            "counters": dict(self.metrics.top_counters(top)),
            "gauges": dict(dump["gauges"]),
            "sweep": {
                name: value
                for name, value in sorted(dump["counters"].items())
                if name.startswith("sweep.")
            },
            "coverage": self.coverage_summary(),
            "events": {
                "lines": self.total_lines,
                "spans": len(self.spans),
                "corrupt": self.corrupt_lines,
            },
            "unclosed": self.unclosed(),
            "time_regressions": self.time_regressions(),
        }

    def render(self, top: int = 20) -> str:
        lines: List[str] = []
        rows = self.span_tree()
        lines.append("== span tree (wall seconds, aggregated by path) ==")
        if not rows:
            lines.append("  (no spans)")
        for path, count, wall, cpu in rows:
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            suffix = f" x{count}" if count > 1 else ""
            lines.append(
                f"  {'  ' * depth}{name:<{max(1, 40 - 2 * depth)}}"
                f" {wall:9.4f}s  cpu {cpu:8.4f}s{suffix}"
            )
        dump = self.metrics.dump()
        counters = self.metrics.top_counters(top)
        lines.append("")
        lines.append(f"== top counters (of {len(dump['counters'])}) ==")
        if not counters:
            lines.append("  (no counters)")
        for name, value in counters:
            lines.append(f"  {name:<44} {value:>12}")
        delta = {
            name: value
            for name, value in dump["counters"].items()
            if name.startswith("delta.")
        }
        if delta:
            lines.append("")
            lines.append("== incremental (delta) engine ==")
            runs = delta.get("delta.runs", 0)
            dirty = delta.get("delta.dirty_devices", 0)
            reused = delta.get("delta.reused_devices", 0)
            total = dirty + reused
            lines.append(f"  runs: {runs}, fallbacks to full recompute: "
                         f"{delta.get('delta.fallback_full', 0)}")
            if total:
                lines.append(
                    f"  devices re-simulated: {dirty}/{total} "
                    f"({100.0 * reused / total:.0f}% spliced through)"
                )
            lines.append(
                f"  parse memo hits: {delta.get('delta.parse_memo_hits', 0)}"
            )
        sweep = {
            name: value
            for name, value in dump["counters"].items()
            if name.startswith("sweep.")
        }
        if sweep:
            lines.append("")
            lines.append("== resilience sweeps ==")
            scenarios = sweep.get("sweep.scenarios", 0)
            pruned = sweep.get("sweep.scenarios_pruned", 0)
            lines.append(
                f"  runs: {sweep.get('sweep.runs', 0)}, scenarios: "
                f"{scenarios}, evaluated: "
                f"{sweep.get('sweep.scenarios_evaluated', 0)}"
            )
            if scenarios:
                lines.append(
                    f"  pruned: {pruned}/{scenarios} "
                    f"({100.0 * pruned / scenarios:.0f}%: "
                    f"{sweep.get('sweep.scenarios_pruned.disconnected', 0)} "
                    f"disconnected, "
                    f"{sweep.get('sweep.scenarios_pruned.cut', 0)} cut, "
                    f"{sweep.get('sweep.scenarios_pruned.fingerprint', 0)} "
                    f"fingerprint)"
                )
            lines.append(
                f"  minimal failing sets: "
                f"{sweep.get('sweep.minimal_sets_found', 0)}, "
                f"delta fallbacks: {sweep.get('sweep.delta_fallbacks', 0)}"
            )
        if dump["gauges"]:
            lines.append("")
            lines.append("== gauges ==")
            for name, value in dump["gauges"].items():
                lines.append(f"  {name:<44} {value:>12}")
        if dump["histograms"]:
            lines.append("")
            lines.append("== histograms ==")
            for name, summary in dump["histograms"].items():
                count = summary["count"] or 1
                lines.append(
                    f"  {name:<34} n={summary['count']:<8}"
                    f" mean={summary['total'] / count:.3f}"
                    f" min={summary['min']:.3f} max={summary['max']:.3f}"
                )
        touched = self.coverage.get("touched", {})
        if touched:
            lines.append("")
            lines.append("== config coverage (touched structures) ==")
            per_kind: Dict[str, int] = {}
            for key in touched:
                per_kind[key.split(":", 1)[0]] = (
                    per_kind.get(key.split(":", 1)[0], 0) + 1
                )
            for kind, count in sorted(per_kind.items()):
                lines.append(f"  {kind:<24} {count} distinct structures touched")
            by_query = self.coverage.get("by_query", {})
            for query, kinds in sorted(by_query.items()):
                rendered = ", ".join(
                    f"{kind}={count}" for kind, count in sorted(kinds.items())
                )
                lines.append(f"    {query}: {rendered}")
            questions = self.coverage_summary()["questions"]
            if questions:
                lines.append("  per-question attribution (distinct structures):")
                for question, kinds in questions.items():
                    rendered = ", ".join(
                        f"{kind}={count}"
                        for kind, count in sorted(kinds.items())
                    )
                    lines.append(f"    {question}: {rendered}")
        unclosed = self.unclosed()
        regressions = self.time_regressions()
        lines.append("")
        lines.append(
            f"events: {self.total_lines} lines,"
            f" {len(self.spans)} spans, {self.corrupt_lines} corrupt,"
            f" {len(unclosed)} unclosed, {len(regressions)} time regressions"
        )
        for name in unclosed:
            lines.append(f"  UNCLOSED: {name}")
        for detail in regressions:
            lines.append(f"  TIME REGRESSION: {detail}")
        return "\n".join(lines)


def _explain_main(argv: List[str]) -> int:
    """The ``explain`` subcommand: render derivation trees for a route
    or a flow over a snapshot directory (Stage 4, §4.4)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report explain",
        description="Render provenance derivation trees.",
    )
    sub = parser.add_subparsers(dest="what", required=True)
    route = sub.add_parser("route", help="why a node has (or lacks) a route")
    route.add_argument("--snapshot", required=True, help="config directory")
    route.add_argument("node")
    route.add_argument("prefix", help="e.g. 10.0.0.0/24")
    flow = sub.add_parser("flow", help="trace a flow with per-line detail")
    flow.add_argument("--snapshot", required=True, help="config directory")
    flow.add_argument("node", help="ingress node")
    flow.add_argument("interface", help="ingress interface")
    flow.add_argument("--src-ip", required=True)
    flow.add_argument("--dst-ip", required=True)
    flow.add_argument(
        "--protocol", default="tcp", choices=["tcp", "udp", "icmp"]
    )
    flow.add_argument("--src-port", type=int, default=0)
    flow.add_argument("--dst-port", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.core.session import Session

    session = Session.from_dir(args.snapshot)
    if args.what == "route":
        tree = session.explain_route(args.node, args.prefix)
        print(tree.render())
        return 0
    from repro.hdr import fields as f
    from repro.hdr.ip import Ip
    from repro.hdr.packet import Packet
    from repro.provenance import Flow

    proto = {
        "tcp": f.PROTO_TCP, "udp": f.PROTO_UDP, "icmp": f.PROTO_ICMP
    }[args.protocol]
    packet = Packet(
        src_ip=Ip(args.src_ip),
        dst_ip=Ip(args.dst_ip),
        ip_protocol=proto,
        src_port=args.src_port,
        dst_port=args.dst_port,
    )
    explanation = session.explain_flow(
        Flow(packet=packet, ingress_node=args.node, ingress_interface=args.interface)
    )
    print(explanation.render())
    return 0


def _profile_main(argv: List[str]) -> int:
    """The ``profile`` subcommand: render a sampling-profiler report.

    Accepts either a raw ``repro-profile/v1`` JSON file or a
    flight-recorder dump (``repro-flightrecorder/v1`` — the
    ``REPRO_FLIGHT_DUMP`` / drain-time artifact), in which case every
    postmortem bundle carrying an attached profile is rendered.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report profile",
        description="Render a repro.obs sampling-profiler report.",
    )
    parser.add_argument(
        "path", help="profile JSON or flight-recorder dump JSON"
    )
    args = parser.parse_args(argv)

    from repro.obs.profiler import render_report

    with open(args.path) as handle:
        payload = json.load(handle)
    if payload.get("schema") == "repro-profile/v1":
        print(render_report(payload))
        return 0
    rendered = 0
    for bundle in payload.get("bundles", []):
        profile = bundle.get("profile")
        if not profile:
            continue
        header = f"postmortem: {bundle.get('reason', '?')}"
        if bundle.get("rid"):
            header += f" rid={bundle['rid']}"
        print(header)
        print(render_report(profile))
        rendered += 1
    if not rendered:
        print(
            "no profile found (enable REPRO_PROFILE_HZ to attach profiles "
            "to postmortem bundles)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a repro.obs JSONL trace (or `explain` a "
        "route/flow derivation).",
    )
    parser.add_argument("trace", help="path to the trace.jsonl file")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on unclosed spans or span-timestamp regressions",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="number of counters to show"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report (spans, counters, coverage) as one JSON doc",
    )
    args = parser.parse_args(argv)
    report = TraceReport.from_file(args.trace)
    try:
        if args.json:
            print(json.dumps(report.to_json(top=args.top), indent=2))
        else:
            print(report.render(top=args.top))
    except BrokenPipeError:
        pass  # downstream pager closed early; the verdict still counts
    failures: List[str] = []
    if report.unclosed():
        failures.append(f"{len(report.unclosed())} unclosed span(s)")
    if report.time_regressions():
        failures.append(
            f"{len(report.time_regressions())} span timestamp regression(s)"
        )
    if args.strict and failures:
        print("STRICT: " + ", ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
