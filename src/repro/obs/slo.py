"""Declarative latency SLOs with error-budget accounting.

An SLO here is the operator's contract per question: "99% of ``routes``
requests finish within 2 seconds". The tracker turns each completed
job into a pass/breach verdict against the matching objective and keeps
the error-budget arithmetic any on-call page needs:

* ``requests`` / ``breaches`` counters per question (mirrored into the
  metrics registry as ``slo.requests``/``slo.breaches`` with a
  ``question`` label, so Prometheus alerting can burn-rate over them);
* ``budget_consumed`` — the fraction of the allowed breach budget
  already spent (1.0 = the SLO is blown for the current window);
* ``burn_rate`` — breach rate divided by allowed breach rate (the
  multi-window burn-rate alerting convention: >1 means the budget is
  being consumed faster than it accrues).

Objectives are plain data (question name → seconds, ``"*"`` as the
default), so they can come from :class:`ServiceConfig`, CLI flags
(``--slo routes=2.0``), or the ``REPRO_SLO`` environment variable
(``REPRO_SLO="*=30,routes=2"``). Errors always breach: a 500 inside
the objective is not a met objective.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from repro.obs.metrics import Metrics

#: Fallback objective when neither config nor env names one (seconds).
DEFAULT_OBJECTIVE_S = 30.0

#: Fallback success-ratio target (0.99 = 1% error budget).
DEFAULT_TARGET = 0.99


def objectives_from_env(raw: Optional[str] = None) -> Dict[str, float]:
    """Parse ``REPRO_SLO``-style ``"q=seconds,q2=seconds"`` strings.

    Malformed entries are skipped (a typo in an env var must not keep
    the service from booting); an empty result means "defaults only".
    """
    if raw is None:
        raw = os.environ.get("REPRO_SLO", "")
    objectives: Dict[str, float] = {}
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk or "=" not in chunk:
            continue
        question, _, seconds = chunk.partition("=")
        try:
            value = float(seconds)
        except ValueError:
            continue
        if value > 0:
            objectives[question.strip()] = value
    return objectives


class SloTracker:
    """Evaluates completed requests against per-question objectives."""

    def __init__(
        self,
        objectives: Optional[Dict[str, float]] = None,
        target: float = DEFAULT_TARGET,
        metrics: Optional[Metrics] = None,
    ):
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        self.objectives = dict(objectives or {})
        self.target = target
        self._metrics = metrics
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._breaches: Dict[str, int] = {}

    def objective_for(self, question: str) -> float:
        return self.objectives.get(
            question, self.objectives.get("*", DEFAULT_OBJECTIVE_S)
        )

    def record(self, question: str, seconds: float, error: bool = False) -> bool:
        """Score one completed request; returns True when it breached."""
        objective = self.objective_for(question)
        breached = error or seconds > objective
        with self._lock:
            self._requests[question] = self._requests.get(question, 0) + 1
            if breached:
                self._breaches[question] = self._breaches.get(question, 0) + 1
        if self._metrics is not None:
            self._metrics.observe_bucket(
                "slo.request.seconds", seconds, question=question,
                breached="true" if breached else "false",
            )
            self._metrics.inc(f"slo.requests.{question}")
            if breached:
                self._metrics.inc(f"slo.breaches.{question}")
        return breached

    def payload(self) -> Dict[str, Dict]:
        """Per-question SLO status for ``/metrics`` (JSON mode)."""
        with self._lock:
            questions = sorted(self._requests)
            requests = dict(self._requests)
            breaches = dict(self._breaches)
        out: Dict[str, Dict] = {}
        for question in questions:
            total = requests.get(question, 0)
            breached = breaches.get(question, 0)
            allowed = total * (1.0 - self.target)
            out[question] = {
                "objective_seconds": self.objective_for(question),
                "target": self.target,
                "requests": total,
                "breaches": breached,
                "budget_consumed": (
                    round(breached / allowed, 4) if allowed > 0 else
                    (0.0 if breached == 0 else float("inf"))
                ),
                "burn_rate": (
                    round((breached / total) / (1.0 - self.target), 4)
                    if total else 0.0
                ),
            }
        return out

    def gauges(self) -> Dict[str, float]:
        """Gauge-shaped view for the Prometheus exposition."""
        out: Dict[str, float] = {}
        for question, status in self.payload().items():
            consumed = status["budget_consumed"]
            if consumed == float("inf"):
                consumed = -1.0  # exposition-friendly sentinel
            out[f"slo.budget_consumed.{question}"] = consumed
            out[f"slo.objective_seconds.{question}"] = status["objective_seconds"]
        return out

    def reset(self) -> None:
        with self._lock:
            self._requests.clear()
            self._breaches.clear()
