"""Tracing core: spans, the trace buffer, and the module-level switch.

Everything in :mod:`repro.obs` hangs off one process-global
:class:`_ObsState`. Tracing is **off by default** and the instrumented
hot paths all guard through :func:`enabled` / the early-returning
helpers below, so a disabled run pays one attribute read and a falsy
branch per instrumentation point — no string formatting, no allocation
(the < 2% overhead budget of the benchmarks).

Enabling:

* ``REPRO_TRACE=/path/trace.jsonl`` in the environment enables tracing
  at import time and streams events to that file as JSON lines;
* :func:`enable` (or ``Session(trace=...)``) does the same
  programmatically; with no path, events only fill the bounded
  in-memory buffer.

Span events are written twice — a ``start`` line when the span opens and
a ``span`` line (with wall/CPU durations) when it closes — so a trace
whose process died mid-span still shows *what was running*, and the
report CLI can flag unclosed spans (the CI gate). Every line carries the
emitting ``pid``: process-pool workers inherit the open sink across
``fork`` and append their own lines (single-``write`` appends to an
``O_APPEND`` stream), while their metrics/coverage deltas are merged
back explicitly by :func:`repro.parallel.pmap`.

Event content is deterministic modulo timestamps: names, attributes,
nesting, and per-process sequence ids repeat exactly across runs of the
same analysis.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs import context, flight as _flight
from repro.obs.context import current_request_id
from repro.obs.coverage import CoverageTracker
from repro.obs.metrics import Metrics

#: In-memory event cap; file sinks are unbounded (append-only).
_BUFFER_LIMIT = 200_000


class _ObsState:
    def __init__(self):
        self.enabled = False
        #: Metrics-only switch: the service flips this at boot so
        #: counters/histograms populate without span tracing (spans stay
        #: zero-cost; metric updates are one dict op behind a lock).
        self.metrics_enabled = False
        self.trace_path: Optional[str] = None
        self.sink: Optional[io.TextIOBase] = None
        self.lock = threading.Lock()
        self.buffer = deque(maxlen=_BUFFER_LIMIT)
        self.metrics = Metrics()
        self.coverage = CoverageTracker()
        self.next_span_id = 0
        self.open_spans: Dict[int, str] = {}
        self.tls = threading.local()

    def stack(self) -> List["Span"]:
        stack = getattr(self.tls, "stack", None)
        if stack is None:
            stack = self.tls.stack = []
        return stack


_STATE = _ObsState()


def _reinit_locks_after_fork() -> None:
    """Replace every obs lock with a fresh one in fork children.

    A ``pmap`` fork can happen while other threads (HTTP handlers, the
    job-queue workers) hold the metrics/flight/trace locks; the child
    inherits those locks *in their held state* with no thread left to
    release them, so its first instrumented call would deadlock. The
    child is single-threaded at this point, so swapping in new locks is
    safe — and mandatory before :func:`repro.parallel._invoke_chunk_obs`
    resets the registries.
    """
    _STATE.lock = threading.Lock()
    _STATE.metrics._lock = threading.Lock()
    _STATE.coverage._lock = threading.Lock()
    _flight.recorder()._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # posix only; fork implies posix
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


def enabled() -> bool:
    """The module-level switch every instrumentation point guards on."""
    return _STATE.enabled


def metrics_enabled() -> bool:
    """Whether the metrics-only switch is on (the service mode)."""
    return _STATE.metrics_enabled


def active() -> bool:
    """True when any metric-collecting mode is on (tracing or
    metrics-only) — the guard for metric/coverage helpers and the
    pmap worker-dump machinery."""
    return _STATE.enabled or _STATE.metrics_enabled


def enable_metrics() -> None:
    """Turn on metric/coverage collection without span tracing.

    The long-lived service calls this at boot: ``/metrics`` must be
    populated for every deployment, while full span tracing stays an
    explicit opt-in (``REPRO_TRACE`` / ``--trace``)."""
    _STATE.metrics_enabled = True


def trace_path() -> Optional[str]:
    return _STATE.trace_path


def enable(trace: Optional[str] = None) -> None:
    """Turn instrumentation on, optionally streaming to a JSONL file."""
    with _STATE.lock:
        if trace and trace != _STATE.trace_path:
            if _STATE.sink is not None:
                try:
                    _STATE.sink.close()
                except OSError:
                    pass
            # Line-buffered append: one write per event line, safe to
            # share with forked workers.
            _STATE.sink = open(trace, "a", buffering=1)
            _STATE.trace_path = trace
        _STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off and detach any file sink."""
    with _STATE.lock:
        _STATE.enabled = False
        _STATE.metrics_enabled = False
        if _STATE.sink is not None:
            try:
                _STATE.sink.close()
            except OSError:
                pass
        _STATE.sink = None
        _STATE.trace_path = None


def reset() -> None:
    """Drop all collected events, metrics, coverage, and the flight
    recorder's ring (not the switches)."""
    with _STATE.lock:
        _STATE.buffer.clear()
        _STATE.open_spans.clear()
        _STATE.next_span_id = 0
    _STATE.metrics.reset()
    _STATE.coverage.reset()
    _flight.reset()


def _emit(event: Dict) -> None:
    """Record one event in the buffer and, when streaming, the file.

    Every traced event is also mirrored into the always-on flight
    recorder ring, so a postmortem bundle taken during a traced run
    carries full span detail."""
    line = None
    sink = _STATE.sink
    if sink is not None:
        line = json.dumps(event, sort_keys=True, default=str)
    _flight.recorder().record(
        "trace", event.get("name", event.get("type", "?")), **{
            key: value for key, value in event.items() if key != "name"
        }
    )
    with _STATE.lock:
        _STATE.buffer.append(event)
        if sink is not None and line is not None:
            try:
                sink.write(line + "\n")
            except (OSError, ValueError):
                # A broken sink must never take down analysis; fall back
                # to buffer-only operation.
                _STATE.sink = None


# ----------------------------------------------------------------------
# Spans


class Span:
    """A named, nestable timing scope.

    Always measures wall and CPU time; records trace events only while
    the subsystem is enabled. Use via :func:`span` on hot paths (which
    returns a shared no-op object when disabled) or directly when the
    timing itself is the product (the benchmark harness does this).
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "depth",
        "_wall_start", "_cpu_start", "wall_s", "cpu_s", "_recording",
    )

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self.depth = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._recording = False

    def set(self, key: str, value) -> None:
        """Attach an attribute (must be JSON-serializable or str()-able)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._recording = _STATE.enabled
        if self._recording:
            stack = _STATE.stack()
            with _STATE.lock:
                _STATE.next_span_id += 1
                self.span_id = _STATE.next_span_id
                _STATE.open_spans[self.span_id] = self.name
            self.parent_id = stack[-1].span_id if stack else 0
            self.depth = len(stack)
            stack.append(self)
            event = {
                "type": "start",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "ts": round(time.time(), 6),
            }
            rid = current_request_id()
            if rid is not None:
                event["rid"] = rid
            _emit(event)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start
        if self._recording:
            stack = _STATE.stack()
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # tolerate out-of-order exits
                stack.remove(self)
            with _STATE.lock:
                _STATE.open_spans.pop(self.span_id, None)
            event = {
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "depth": self.depth,
                "pid": os.getpid(),
                "ts": round(time.time(), 6),
                "wall_s": round(self.wall_s, 6),
                "cpu_s": round(self.cpu_s, 6),
            }
            rid = current_request_id()
            if rid is not None:
                event["rid"] = rid
            if exc_type is not None:
                event["error"] = exc_type.__name__
            if self.attrs:
                event["attrs"] = {
                    key: self.attrs[key] for key in sorted(self.attrs)
                }
            _emit(event)


class _NullSpan:
    """Shared do-nothing span for disabled runs (no per-call allocation)."""

    __slots__ = ()
    wall_s = 0.0
    cpu_s = 0.0

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A recording :class:`Span` when enabled, a shared no-op otherwise."""
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, **attrs)


def current_span_name() -> Optional[str]:
    """Name of the innermost open span on this thread (query attribution)."""
    stack = getattr(_STATE.tls, "stack", None)
    return stack[-1].name if stack else None


def unclosed_spans() -> List[str]:
    """Names of spans opened but not yet closed (ideally always empty)."""
    with _STATE.lock:
        return sorted(_STATE.open_spans.values())


# ----------------------------------------------------------------------
# Metric and coverage helpers (the hot-path entry points)


def add(name: str, value: int = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.metrics.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample (no-op while disabled)."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.metrics.observe(name, value)


def observe_bucket(name: str, value: float, **labels: str) -> None:
    """Record a labeled fixed-bucket histogram sample (no-op while
    disabled) — the series Prometheus exposition derives p50/p95/p99
    from."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.metrics.observe_bucket(name, value, **labels)


def observe_phase(phase: str, seconds: float) -> None:
    """Record one pipeline-phase latency sample (parse / dataplane /
    bdd / delta / lint) into the labeled ``phase.seconds`` histogram,
    and mirror a coarse event into the always-on flight recorder."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.metrics.observe_bucket("phase.seconds", seconds, phase=phase)
    _flight.recorder().record("phase", phase, wall_s=round(seconds, 6))


def touch(kind: str, hostname: str, name: str, index: Optional[int] = None) -> None:
    """Record a config-coverage touch (no-op while disabled).

    Attribution prefers the question label riding the request context
    (it survives the job queue's thread hop and ``pmap``'s fork
    boundary) and falls back to the innermost open span's name, which
    only exists on the thread that opened it."""
    if _STATE.enabled or _STATE.metrics_enabled:
        _STATE.coverage.touch(
            kind, hostname, name, index,
            query=context.current_question() or current_span_name(),
        )


def metrics() -> Metrics:
    return _STATE.metrics


def coverage() -> CoverageTracker:
    return _STATE.coverage


def metrics_dump() -> Dict:
    return _STATE.metrics.dump()


def merge_worker_dump(dump: Dict) -> None:
    """Fold a pmap worker's ``{"metrics": ..., "coverage": ...,
    "flight": ...}`` delta in. Gauges merge with their declared modes
    (default ``max`` — chunk completion order is nondeterministic, so
    last-write-wins would be too); flight-recorder events append to the
    parent's ring, keeping their worker-side ``rid`` attribution."""
    if not dump:
        return
    _STATE.metrics.merge(dump.get("metrics", {}), worker=True)
    _STATE.coverage.merge(dump.get("coverage", {}))
    _flight.recorder().extend(dump.get("flight", ()))


def worker_dump() -> Dict:
    """A worker's outbound delta (its registries are reset per chunk)."""
    return {
        "metrics": _STATE.metrics.dump(),
        "coverage": _STATE.coverage.dump(),
        "flight": _flight.recent(),
    }


def events() -> List[Dict]:
    """The in-memory event buffer (mostly for tests and the report API)."""
    with _STATE.lock:
        return list(_STATE.buffer)


def flush() -> None:
    """Append the metrics/coverage snapshot (and unclosed-span list) to
    the trace. Safe to call repeatedly; also runs at interpreter exit
    when tracing was enabled from the environment."""
    if not (_STATE.enabled or _STATE.sink is not None):
        return
    _emit({"type": "metrics", **_STATE.metrics.dump()})
    _emit({"type": "coverage", **_STATE.coverage.dump()})
    _emit({"type": "flush", "pid": os.getpid(), "unclosed": unclosed_spans()})


def _configure_from_env() -> None:
    path = os.environ.get("REPRO_TRACE", "").strip()
    if path:
        enable(trace=path)
        atexit.register(flush)
    dump_path = _flight.dump_path_from_env()
    if dump_path:
        # REPRO_FLIGHT_DUMP: persist the flight-recorder ring + bundles
        # at interpreter exit (CI uploads this as an artifact).
        atexit.register(
            lambda: _flight.recorder().dump_to(dump_path)
        )


_configure_from_env()
