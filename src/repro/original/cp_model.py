"""The original, Datalog-encoded control-plane model (§2, Stage 2).

Configurations are translated to logical facts — "if the configuration
of node N declared an OSPF link cost of 500 on interface I, then we
produced the Datalog fact OspfCost(N, I, 500)" — and recursive rules
derive routes until fixed point, producing the data plane as
``Forward(node, prefix, neighbor)`` / ``Fib`` facts.

This model has the authentic limitations of Lesson 1:

* routes for *all* cost values up to a bound are derived and retained
  (the engine cannot forget sub-optimal intermediates; best-route
  selection happens in a later stratum via negation);
* there is no way to order evaluation (e.g. statics before OSPF
  externals) — everything is one big fixed point;
* feature coverage is limited to what the original supported
  (connected, static, single-area OSPF) — the paper notes "the original
  code does not support the configuration features of our other real
  networks", which is why Figure 3 uses NET1 only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.config.model import Snapshot
from repro.hdr.ip import Prefix
from repro.original.datalog import DatalogEngine, Rule, Var, add, atom, le, lt, ne
from repro.routing.ospf import interface_cost
from repro.routing.topology import build_layer3_topology

#: Costs are explored only up to this bound — the classic trick to keep
#: a recursive cost computation finite without aggregation support.
#: Every cost value below the bound yields a distinct retained fact
#: (cyclic topologies derive routes that loop the ring several times),
#: which is the Lesson 1 memory/performance pathology in miniature.
#: LogicBlox's aggregation extensions softened but did not remove this.
MAX_COST = 128


@dataclass
class DatalogDataPlane:
    """The data plane as derived by the Datalog model."""

    engine: DatalogEngine
    #: (node, prefix, next_hop_node) facts.
    forwards: Set[Tuple[str, Prefix, str]]
    #: (node, prefix) pairs that are null-routed.
    drops: Set[Tuple[str, Prefix]]
    total_facts: int
    facts_derived: int


def populate_facts(engine: DatalogEngine, snapshot: Snapshot) -> None:
    """Stage 1 (original): translate configurations into Datalog facts."""
    topology = build_layer3_topology(snapshot)
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        engine.add_fact("Node", hostname)
        for iface in sorted(device.interfaces.values(), key=lambda i: i.name):
            if not iface.enabled or iface.prefix is None:
                continue
            prefix = iface.prefix
            engine.add_fact(
                "InterfacePrefix", hostname, iface.name, prefix
            )
            engine.add_fact("ConnectedRoute", hostname, prefix)
            if iface.ospf_enabled and device.ospf is not None:
                engine.add_fact(
                    "OspfCost",
                    hostname,
                    iface.name,
                    interface_cost(device, iface.name),
                )
                engine.add_fact("OspfPrefix", hostname, prefix)
        for static in device.static_routes:
            if static.is_null_routed:
                engine.add_fact("NullRoute", hostname, static.prefix)
            elif static.next_hop_ip is not None:
                engine.add_fact(
                    "StaticRoute", hostname, static.prefix, static.next_hop_ip
                )
    for edge in topology.edges():
        tail_device = snapshot.device(edge.tail.node)
        head_iface = snapshot.device(edge.head.node).interfaces[
            edge.head.interface
        ]
        engine.add_fact(
            "Link", edge.tail.node, edge.tail.interface,
            edge.head.node, edge.head.interface,
        )
        engine.add_fact("NeighborIp", edge.tail.node, edge.head_ip, edge.head.node)
        tail_iface = tail_device.interfaces[edge.tail.interface]
        if (
            tail_iface.ospf_enabled
            and head_iface.ospf_enabled
            and not tail_iface.ospf_passive
            and not head_iface.ospf_passive
            and tail_iface.ospf_area == head_iface.ospf_area
            and tail_device.ospf is not None
            and snapshot.device(edge.head.node).ospf is not None
        ):
            engine.add_fact(
                "OspfAdjacency", edge.tail.node, edge.tail.interface, edge.head.node
            )


def install_rules(engine: DatalogEngine) -> None:
    """Stage 2 (original): the recursive control-plane rules."""
    N, M, I, J, P, C, C2, D, NH = (
        Var("N"), Var("M"), Var("I"), Var("J"), Var("P"),
        Var("C"), Var("C2"), Var("D"), Var("NH"),
    )
    # --- OSPF: route costs propagate hop by hop (all costs retained). --
    # OspfRoute(N, P, C, M): N reaches prefix P with cost C via next-hop
    # node M.
    engine.add_rule(Rule(
        head=atom("OspfRoute", N, P, C, M),
        body=[atom("OspfAdjacency", N, I, M), atom("OspfPrefix", M, P),
              atom("OspfCost", N, I, C)],
        negated=[atom("ConnectedRoute", N, P)],
    ))
    engine.add_rule(Rule(
        head=atom("OspfRoute", N, P, C, M),
        body=[atom("OspfAdjacency", N, I, M),
              atom("OspfRoute", M, P, C2, Var("K")),
              atom("OspfCost", N, I, D)],
        negated=[atom("ConnectedRoute", N, P)],
        builtins=[add(D, C2, C), le(C, MAX_COST)],
    ))
    # Best OSPF cost via stratified negation.
    engine.add_rule(Rule(
        head=atom("BetterOspf", N, P, C),
        body=[atom("OspfRoute", N, P, C, M), atom("OspfRoute", N, P, C2, Var("K"))],
        builtins=[lt(C2, C)],
    ))
    engine.add_rule(Rule(
        head=atom("BestOspf", N, P, C, M),
        body=[atom("OspfRoute", N, P, C, M)],
        negated=[atom("BetterOspf", N, P, C)],
    ))
    # --- Static routes resolve their next hop to a neighbor node. ------
    engine.add_rule(Rule(
        head=atom("StaticForward", N, P, M),
        body=[atom("StaticRoute", N, P, NH), atom("NeighborIp", N, NH, M)],
    ))
    # --- Admin distance: connected > static > ospf. --------------------
    engine.add_rule(Rule(
        head=atom("HasStatic", N, P),
        body=[atom("StaticForward", N, P, M)],
    ))
    engine.add_rule(Rule(
        head=atom("HasStatic", N, P),
        body=[atom("NullRoute", N, P)],
    ))
    engine.add_rule(Rule(
        head=atom("Forward", N, P, M),
        body=[atom("StaticForward", N, P, M)],
        negated=[atom("ConnectedRoute", N, P)],
    ))
    engine.add_rule(Rule(
        head=atom("Forward", N, P, M),
        body=[atom("BestOspf", N, P, C, M)],
        negated=[atom("ConnectedRoute", N, P), atom("HasStatic", N, P)],
    ))
    engine.add_rule(Rule(
        head=atom("Drop", N, P),
        body=[atom("NullRoute", N, P)],
        negated=[atom("ConnectedRoute", N, P)],
    ))


def compute_dataplane_datalog(snapshot: Snapshot) -> DatalogDataPlane:
    """Derive the data plane with the original Datalog pipeline."""
    engine = DatalogEngine()
    populate_facts(engine, snapshot)
    install_rules(engine)
    engine.run()
    forwards = {
        (node, prefix, neighbor)
        for node, prefix, neighbor in engine.facts("Forward")
    }
    drops = {(node, prefix) for node, prefix in engine.facts("Drop")}
    return DatalogDataPlane(
        engine=engine,
        forwards=forwards,
        drops=drops,
        total_facts=engine.total_facts(),
        facts_derived=engine.total_facts_derived,
    )
