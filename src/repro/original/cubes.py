"""Difference-of-cubes header-space sets (the HSA/NoD-era baseline).

Before the BDD engine, scalable data-plane tools represented packet
sets with custom structures such as differences of cubes [HSA] and
ddNF. A *cube* is a ternary match over the packed header bits (each bit
0, 1, or wildcard); a set is a union of cubes, each carrying a list of
subtracted cubes.

This representation is the §6/Figure-3 verification baseline: it is
easy to build but lacks canonicity — equality needs emptiness checks,
subtraction accumulates difference terms, and there is no cross-
operation cache — which is precisely the performance gap BDDs close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.config.model import Acl, Action
from repro.hdr import fields as hdr_fields
from repro.hdr.ip import Prefix
from repro.hdr.packet import Packet

# Packed header layout for the cube engine: the five fields the
# original verification queries constrained.
_FIELDS: Tuple[Tuple[str, int], ...] = (
    (hdr_fields.DST_IP, 32),
    (hdr_fields.SRC_IP, 32),
    (hdr_fields.IP_PROTOCOL, 8),
    (hdr_fields.SRC_PORT, 16),
    (hdr_fields.DST_PORT, 16),
)
TOTAL_BITS = sum(width for _name, width in _FIELDS)
_OFFSETS = {}
_offset = 0
for _name, _width in _FIELDS:
    _OFFSETS[_name] = (_offset, _width)
    _offset += _width
_FULL_MASK = (1 << TOTAL_BITS) - 1


@dataclass(frozen=True)
class Cube:
    """A ternary match: bit i matters iff mask bit is 1, then must equal
    the corresponding value bit."""

    value: int
    mask: int

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        common = self.mask & other.mask
        if (self.value ^ other.value) & common:
            return None
        return Cube(
            (self.value & self.mask) | (other.value & other.mask),
            self.mask | other.mask,
        )

    def contains_cube(self, other: "Cube") -> bool:
        """True if every packet in `other` is in `self`."""
        if self.mask & ~other.mask & _FULL_MASK:
            return False
        return not ((self.value ^ other.value) & self.mask)

    def matches(self, packed: int) -> bool:
        return not ((packed ^ self.value) & self.mask)

    @property
    def wildcard_bits(self) -> int:
        return TOTAL_BITS - bin(self.mask).count("1")


FULL_CUBE = Cube(0, 0)


def field_cube(field_name: str, value: int, prefix_bits: Optional[int] = None) -> Cube:
    """A cube constraining one field (optionally only its top bits)."""
    offset, width = _OFFSETS[field_name]
    bits = width if prefix_bits is None else prefix_bits
    if bits == 0:
        return FULL_CUBE
    field_mask = ((1 << bits) - 1) << (width - bits)
    return Cube(
        (value & field_mask) << offset,
        field_mask << offset,
    )


def prefix_cube(field_name: str, prefix: Prefix) -> Cube:
    return field_cube(field_name, prefix.network.value, prefix.length)


def pack_packet(packet: Packet) -> int:
    packed = 0
    for name, _width in _FIELDS:
        offset, width = _OFFSETS[name]
        packed |= (packet.field_value(name) & ((1 << width) - 1)) << offset
    return packed


@dataclass(frozen=True)
class DiffCube:
    """One union term: a base cube minus a list of subtracted cubes."""

    base: Cube
    minus: Tuple[Cube, ...] = ()

    def is_empty(self) -> bool:
        """Empty iff the subtracted cubes cover the base cube.

        Exact check via recursive splitting on a distinguishing bit —
        the expensive operation that BDD canonicity avoids.
        """
        return _covered(self.base, list(self.minus))

    def matches(self, packed: int) -> bool:
        if not self.base.matches(packed):
            return False
        return not any(cube.matches(packed) for cube in self.minus)


def _covered(base: Cube, minus: List[Cube]) -> bool:
    relevant = []
    for cube in minus:
        clipped = cube.intersect(base)
        if clipped is None:
            continue
        if clipped.contains_cube(base):
            return True
        relevant.append(clipped)
    if not relevant:
        return False
    # Split on a bit constrained by some subtracted cube but not by base.
    split_bit = None
    for cube in relevant:
        free = cube.mask & ~base.mask & _FULL_MASK
        if free:
            split_bit = free & -free
            break
    if split_bit is None:
        return False  # all relevant cubes equal base scope but none contains
    for bit_value in (0, split_bit):
        branch = Cube(base.value | bit_value, base.mask | split_bit)
        if not _covered(branch, relevant):
            return False
    return True


class CubeSet:
    """A union of difference-of-cubes terms."""

    def __init__(self, terms: Optional[Iterable[DiffCube]] = None):
        self.terms: List[DiffCube] = [
            t for t in (terms or []) if not _trivially_empty(t)
        ]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "CubeSet":
        return CubeSet()

    @staticmethod
    def full() -> "CubeSet":
        return CubeSet([DiffCube(FULL_CUBE)])

    @staticmethod
    def from_cube(cube: Cube) -> "CubeSet":
        return CubeSet([DiffCube(cube)])

    # -- operations ---------------------------------------------------------

    def union(self, other: "CubeSet") -> "CubeSet":
        return CubeSet(self.terms + other.terms)

    def intersect(self, other: "CubeSet") -> "CubeSet":
        result: List[DiffCube] = []
        for a in self.terms:
            for b in other.terms:
                base = a.base.intersect(b.base)
                if base is None:
                    continue
                result.append(DiffCube(base, a.minus + b.minus))
        return CubeSet(result)

    def subtract_cube(self, cube: Cube) -> "CubeSet":
        result: List[DiffCube] = []
        for term in self.terms:
            if cube.contains_cube(term.base):
                continue
            if cube.intersect(term.base) is None:
                result.append(term)
            else:
                result.append(DiffCube(term.base, term.minus + (cube,)))
        return CubeSet(result)

    def subtract(self, other: "CubeSet") -> "CubeSet":
        """Subtract another set (its difference terms add back, which we
        conservatively expand term by term)."""
        result = self
        for term in other.terms:
            if not term.minus:
                result = result.subtract_cube(term.base)
            else:
                # base - (c - d) = (base - c) + (base ∩ c ∩ d); expanding
                # exactly blows up, so we first subtract the base cube and
                # then union back the overlaps with each subtracted cube.
                removed = result.subtract_cube(term.base)
                added_back = CubeSet.empty()
                for d in term.minus:
                    overlap = result.intersect(
                        CubeSet.from_cube(term.base)
                    ).intersect(CubeSet.from_cube(d))
                    added_back = added_back.union(overlap)
                result = removed.union(added_back)
        return result

    def is_empty(self) -> bool:
        return all(term.is_empty() for term in self.terms)

    def contains_packet(self, packet: Packet) -> bool:
        packed = pack_packet(packet)
        return any(term.matches(packed) for term in self.terms)

    def sample_packet(self) -> Optional[Packet]:
        """A concrete packet from the set (the Z3-model-extraction step
        of the original Stage 3), found by recursive bit splitting."""
        for term in self.terms:
            packed = _sample(term.base, list(term.minus))
            if packed is not None:
                return _unpack(packed)
        return None

    def size_terms(self) -> int:
        return len(self.terms)


def _trivially_empty(term: DiffCube) -> bool:
    return any(cube.contains_cube(term.base) for cube in term.minus)


def _sample(base: Cube, minus: List[Cube]) -> Optional[int]:
    relevant = []
    for cube in minus:
        clipped = cube.intersect(base)
        if clipped is None:
            continue
        if clipped.contains_cube(base):
            return None
        relevant.append(clipped)
    if not relevant:
        return base.value & base.mask  # wildcards -> 0
    split_bit = None
    for cube in relevant:
        free = cube.mask & ~base.mask & _FULL_MASK
        if free:
            split_bit = free & -free
            break
    if split_bit is None:
        return None
    for bit_value in (0, split_bit):
        branch = Cube(base.value | bit_value, base.mask | split_bit)
        found = _sample(branch, relevant)
        if found is not None:
            return found
    return None


def _unpack(packed: int) -> Packet:
    values = {}
    for name, _width in _FIELDS:
        offset, width = _OFFSETS[name]
        values[name] = (packed >> offset) & ((1 << width) - 1)
    from repro.hdr.packet import packet_from_field_values

    return packet_from_field_values(values)


# ----------------------------------------------------------------------
# ACL encoding


def acl_permit_cubes(acl: Acl) -> CubeSet:
    """The permit space of an ACL as a difference-of-cubes set."""
    permitted = CubeSet.empty()
    earlier: List[Cube] = []
    for line in acl.lines:
        cube = _line_cube(line)
        if cube is None:
            continue
        if line.action is Action.PERMIT:
            permitted = permitted.union(
                CubeSet([DiffCube(cube, tuple(earlier))])
            )
        earlier.append(cube)
    return permitted


def _line_cube(line) -> Optional[Cube]:
    """Best-effort single-cube encoding of an ACL line. Lines using
    features outside the cube layout (port ranges that are not full or
    single-valued, established) fall back to wider cubes — acceptable
    for the baseline engine which predates those features."""
    cube = FULL_CUBE
    if line.protocol is not None:
        cube = cube.intersect(field_cube(hdr_fields.IP_PROTOCOL, line.protocol))
    if line.src is not None:
        cube = cube.intersect(prefix_cube(hdr_fields.SRC_IP, line.src))
    if line.dst is not None:
        cube = cube.intersect(prefix_cube(hdr_fields.DST_IP, line.dst))
    for ports, field_name in (
        (line.src_ports, hdr_fields.SRC_PORT),
        (line.dst_ports, hdr_fields.DST_PORT),
    ):
        if len(ports) == 1 and ports[0][0] == ports[0][1]:
            cube = cube.intersect(field_cube(field_name, ports[0][0]))
        elif ports:
            # Approximate a range by its common leading bits.
            low, high = ports[0]
            common = 16
            while common and (low >> (16 - common)) != (high >> (16 - common)):
                common -= 1
            cube = cube.intersect(field_cube(field_name, low, common))
    return cube
