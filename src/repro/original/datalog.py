"""A Datalog engine, standing in for LogicBlox (§2, Lesson 1).

The original Batfish encoded its control-plane model as Datalog rules
and let the engine derive all implied facts to a fixed point. This
module provides that substrate: stratified Datalog with negation and
arithmetic builtins, evaluated semi-naively.

It intentionally shares the architectural properties the paper's
Lesson 1 identifies as production roadblocks:

* **no execution-order control** — rules fire whenever their bodies
  match; there is no way to say "finish IGP before BGP";
* **retention of all intermediate facts** — every derived fact,
  including routes later deemed sub-optimal, stays in memory until the
  end (``total_facts`` exposes the count for the memory comparison);
* **limited expressiveness** — encoding best-route selection requires
  the negation-as-stratification idiom, and bounded-cost tricks stand
  in for aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Var:
    """A Datalog variable (upper-case by convention)."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = object  # Var or a hashable constant


@dataclass(frozen=True)
class Atom:
    relation: str
    terms: Tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atom(relation: str, *terms: Term) -> Atom:
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class Builtin:
    """An arithmetic/comparison constraint evaluated under bindings.

    ``kind``: "lt" | "le" | "eq" | "ne" | "add" (add binds its third
    term: X + Y = Z with Z possibly unbound).
    """

    kind: str
    terms: Tuple[Term, ...]


def lt(a: Term, b: Term) -> Builtin:
    return Builtin("lt", (a, b))


def le(a: Term, b: Term) -> Builtin:
    return Builtin("le", (a, b))


def ne(a: Term, b: Term) -> Builtin:
    return Builtin("ne", (a, b))


def add(a: Term, b: Term, result: Term) -> Builtin:
    return Builtin("add", (a, b, result))


@dataclass
class Rule:
    head: Atom
    body: List[Atom] = field(default_factory=list)
    negated: List[Atom] = field(default_factory=list)
    builtins: List[Builtin] = field(default_factory=list)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.body]
        parts += [f"!{a!r}" for a in self.negated]
        parts += [f"{b.kind}{b.terms}" for b in self.builtins]
        return f"{self.head!r} :- {', '.join(parts)}"


Bindings = Dict[str, object]


class DatalogError(Exception):
    pass


class DatalogEngine:
    """Stratified semi-naive Datalog evaluation."""

    def __init__(self):
        self._facts: Dict[str, Set[Tuple]] = {}
        self._rules: List[Rule] = []
        self.total_facts_derived = 0  # includes later-superseded facts

    # -- construction -----------------------------------------------------

    def add_fact(self, relation: str, *terms) -> None:
        table = self._facts.setdefault(relation, set())
        if tuple(terms) not in table:
            table.add(tuple(terms))
            self.total_facts_derived += 1

    def add_rule(self, rule: Rule) -> None:
        self._rules.append(rule)

    # -- queries ------------------------------------------------------------

    def facts(self, relation: str) -> Set[Tuple]:
        return set(self._facts.get(relation, set()))

    def total_facts(self) -> int:
        """All facts currently retained (the Lesson 1 memory issue: the
        engine cannot forget intermediates)."""
        return sum(len(table) for table in self._facts.values())

    # -- evaluation -----------------------------------------------------

    def run(self) -> None:
        """Evaluate all rules to a fixed point, stratum by stratum."""
        for stratum in self._stratify():
            self._run_stratum(stratum)

    def _stratify(self) -> List[List[Rule]]:
        """Order rules so every negated dependency is fully computed in
        an earlier stratum. Raises on negation cycles."""
        heads: Dict[str, List[Rule]] = {}
        for rule in self._rules:
            heads.setdefault(rule.head.relation, []).append(rule)
        # Compute stratum numbers per relation with Bellman-Ford-style
        # relaxation: positive deps keep the stratum, negative deps bump.
        relations = set(heads)
        stratum_of: Dict[str, int] = {rel: 0 for rel in relations}
        for _ in range(len(relations) + 1):
            changed = False
            for rule in self._rules:
                head_rel = rule.head.relation
                for body_atom in rule.body:
                    if body_atom.relation in stratum_of:
                        required = stratum_of[body_atom.relation]
                        if stratum_of[head_rel] < required:
                            stratum_of[head_rel] = required
                            changed = True
                for negated_atom in rule.negated:
                    if negated_atom.relation in stratum_of:
                        required = stratum_of[negated_atom.relation] + 1
                        if stratum_of[head_rel] < required:
                            stratum_of[head_rel] = required
                            changed = True
            if not changed:
                break
        else:
            raise DatalogError("negation cycle: program is not stratifiable")
        if any(level > len(relations) for level in stratum_of.values()):
            raise DatalogError("negation cycle: program is not stratifiable")
        strata: Dict[int, List[Rule]] = {}
        for rule in self._rules:
            strata.setdefault(stratum_of[rule.head.relation], []).append(rule)
        return [strata[level] for level in sorted(strata)]

    def _run_stratum(self, rules: List[Rule]) -> None:
        """Semi-naive iteration: only join against facts that are new
        since the previous round."""
        # Initial round: evaluate every rule against the full database.
        delta: Dict[str, Set[Tuple]] = {}
        for rule in rules:
            for derived in list(self._evaluate(rule, None)):
                if self._insert(rule.head.relation, derived):
                    delta.setdefault(rule.head.relation, set()).add(derived)
        while delta:
            new_delta: Dict[str, Set[Tuple]] = {}
            for rule in rules:
                body_relations = {a.relation for a in rule.body}
                if not body_relations & set(delta):
                    continue
                for derived in list(self._evaluate(rule, delta)):
                    if self._insert(rule.head.relation, derived):
                        new_delta.setdefault(rule.head.relation, set()).add(
                            derived
                        )
            delta = new_delta

    def _insert(self, relation: str, terms: Tuple) -> bool:
        table = self._facts.setdefault(relation, set())
        if terms in table:
            return False
        table.add(terms)
        self.total_facts_derived += 1
        return True

    def _evaluate(
        self, rule: Rule, delta: Optional[Dict[str, Set[Tuple]]]
    ) -> Iterable[Tuple]:
        """All new head tuples derivable from the rule.

        With ``delta``, requires at least one body atom to match a delta
        fact (semi-naive); each delta position is tried in turn.
        """
        positions = range(len(rule.body)) if delta else [None]
        seen: Set[Tuple] = set()
        for delta_position in positions:
            if delta is not None:
                if rule.body[delta_position].relation not in delta:
                    continue
            for bindings in self._match_body(rule, 0, {}, delta, delta_position):
                if not self._check_negated(rule, bindings):
                    continue
                head = tuple(
                    self._substitute(term, bindings) for term in rule.head.terms
                )
                if any(isinstance(t, Var) for t in head):
                    raise DatalogError(f"unbound variable in head of {rule!r}")
                if head not in seen:
                    seen.add(head)
                    yield head

    def _match_body(
        self,
        rule: Rule,
        index: int,
        bindings: Bindings,
        delta: Optional[Dict[str, Set[Tuple]]],
        delta_position: Optional[int],
    ) -> Iterable[Bindings]:
        if index == len(rule.body):
            final = self._apply_builtins(rule, bindings)
            if final is not None:
                yield final
            return
        body_atom = rule.body[index]
        if delta is not None and index == delta_position:
            source = delta.get(body_atom.relation, set())
        else:
            source = self._facts.get(body_atom.relation, set())
        for fact in source:
            extended = self._unify(body_atom.terms, fact, bindings)
            if extended is not None:
                yield from self._match_body(
                    rule, index + 1, extended, delta, delta_position
                )

    def _unify(
        self, terms: Tuple[Term, ...], fact: Tuple, bindings: Bindings
    ) -> Optional[Bindings]:
        if len(terms) != len(fact):
            return None
        extended = dict(bindings)
        for term, value in zip(terms, fact):
            if isinstance(term, Var):
                bound = extended.get(term.name, _UNSET)
                if bound is _UNSET:
                    extended[term.name] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return extended

    def _apply_builtins(self, rule: Rule, bindings: Bindings) -> Optional[Bindings]:
        current = dict(bindings)
        for builtin in rule.builtins:
            values = [self._substitute(t, current) for t in builtin.terms]
            if builtin.kind == "add":
                a, b, result = values
                if isinstance(a, Var) or isinstance(b, Var):
                    raise DatalogError("add requires bound operands")
                total = a + b
                if isinstance(result, Var):
                    current[result.name] = total
                elif result != total:
                    return None
            else:
                a, b = values
                if isinstance(a, Var) or isinstance(b, Var):
                    raise DatalogError(f"{builtin.kind} requires bound operands")
                ok = {
                    "lt": a < b,
                    "le": a <= b,
                    "eq": a == b,
                    "ne": a != b,
                }[builtin.kind]
                if not ok:
                    return None
        return current

    def _check_negated(self, rule: Rule, bindings: Bindings) -> bool:
        for negated_atom in rule.negated:
            probe = tuple(
                self._substitute(term, bindings) for term in negated_atom.terms
            )
            if any(isinstance(t, Var) for t in probe):
                raise DatalogError(
                    f"negated atom with unbound variable in {rule!r}"
                )
            if probe in self._facts.get(negated_atom.relation, set()):
                return False
        return True

    @staticmethod
    def _substitute(term: Term, bindings: Bindings):
        if isinstance(term, Var):
            return bindings.get(term.name, term)
        return term


_UNSET = object()
