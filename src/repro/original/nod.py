"""The original data-plane verification engine (Stage 3 stand-in).

The original Batfish verified forwarding with NoD (Network Optimized
Datalog) + Z3: a general solver consumed the data-plane state and the
negated property and produced constraints on violating packets, from
which Z3 extracted a concrete counterexample.

This module reproduces that *architecture class* — a general backend
over non-canonical symbolic sets — using the difference-of-cubes
representation of :mod:`repro.original.cubes`: reachable sets are
propagated over the forwarding state without canonicity, operation
caches, graph compression, or backward walking; counterexample
extraction does the recursive splitting a solver model-search would.
Feature coverage matches the original (no NAT, no zones), which is why
the Figure-3 comparison runs on NET1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.model import Snapshot
from repro.dataplane.fib import Fib, FibActionType
from repro.hdr import fields as hdr_fields
from repro.hdr.packet import Packet
from repro.original.cubes import (
    Cube,
    CubeSet,
    DiffCube,
    acl_permit_cubes,
    field_cube,
    prefix_cube,
)
from repro.routing.engine import DataPlane
from repro.routing.topology import InterfaceId


@dataclass
class CubeMultipathViolation:
    source: Tuple[str, str]
    example: Optional[Packet]


class CubeVerifier:
    """Reachability/multipath verification over difference-of-cubes."""

    def __init__(self, dataplane: DataPlane, fibs: Dict[str, Fib]):
        self.dataplane = dataplane
        self.fibs = fibs
        snapshot = dataplane.snapshot
        self._in_acl: Dict[Tuple[str, str], Optional[CubeSet]] = {}
        self._out_acl: Dict[Tuple[str, str], Optional[CubeSet]] = {}
        self._own_ips: Dict[str, CubeSet] = {}
        self._fib_spaces: Dict[str, List[Tuple[CubeSet, object]]] = {}
        for hostname in snapshot.hostnames():
            device = snapshot.device(hostname)
            own = CubeSet.empty()
            for _name, address, _len in device.interface_ips():
                own = own.union(
                    CubeSet.from_cube(
                        field_cube(hdr_fields.DST_IP, address.value)
                    )
                )
            self._own_ips[hostname] = own
            for iface in device.interfaces.values():
                if iface.incoming_acl and iface.incoming_acl in device.acls:
                    self._in_acl[(hostname, iface.name)] = acl_permit_cubes(
                        device.acls[iface.incoming_acl]
                    )
                if iface.outgoing_acl and iface.outgoing_acl in device.acls:
                    self._out_acl[(hostname, iface.name)] = acl_permit_cubes(
                        device.acls[iface.outgoing_acl]
                    )
            self._fib_spaces[hostname] = self._build_fib_spaces(hostname)

    def _build_fib_spaces(self, hostname: str):
        """Per FIB entry: (match space, entry) with longest-prefix
        shadowing expressed as cube differences."""
        fib = self.fibs[hostname]
        entries = fib.entries()
        spaces: List[Tuple[CubeSet, object]] = []
        all_prefixes = [prefix for prefix, _entries in entries]
        for prefix, fib_entries in entries:
            base = prefix_cube(hdr_fields.DST_IP, prefix)
            longer = tuple(
                prefix_cube(hdr_fields.DST_IP, other)
                for other in all_prefixes
                if other != prefix and prefix.contains_prefix(other)
            )
            space = CubeSet([DiffCube(base, longer)])
            for entry in fib_entries:
                spaces.append((space, entry))
        return spaces

    # ------------------------------------------------------------------

    def reachability(
        self, start_node: str, start_interface: str, headerspace: CubeSet
    ) -> Tuple[CubeSet, CubeSet]:
        """Propagate from one source; returns (success, failure) sets.

        Success = accepted/delivered/exits; failure = denied/no-route/
        null-routed — the same split the BDD engine's multipath
        consistency uses.
        """
        success = CubeSet.empty()
        failure = CubeSet.empty()
        # Worklist of (node, in_interface, set).
        worklist: List[Tuple[str, str, CubeSet]] = [
            (start_node, start_interface, headerspace)
        ]
        seen: Dict[Tuple[str, str], CubeSet] = {}
        hops = 0
        while worklist:
            hops += 1
            if hops > 10_000:
                break  # safety valve; loops surface as LOOP elsewhere
            node, in_iface, packet_set = worklist.pop(0)
            if packet_set.is_empty():
                continue
            key = (node, in_iface)
            existing = seen.get(key)
            if existing is not None:
                novel = packet_set.subtract(existing)
                if novel.is_empty():
                    continue
                packet_set = novel
                seen[key] = existing.union(novel)
            else:
                seen[key] = packet_set
            # Ingress ACL.
            acl = self._in_acl.get(key)
            if acl is not None:
                denied = packet_set.subtract(acl)
                failure = failure.union(denied)
                packet_set = packet_set.intersect(acl)
                if packet_set.is_empty():
                    continue
            # Local accept.
            accepted = packet_set.intersect(self._own_ips[node])
            if not accepted.is_empty():
                success = success.union(accepted)
                packet_set = packet_set.subtract(self._own_ips[node])
                if packet_set.is_empty():
                    continue
            # FIB.
            routed = CubeSet.empty()
            for space, entry in self._fib_spaces[node]:
                hit = packet_set.intersect(space)
                if hit.is_empty():
                    continue
                routed = routed.union(hit)
                if entry.action is FibActionType.DROP_NULL:
                    failure = failure.union(hit)
                    continue
                if entry.action is FibActionType.DROP_NO_ROUTE:
                    failure = failure.union(hit)
                    continue
                out_key = (node, entry.out_interface)
                out_acl = self._out_acl.get(out_key)
                if out_acl is not None:
                    failure = failure.union(hit.subtract(out_acl))
                    hit = hit.intersect(out_acl)
                    if hit.is_empty():
                        continue
                next_hop = self._next_hop(node, entry)
                if next_hop is None:
                    success = success.union(hit)  # delivered / exits
                else:
                    worklist.append((next_hop[0], next_hop[1], hit))
            failure = failure.union(packet_set.subtract(routed))
        return success, failure

    def destination_reachability(
        self, target_node: str, limit_sources: Optional[int] = None
    ) -> Dict[Tuple[str, str], CubeSet]:
        """Which packets, starting where, reach ``target_node``?

        The general-backend way: forward-propagate from *every* source
        and keep what arrives at the target. This lacks the dataflow
        engine's backward-propagation optimization ("it saves us from
        walking the edges that do not lie on the destination's
        forwarding tree", §4.2.3) — the main source of the near-two-
        orders-of-magnitude gap in the §6 APT comparison.
        """
        snapshot = self.dataplane.snapshot
        sources: List[Tuple[str, str]] = []
        for hostname in snapshot.hostnames():
            device = snapshot.device(hostname)
            for iface in sorted(device.interfaces.values(), key=lambda i: i.name):
                if iface.enabled and iface.address is not None:
                    sources.append((hostname, iface.name))
        if limit_sources is not None:
            sources = sources[:limit_sources]
        target_space = self._own_ips[target_node]
        answers: Dict[Tuple[str, str], CubeSet] = {}
        for node, iface in sources:
            if node == target_node:
                continue
            success, _failure = self.reachability(node, iface, CubeSet.full())
            arrived = success.intersect(target_space)
            if not arrived.is_empty():
                answers[(node, iface)] = arrived
        return answers

    def _next_hop(self, node: str, entry) -> Optional[Tuple[str, str]]:
        interface_id = InterfaceId(node, entry.out_interface)
        for edge in self.dataplane.topology.edges_from(interface_id):
            if entry.arp_ip is not None and edge.head_ip == entry.arp_ip:
                return (edge.head.node, edge.head.interface)
        return None

    # ------------------------------------------------------------------

    def multipath_consistency(
        self, sources: Optional[List[Tuple[str, str]]] = None
    ) -> List[CubeMultipathViolation]:
        """The Figure-3 verification benchmark on the cube backend."""
        if sources is None:
            sources = []
            snapshot = self.dataplane.snapshot
            for hostname in snapshot.hostnames():
                device = snapshot.device(hostname)
                for iface in sorted(device.interfaces.values(), key=lambda i: i.name):
                    if iface.enabled and iface.address is not None:
                        sources.append((hostname, iface.name))
        violations: List[CubeMultipathViolation] = []
        for node, iface in sources:
            success, failure = self.reachability(node, iface, CubeSet.full())
            both = success.intersect(failure)
            if both.is_empty():
                continue
            violations.append(
                CubeMultipathViolation(
                    source=(node, iface), example=both.sample_packet()
                )
            )
        return violations
