"""Fork-safe process-pool ``pmap`` for the analysis pipeline.

The paper's workloads are embarrassingly parallel at several grains —
per-file vendor parsing (Stage 1), per-network benchmark and
differential runs (§6, §4.3.2) — but the pure-Python port paid them
serially. :func:`pmap` fans such loops out over a process pool while
keeping the results byte-identical to a serial run:

* **Deterministic ordering.** Results come back in input order
  regardless of which worker finished first (``Pool.map`` semantics).
* **Fork safety without pickling the function.** On platforms with the
  ``fork`` start method the mapped callable is published through a
  module global *before* forking, so closures and locally-defined
  functions work; only items and results cross the pipe. Where ``fork``
  is unavailable the map degrades to serial rather than failing.
* **Serial fallback for small inputs.** Spawning processes costs more
  than parsing a handful of configs; inputs below ``min_items`` (or a
  single-job setting) run inline.
* **One env knob.** ``REPRO_JOBS`` sets the default worker count
  (``REPRO_JOBS=1`` forces serial everywhere, e.g. for determinism
  A/B tests); callers can override per call with ``jobs=``.

Workers inherit the parent's module state at fork time, so engines,
intern pools, and registries behave as read-only snapshots inside a
worker; anything a worker returns must be picklable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro import obs

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items the pool overhead dominates; run inline.
DEFAULT_MIN_ITEMS = 4

#: The callable being mapped, published to forked children (see module
#: docstring). Only meaningful between fork and pool teardown.
_WORKER_FN: Optional[Callable] = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, else the CPU count.

    ``REPRO_JOBS=0`` (or any non-positive value) explicitly requests the
    CPU count — handy for overriding a pinned value from a wrapper
    script without having to unset the variable.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
        if value > 0:
            return value
    return os.cpu_count() or 1


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _invoke(item):
    """Module-level trampoline: picklable stand-in for the real fn."""
    return _WORKER_FN(item)


def _invoke_chunk(chunk: Sequence) -> List:
    """Map a whole chunk in one task to amortize IPC per item."""
    return [_WORKER_FN(item) for item in chunk]


def _invoke_chunk_obs(task: Sequence):
    """Observable chunk worker: also ships the chunk's wall time and the
    worker's metric/coverage/flight deltas back for the parent to merge.

    The forked worker inherits the parent's registries, so they are
    reset at chunk start — everything in the outbound dump is this
    chunk's own contribution. The task payload carries the submitting
    thread's request context on the wire (fork only clones the calling
    thread's contextvars at pool *creation* time, which is neither this
    task's thread nor this task's moment), so spans, metrics, and
    flight events emitted inside the worker carry the originating
    ``request_id``.
    """
    chunk, ctx_wire = task
    obs.metrics().reset()
    obs.coverage().reset()
    obs.flight.reset()
    ctx = obs.context.from_wire(ctx_wire)
    token = obs.context.activate(ctx) if ctx is not None else None
    try:
        started = time.perf_counter()
        results = [_WORKER_FN(item) for item in chunk]
        wall = time.perf_counter() - started
    finally:
        if token is not None:
            obs.context.deactivate(token)
    return results, wall, obs.worker_dump()


def chunked(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    """Split ``items`` into order-preserving chunks of ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    min_items: int = DEFAULT_MIN_ITEMS,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on a process pool, in input order.

    ``jobs``: worker count (default :func:`default_jobs`).
    ``chunk_size``: items per task (default: spread items over roughly
    four tasks per worker, so stragglers rebalance).
    ``min_items``: inputs smaller than this run serially.
    ``progress``: called in the parent as ``progress(done, total)``
    after each completed item (serial path) or chunk (pool path) —
    long sweeps stream liveness into the flight recorder through this.

    Exceptions raised by ``fn`` propagate to the caller, as in a plain
    loop. Results must be picklable when the pool path is taken.
    """
    global _WORKER_FN
    work = list(items)
    n_jobs = default_jobs() if jobs is None else max(1, int(jobs))
    n_jobs = min(n_jobs, len(work)) if work else 1
    if (
        n_jobs <= 1
        or len(work) < max(2, min_items)
        or not fork_available()
        # Pool workers are daemonic and may not fork grandchildren;
        # nested pmap calls (e.g. parsing inside a per-network worker)
        # degrade to serial inside the worker.
        or multiprocessing.current_process().daemon
    ):
        if obs.active():
            obs.add("pmap.serial_calls")
            obs.add("pmap.items", len(work))
        out: List[R] = []
        for item in work:
            out.append(fn(item))
            if progress is not None:
                progress(len(out), len(work))
        return out
    if chunk_size is None:
        chunk_size = max(1, -(-len(work) // (n_jobs * 4)))
    chunks = chunked(work, chunk_size)
    mp_context = multiprocessing.get_context("fork")
    previous = _WORKER_FN
    _WORKER_FN = fn
    observing = obs.active()
    try:
        with mp_context.Pool(processes=min(n_jobs, len(chunks))) as pool:
            done = 0
            if observing:
                ctx_wire = obs.context.to_wire(obs.context.current())
                tasks = [(chunk, ctx_wire) for chunk in chunks]
                mapped = []
                with obs.span("pmap", jobs=n_jobs, chunks=len(chunks)):
                    # imap (not map): results stream back in input order
                    # as chunks finish, so progress fires incrementally.
                    for results, wall, dump in pool.imap(
                        _invoke_chunk_obs, tasks
                    ):
                        obs.observe("pmap.chunk_seconds", wall)
                        obs.merge_worker_dump(dump)
                        mapped.append(results)
                        done += len(results)
                        if progress is not None:
                            progress(done, len(work))
                obs.add("pmap.pool_calls")
                obs.add("pmap.items", len(work))
                obs.add("pmap.chunks", len(chunks))
                obs.gauge("pmap.jobs", n_jobs)
            else:
                mapped = []
                for results in pool.imap(_invoke_chunk, chunks):
                    mapped.append(results)
                    done += len(results)
                    if progress is not None:
                        progress(done, len(work))
    finally:
        _WORKER_FN = previous
    return [result for chunk in mapped for result in chunk]
