"""`repro.provenance` — derivation traces for routes and flows.

The explanation layer (§4.4): while recording is enabled, the control
plane logs which protocol, neighbor, policy clause, and convergence
iteration produced (or suppressed) each RIB/FIB entry, and the concrete
forwarding engine logs the ordered evaluation of every ACL line,
route-map clause, and NAT rule a flow touches. The records assemble
into derivation trees behind ``Session.explain_route`` /
``Session.explain_flow`` and the ``python -m repro.obs.report explain``
CLI, and into first-divergence diffs for differential fidelity testing
(§4.3.2).

Recording is off by default and guarded exactly like :mod:`repro.obs`:
one attribute read per instrumentation point, zero allocation, so the
disabled pipeline stays inside the <2% overhead budget.
"""

from repro.provenance.diff import (
    Divergence,
    first_divergence,
    render_divergence_report,
)
from repro.provenance.explain import (
    build_flow_explanation,
    build_route_tree,
    datalog_route_tree,
)
from repro.provenance.model import (
    DerivationNode,
    DerivationTree,
    Flow,
    FlowExplanation,
    FlowHopExplanation,
    FlowPathExplanation,
    FlowStepExplanation,
    RouteEvent,
)
from repro.provenance.record import (
    ProvenanceRecorder,
    disable,
    enable,
    enabled,
    recorder,
    recording,
    route_event,
    set_iteration,
)

__all__ = [
    "Divergence",
    "DerivationNode",
    "DerivationTree",
    "Flow",
    "FlowExplanation",
    "FlowHopExplanation",
    "FlowPathExplanation",
    "FlowStepExplanation",
    "ProvenanceRecorder",
    "RouteEvent",
    "build_flow_explanation",
    "build_route_tree",
    "datalog_route_tree",
    "disable",
    "enable",
    "enabled",
    "first_divergence",
    "recorder",
    "recording",
    "render_divergence_report",
    "route_event",
    "set_iteration",
]
