"""First-divergence diff between two derivation trees.

Differential fidelity testing (§4.3.2) turns a dataplane mismatch from a
bare inequality into a *located* disagreement: walk both derivation
trees in lockstep and report the first node where they diverge, with the
path to it. That is the minimal witness a human needs to start debugging
— everything above the divergence is agreed context, everything below it
is consequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.provenance.model import DerivationNode, DerivationTree


@dataclass(frozen=True)
class Divergence:
    """The first point where two derivation trees disagree."""

    path: Tuple[str, ...]  # labels from each root down to the divergence
    left: Optional[str]  # label on the left side (None = missing)
    right: Optional[str]  # label on the right side (None = missing)

    def describe(self) -> str:
        location = " / ".join(self.path) if self.path else "(root)"
        left = self.left if self.left is not None else "(absent)"
        right = self.right if self.right is not None else "(absent)"
        return f"first divergence at {location}:\n  left:  {left}\n  right: {right}"


def _first_divergence_nodes(
    left: DerivationNode, right: DerivationNode, path: Tuple[str, ...]
) -> Optional[Divergence]:
    if left.label != right.label:
        return Divergence(path=path, left=left.label, right=right.label)
    child_path = path + (left.label,)
    for left_child, right_child in zip(left.children, right.children):
        found = _first_divergence_nodes(left_child, right_child, child_path)
        if found is not None:
            return found
    if len(left.children) != len(right.children):
        if len(left.children) > len(right.children):
            extra = left.children[len(right.children)]
            return Divergence(path=child_path, left=extra.label, right=None)
        extra = right.children[len(left.children)]
        return Divergence(path=child_path, left=None, right=extra.label)
    return None


def first_divergence(
    left: DerivationTree, right: DerivationTree
) -> Optional[Divergence]:
    """The first structural disagreement, or None when the trees match.

    Root labels are compared *structurally* (children first): the roots
    name their engines and always differ textually, so a root-label
    mismatch alone is not a divergence.
    """
    path: Tuple[str, ...] = (left.root.label,)
    for left_child, right_child in zip(left.root.children, right.root.children):
        found = _first_divergence_nodes(left_child, right_child, path)
        if found is not None:
            return found
    if len(left.root.children) != len(right.root.children):
        if len(left.root.children) > len(right.root.children):
            extra = left.root.children[len(right.root.children)]
            return Divergence(path=path, left=extra.label, right=None)
        extra = right.root.children[len(left.root.children)]
        return Divergence(path=path, left=None, right=extra.label)
    return None


def render_divergence_report(
    left: DerivationTree, right: DerivationTree, divergence: Optional[Divergence]
) -> str:
    """A human-readable mismatch report: the diff first, both trees after."""
    lines: List[str] = []
    if divergence is None:
        lines.append("derivation trees agree")
    else:
        lines.append(divergence.describe())
    lines.append("")
    lines.append("-- left tree --")
    lines.append(left.render())
    lines.append("")
    lines.append("-- right tree --")
    lines.append(right.render())
    return "\n".join(lines)
