"""Assemble recorded provenance events into derivation trees.

Two builders:

* :func:`build_route_tree` — "why is this route in the FIB": joins the
  FIB entries and main-RIB best routes of a (node, prefix) pair with the
  recorded derivation events (protocol origin, neighbor, policy clause,
  convergence iteration) and the suppressed alternatives.
* :func:`build_flow_explanation` — "why was this packet
  forwarded/dropped": lifts the concrete traceroute engine's hop steps
  (recorded with per-line ACL / per-rule NAT evaluation detail while
  provenance is enabled) into a :class:`FlowExplanation`.

Plus :func:`datalog_route_tree`, which renders the original Datalog
model's derivation of the same (node, prefix) pair from its fact base —
the second tree the differential fidelity check diffs against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hdr.ip import Prefix
from repro.provenance.model import (
    SUPPRESSING_ACTIONS,
    DerivationNode,
    DerivationTree,
    Flow,
    FlowExplanation,
    FlowHopExplanation,
    FlowPathExplanation,
    FlowStepExplanation,
    RouteEvent,
)
from repro.provenance.record import ProvenanceRecorder


def _normalize_prefix(prefix) -> str:
    if isinstance(prefix, str):
        return str(Prefix(prefix))
    return str(prefix)


def build_route_tree(
    recorder: ProvenanceRecorder,
    dataplane,
    fibs: Dict[str, object],
    node: str,
    prefix,
) -> DerivationTree:
    """The derivation tree of one (node, prefix) pair.

    Layout::

        node 10.0.2.0/24 @ edge
          fib: 10.0.2.0/24 -> eth1 via 10.0.12.2
            [fib] resolved: ...
          rib: static 10.0.2.0/24 via 10.0.12.2
            [static] installed: next hop 10.0.12.2 resolved via ...
            [main-rib] best: ...
          suppressed alternatives
            [bgp] suppressed: ...
    """
    prefix_str = _normalize_prefix(prefix)
    root = DerivationNode(f"route {prefix_str} @ {node}", kind="root")
    events = recorder.events_for(node, prefix_str)
    by_action: Dict[str, List[RouteEvent]] = {}
    for event in events:
        by_action.setdefault(event.action, []).append(event)

    # FIB entries for the exact prefix.
    fib = fibs.get(node)
    fib_entries = []
    if fib is not None:
        for entry_prefix, entries in fib.entries():
            if str(entry_prefix) == prefix_str:
                fib_entries = entries
                break
    for entry in fib_entries:
        entry_node = root.add(
            DerivationNode(f"fib: {entry.describe()}", kind="fib")
        )
        for event in events:
            if event.protocol == "fib":
                entry_node.add(
                    DerivationNode(event.describe(), kind="event")
                )

    # Main-RIB best routes with their protocol derivations.
    state = dataplane.nodes.get(node)
    best_routes = (
        state.main_rib.best_routes(Prefix(prefix_str)) if state else []
    )
    for route in best_routes:
        protocol = route.protocol.value
        route_node = root.add(
            DerivationNode(f"rib: {route.describe()}", kind="rib")
        )
        for event in events:
            if event.protocol == protocol and event.action not in SUPPRESSING_ACTIONS:
                route_node.add(DerivationNode(event.describe(), kind="event"))
        for event in events:
            if event.protocol == "main-rib" and event.action not in SUPPRESSING_ACTIONS:
                route_node.add(DerivationNode(event.describe(), kind="event"))

    # Suppressed / displaced alternatives — the "why not" half.
    suppressed = [e for e in events if e.action in SUPPRESSING_ACTIONS]
    if suppressed:
        sup_node = root.add(
            DerivationNode("suppressed alternatives", kind="suppressed")
        )
        for event in suppressed:
            sup_node.add(DerivationNode(event.describe(), kind="event"))

    if not root.children and events:
        # No FIB/RIB entry but we do know why: surface the raw events.
        for event in events:
            root.add(DerivationNode(event.describe(), kind="event"))
    if not root.children:
        root.add(
            DerivationNode(
                "no route and no recorded derivation (prefix never "
                "advertised, originated, or configured here)",
                kind="empty",
            )
        )
    return DerivationTree(node=node, prefix=prefix_str, root=root, events=events)


def build_flow_explanation(flow: Flow, traces: Sequence) -> FlowExplanation:
    """Lift traceroute ``Trace`` objects into a :class:`FlowExplanation`.

    When the traces were produced with provenance recording enabled,
    each step carries its ordered per-line evaluation (``step.lines``);
    otherwise only the decision summaries are available.
    """
    explanation = FlowExplanation(flow=flow)
    for trace in traces:
        path = FlowPathExplanation(disposition=trace.disposition.value)
        for hop in trace.hops:
            hop_explanation = FlowHopExplanation(node=hop.node)
            for step in hop.steps:
                hop_explanation.steps.append(
                    FlowStepExplanation(
                        kind=step.kind,
                        detail=step.detail,
                        lines=tuple(step.lines),
                    )
                )
            path.hops.append(hop_explanation)
        explanation.paths.append(path)
    return explanation


# ----------------------------------------------------------------------
# Datalog-side derivation trees (for the differential fidelity check)


def datalog_route_tree(datalog_dataplane, node: str, prefix) -> DerivationTree:
    """Render the original Datalog model's derivation of (node, prefix).

    The Datalog engine retains every derived fact (Lesson 1), so the
    tree is read straight out of the fact base: the ``Forward``/``Drop``
    conclusion on top, the supporting ``BestOspf`` / ``OspfRoute`` /
    ``StaticRoute`` / ``ConnectedRoute`` facts underneath.
    """
    prefix_str = _normalize_prefix(prefix)
    engine = datalog_dataplane.engine
    root = DerivationNode(f"route {prefix_str} @ {node} (datalog)", kind="root")
    events: List[RouteEvent] = []
    seq = 0

    def record(action: str, detail: str, protocol: str = "datalog") -> RouteEvent:
        nonlocal seq
        seq += 1
        event = RouteEvent(
            seq=seq, node=node, prefix=prefix_str, protocol=protocol,
            action=action, detail=detail,
        )
        events.append(event)
        return event

    def matches(terms, index_prefix: int) -> bool:
        return str(terms[0]) == node and str(terms[index_prefix]) == prefix_str

    for terms in sorted(engine.facts("Forward"), key=repr):
        if matches(terms, 1):
            conclusion = root.add(
                DerivationNode(
                    f"Forward({node}, {prefix_str}, {terms[2]})", kind="fib"
                )
            )
            record("installed", f"Forward via {terms[2]}")
            for sub in sorted(engine.facts("StaticForward"), key=repr):
                if matches(sub, 1):
                    conclusion.add(
                        DerivationNode(
                            f"StaticForward({node}, {prefix_str}, {sub[2]})",
                            kind="event",
                        )
                    )
                    record("installed", f"StaticForward via {sub[2]}", "static")
            for sub in sorted(engine.facts("BestOspf"), key=repr):
                if matches(sub, 1):
                    conclusion.add(
                        DerivationNode(
                            f"BestOspf({node}, {prefix_str}, cost {sub[2]}, "
                            f"via {sub[3]})",
                            kind="event",
                        )
                    )
                    record(
                        "installed",
                        f"BestOspf cost {sub[2]} via {sub[3]}",
                        "ospf",
                    )
    for terms in sorted(engine.facts("Drop"), key=repr):
        if matches(terms, 1):
            root.add(DerivationNode(f"Drop({node}, {prefix_str})", kind="fib"))
            record("dropped", "NullRoute")
    # Retained sub-optimal intermediates (what the imperative engine
    # never materializes) — shown so diffs point at the modeling gap.
    retained = [
        terms
        for terms in sorted(engine.facts("OspfRoute"), key=repr)
        if matches(terms, 1)
    ]
    if retained:
        sub = root.add(
            DerivationNode(
                f"retained intermediates ({len(retained)} OspfRoute facts)",
                kind="suppressed",
            )
        )
        for terms in retained[:8]:
            sub.add(
                DerivationNode(
                    f"OspfRoute({node}, {prefix_str}, cost {terms[2]}, "
                    f"via {terms[3]})",
                    kind="event",
                )
            )
    if not root.children:
        root.add(
            DerivationNode("no Forward/Drop fact derived", kind="empty")
        )
    return DerivationTree(node=node, prefix=prefix_str, root=root, events=events)
