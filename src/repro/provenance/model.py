"""Provenance data model: derivation events and derivation trees.

A *route event* is one fact about how a RIB/FIB entry came to exist (or
why it does not): which protocol produced it, which neighbor advertised
it, which policy clause permitted/denied it, and at which convergence
iteration the decision happened. Events are recorded by the control
plane while :mod:`repro.provenance.record` is enabled and assembled into
:class:`DerivationTree` answers by :mod:`repro.provenance.explain` —
the mechanism real Batfish exposes as answer ``TraceElement``s (§4.4.3:
"we annotate example packets with as much context as possible").

A *flow explanation* is the forwarding-side counterpart: the ordered
evaluation trace of every ACL line, route-map clause, and NAT rule a
concrete flow touched on its way through the network, hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hdr.packet import Packet


@dataclass(frozen=True, slots=True)
class RouteEvent:
    """One recorded derivation fact about a (node, prefix) pair.

    ``protocol`` names the producing subsystem (``connected``,
    ``static``, ``ospf``, ``bgp``, ``main-rib``, ``fib``, ``session``);
    ``action`` is what happened (``installed``, ``suppressed``,
    ``displaced``, ``withdrawn``, ``originated``, ``rejected``,
    ``resolved``, ``dropped``, ``best``, ``redistributed``, ``down``).
    ``iteration`` is the BGP convergence iteration (0 = outside the BGP
    fixed point); ``seq`` totally orders events within one recording.
    """

    seq: int
    node: str
    prefix: str
    protocol: str
    action: str
    detail: str
    neighbor: str = ""
    policy: str = ""
    iteration: int = 0

    def describe(self) -> str:
        parts = [f"[{self.protocol}] {self.action}: {self.detail}"]
        if self.neighbor:
            parts.append(f"neighbor {self.neighbor}")
        if self.policy:
            parts.append(self.policy)
        if self.iteration:
            parts.append(f"iteration {self.iteration}")
        return " | ".join(parts)


#: Actions that explain why an entry is absent rather than present.
SUPPRESSING_ACTIONS = frozenset(
    {"suppressed", "displaced", "withdrawn", "rejected", "dropped", "down"}
)


@dataclass
class DerivationNode:
    """One node of a derivation tree: a label plus supporting children."""

    label: str
    kind: str = "derivation"  # "fib" | "rib" | "event" | "suppressed" | ...
    children: List["DerivationNode"] = field(default_factory=list)

    def add(self, child: "DerivationNode") -> "DerivationNode":
        self.children.append(child)
        return child

    def walk(self, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], "DerivationNode"]]:
        """Depth-first (path, node) pairs; path excludes this node."""
        yield path, self
        for child in self.children:
            yield from child.walk(path + (self.label,))

    def render(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.label}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class DerivationTree:
    """The full answer to "why is (or isn't) this route in the FIB".

    ``root`` holds the structured derivation; ``events`` keeps the raw
    record so callers can re-slice it.
    """

    node: str
    prefix: str
    root: DerivationNode
    events: List[RouteEvent] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.root.children

    def render(self) -> str:
        return self.root.render()

    def suppressions(self) -> List[RouteEvent]:
        """The events explaining absent/overridden alternatives."""
        return [e for e in self.events if e.action in SUPPRESSING_ACTIONS]


# ----------------------------------------------------------------------
# Flow explanations


@dataclass(frozen=True, slots=True)
class Flow:
    """A concrete flow: one packet entering at (node, interface)."""

    packet: Packet
    ingress_node: str
    ingress_interface: str

    def describe(self) -> str:
        return (
            f"{self.packet.describe()} entering "
            f"{self.ingress_node}[{self.ingress_interface}]"
        )


@dataclass
class FlowStepExplanation:
    """One forwarding decision with its full evaluation trace.

    ``kind`` mirrors the traceroute step kinds (``acl``, ``fib``,
    ``nat``, ``zone``, ``arrive``, ``final``); ``lines`` is the ordered
    per-line / per-rule / per-clause evaluation that produced the
    decision (empty when the step has no internal structure).
    """

    kind: str
    detail: str
    lines: Tuple[str, ...] = ()


@dataclass
class FlowHopExplanation:
    node: str
    steps: List[FlowStepExplanation] = field(default_factory=list)


@dataclass
class FlowPathExplanation:
    """One ECMP path of the flow with its disposition."""

    disposition: str
    hops: List[FlowHopExplanation] = field(default_factory=list)

    def hop_nodes(self) -> List[str]:
        return [hop.node for hop in self.hops]


@dataclass
class FlowExplanation:
    """All paths a flow takes, with ordered evaluation traces."""

    flow: Flow
    paths: List[FlowPathExplanation] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.paths

    def to_tree(self) -> DerivationNode:
        root = DerivationNode(f"flow {self.flow.describe()}", kind="flow")
        for index, path in enumerate(self.paths):
            path_node = root.add(
                DerivationNode(
                    f"path {index}: [{path.disposition}] "
                    + " -> ".join(path.hop_nodes()),
                    kind="path",
                )
            )
            for hop in path.hops:
                hop_node = path_node.add(
                    DerivationNode(f"hop {hop.node}", kind="hop")
                )
                for step in hop.steps:
                    step_node = hop_node.add(
                        DerivationNode(f"{step.kind}: {step.detail}", kind="step")
                    )
                    for line in step.lines:
                        step_node.add(DerivationNode(line, kind="line"))
        return root

    def render(self) -> str:
        return self.to_tree().render()


def events_for(
    events: Sequence[RouteEvent], node: str, prefix: Optional[str] = None
) -> List[RouteEvent]:
    """Events of one node (optionally one prefix), in record order."""
    return [
        e
        for e in events
        if e.node == node and (prefix is None or e.prefix == prefix)
    ]
