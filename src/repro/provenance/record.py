"""The provenance recorder: a process-global, off-by-default event sink.

Mirrors the :mod:`repro.obs` discipline exactly: recording is **off by
default** and every instrumentation point in the routing/dataplane code
guards through :func:`enabled` — one module attribute read and a falsy
branch per site, no formatting or allocation — so the <2% disabled
overhead budget of the benchmarks is preserved. Enabling happens
per-derivation via the :func:`recording` context manager (the way
``Session.explain_route`` re-derives the data plane with provenance on),
never globally at import time.

Recorded events also flow through :mod:`repro.obs` when tracing is
enabled: each event increments the ``provenance.route_events`` counter
and the recorder's totals ride the existing worker-dump metric merge,
so ``pmap`` fan-outs aggregate provenance telemetry the same way they
aggregate every other counter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.provenance.model import RouteEvent


class ProvenanceRecorder:
    """Collects :class:`RouteEvent`s during one derivation run."""

    def __init__(self):
        self.events: List[RouteEvent] = []
        self._by_key: Dict[Tuple[str, str], List[RouteEvent]] = {}
        self.iteration = 0
        self._seq = 0

    def route_event(
        self,
        node: str,
        prefix,
        protocol: str,
        action: str,
        detail: str,
        neighbor: str = "",
        policy: str = "",
        iteration: Optional[int] = None,
    ) -> None:
        self._seq += 1
        event = RouteEvent(
            seq=self._seq,
            node=node,
            prefix=str(prefix),
            protocol=protocol,
            action=action,
            detail=detail,
            neighbor=neighbor,
            policy=policy,
            iteration=self.iteration if iteration is None else iteration,
        )
        self.events.append(event)
        self._by_key.setdefault((event.node, event.prefix), []).append(event)

    def events_for(self, node: str, prefix) -> List[RouteEvent]:
        return list(self._by_key.get((node, str(prefix)), []))

    def __len__(self) -> int:
        return len(self.events)


class _ProvState:
    def __init__(self):
        self.enabled = False
        self.recorder: Optional[ProvenanceRecorder] = None
        self.lock = threading.Lock()


_STATE = _ProvState()


def enabled() -> bool:
    """The guard every instrumentation point checks first."""
    return _STATE.enabled


def recorder() -> Optional[ProvenanceRecorder]:
    return _STATE.recorder


def enable() -> ProvenanceRecorder:
    """Start recording into a fresh recorder (returned)."""
    with _STATE.lock:
        _STATE.recorder = ProvenanceRecorder()
        _STATE.enabled = True
        return _STATE.recorder


def disable() -> None:
    with _STATE.lock:
        _STATE.enabled = False
        _STATE.recorder = None


@contextmanager
def recording():
    """Record provenance for the duration of the block.

    Yields the recorder; restores the previous recorder afterwards so
    nested recordings (an explain inside a traced session) compose.
    """
    with _STATE.lock:
        previous = (_STATE.enabled, _STATE.recorder)
        _STATE.recorder = ProvenanceRecorder()
        _STATE.enabled = True
        current = _STATE.recorder
    try:
        yield current
    finally:
        with _STATE.lock:
            _STATE.enabled, _STATE.recorder = previous
        if obs.enabled():
            obs.add("provenance.recordings")
            obs.add("provenance.route_events", len(current.events))


def route_event(
    node: str,
    prefix,
    protocol: str,
    action: str,
    detail: str,
    neighbor: str = "",
    policy: str = "",
    iteration: Optional[int] = None,
) -> None:
    """Record one derivation fact (no-op unless recording is enabled).

    Hot paths must guard with :func:`enabled` *before* building the
    ``detail`` string; this function re-checks only for safety.
    """
    rec = _STATE.recorder
    if rec is None:
        return
    rec.route_event(
        node, prefix, protocol, action, detail,
        neighbor=neighbor, policy=policy, iteration=iteration,
    )


def set_iteration(iteration: int) -> None:
    """Stamp subsequent events with a convergence iteration number."""
    rec = _STATE.recorder
    if rec is not None:
        rec.iteration = iteration
