"""Configuration and forwarding questions (Lesson 5, §4.4.1)."""

from repro.questions.configuration import (
    duplicate_ips_question,
    management_plane_consistency,
    undefined_references_question,
    unused_structures_question,
)
from repro.questions.filters import (
    search_filters,
    test_filter,
    unreachable_filter_lines,
)
from repro.questions.specialized import service_reachable, service_unreachable

__all__ = [
    "duplicate_ips_question",
    "management_plane_consistency",
    "undefined_references_question",
    "unused_structures_question",
    "search_filters",
    "test_filter",
    "unreachable_filter_lines",
    "service_reachable",
    "service_unreachable",
]
