"""Configuration-hygiene questions (Lesson 5).

"Network engineers wanted the tool to check many other configuration
properties ... checking configuration settings (e.g., NTP servers),
compatibility of BGP configuration across neighbors, whether all
referenced routing policies are defined, uniqueness of assigned IP
addresses". These analyses are local, easy to localize, and robust to
modeling bugs — which is why they are the most used analyses in manual
workflows (§5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.model import Snapshot
from repro.config.references import (
    StructureRef,
    UnusedStructure,
    undefined_references,
    unused_structures,
)
from repro.hdr.ip import Ip
from repro.routing.topology import InterfaceId, duplicate_ips


@dataclass
class UndefinedReferencesAnswer:
    rows: List[StructureRef]

    def by_node(self) -> Dict[str, List[StructureRef]]:
        grouped: Dict[str, List[StructureRef]] = {}
        for row in self.rows:
            grouped.setdefault(row.hostname, []).append(row)
        return grouped


def undefined_references_question(snapshot: Snapshot) -> UndefinedReferencesAnswer:
    """All references to structures that are not defined — "if a missing
    route-map results in bad forwarding, it is much easier to find this
    error by checking for undefined route-maps than by debugging based
    on the counterexample to a data plane verification query"."""
    rows: List[StructureRef] = []
    for hostname in snapshot.hostnames():
        rows.extend(undefined_references(snapshot.device(hostname)))
    return UndefinedReferencesAnswer(rows=rows)


@dataclass
class UnusedStructuresAnswer:
    rows: List[UnusedStructure]


def unused_structures_question(snapshot: Snapshot) -> UnusedStructuresAnswer:
    """Defined-but-never-referenced structures (dead configuration,
    prime candidates for the refactoring use-case of §5.3)."""
    rows: List[UnusedStructure] = []
    for hostname in snapshot.hostnames():
        rows.extend(unused_structures(snapshot.device(hostname)))
    return UnusedStructuresAnswer(rows=rows)


@dataclass
class DuplicateIpRow:
    ip: Ip
    owners: List[InterfaceId]


@dataclass
class DuplicateIpsAnswer:
    rows: List[DuplicateIpRow]


def duplicate_ips_question(snapshot: Snapshot) -> DuplicateIpsAnswer:
    """Addresses assigned to more than one interface network-wide."""
    return DuplicateIpsAnswer(
        rows=[
            DuplicateIpRow(ip=ip, owners=owners)
            for ip, owners in duplicate_ips(snapshot)
        ]
    )


@dataclass
class PropertyConsistencyRow:
    hostname: str
    property_name: str
    values: Tuple[str, ...]
    expected: Tuple[str, ...]


@dataclass
class PropertyConsistencyAnswer:
    #: The reference value set (the majority across devices).
    reference: Dict[str, Tuple[str, ...]]
    #: Devices deviating from the reference.
    rows: List[PropertyConsistencyRow]


def management_plane_consistency(
    snapshot: Snapshot,
    expected_ntp: Optional[List[str]] = None,
    expected_dns: Optional[List[str]] = None,
) -> PropertyConsistencyAnswer:
    """Are NTP/DNS servers consistent across all devices?

    Without explicit expectations, the majority configuration becomes
    the reference (a reasonable default per §4.4.2) and deviants are
    reported.
    """
    properties: Dict[str, Dict[str, Tuple[str, ...]]] = {"ntp": {}, "dns": {}}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        properties["ntp"][hostname] = tuple(sorted(str(s) for s in device.ntp_servers))
        properties["dns"][hostname] = tuple(sorted(str(s) for s in device.dns_servers))
    reference: Dict[str, Tuple[str, ...]] = {}
    rows: List[PropertyConsistencyRow] = []
    explicit = {
        "ntp": tuple(sorted(expected_ntp)) if expected_ntp is not None else None,
        "dns": tuple(sorted(expected_dns)) if expected_dns is not None else None,
    }
    for property_name, per_node in properties.items():
        if explicit[property_name] is not None:
            reference_value = explicit[property_name]
        else:
            counts: Dict[Tuple[str, ...], int] = {}
            for value in per_node.values():
                counts[value] = counts.get(value, 0) + 1
            reference_value = max(counts, key=lambda v: (counts[v], v))
        reference[property_name] = reference_value
        for hostname, value in sorted(per_node.items()):
            if value != reference_value:
                rows.append(
                    PropertyConsistencyRow(
                        hostname=hostname,
                        property_name=property_name,
                        values=value,
                        expected=reference_value,
                    )
                )
    return PropertyConsistencyAnswer(reference=reference, rows=rows)
