"""Coverage attribution: per-question coverage records, uncovered-stanza
risk, and coverage-guided question prioritization.

The Batfish paper's operational lesson is that operators trust analysis
they can *see the extent of* — a reachability suite that never exercises
an ACL line says nothing about that line (Xu et al., *Test Coverage for
Network Configurations*). PR 2 gave the repo kind-level coverage; this
module makes it attributable and actionable:

* **Records.** Every question execution (and every lint rule, labeled
  ``lint/<rule_id>``) runs under an attribution context
  (:func:`repro.obs.context.attribution`), so the tracker keeps one
  coverage vector per question. :func:`record_question_run` snapshots
  the vector delta of one execution into a *record* — question, params,
  scope class, host footprint, vector — registered in the tracker's run
  registry and persisted in the content-addressed cache keyed on
  (snapshot, question, params).
* **Prioritization.** Given a delta's changed files and dirty set,
  :func:`prioritize_questions` splits the recorded questions into
  *affected* (worth rerunning) and *skipped* (provably unchanged),
  ranked by overlap between each record's coverage vector and the
  impacted hosts. The delta engine surfaces this as
  ``DeltaInfo.questions_affected``.
* **Risk.** :func:`uncovered_stanzas` lists the config structures no
  question touched, with file:line provenance, and — for reachable
  uncovered ACL lines — synthesizes a concrete witness packet from the
  line's BDD match set (:func:`witness_for_acl_line`): the probe an
  operator would send to exercise that exact line.

The module tail is the CI coverage gate
(``python -m repro.questions.coverage``): it runs a fixed question
battery over the synthetic network registry and compares per-question
coverage ratios against a committed baseline; any drift exits 2.

Scope classification (what makes skipping *sound*):

* ``routing`` questions read the data plane; a device's answer rows can
  change when its own config changed **or** its routing state did, so
  the impact set is ``changed ∪ dirty`` — exactly what the delta
  engine's splice guarantee bounds (clean devices' FIBs are
  byte-identical).
* ``config`` questions read only the parsed configs; their impact set
  is the changed files' hosts. Questions in this class that report
  *across* devices (``duplicate_ips``, ``lint``, ``parse_warnings``)
  have no per-host footprint recorded (hosts = None), which makes them
  affected by any change — conservative but sound.
* ``global`` questions (``route_diff`` spans two snapshots) are always
  affected.

Unknown questions default to ``global``; a record with no host
footprint is treated as network-wide. Skipping is therefore only ever
an *optimization* of reruns, never a soundness bet: anything the model
cannot bound reruns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.bdd.engine import FALSE
from repro.core.cache import coverage_index_key, coverage_record_key
from repro.dataplane.acl import acl_line_spaces
from repro.hdr import fields as hdr_fields
from repro.hdr.headerspace import PacketEncoder
from repro.obs.coverage import (
    KINDS,
    CoverageKey,
    CoverageTracker,
    parse_key,
    render_key,
)
from repro.reachability.examples import default_preferences

RECORD_SCHEMA = "repro-coverage-record/v1"

#: Questions whose answers derive from the converged data plane: a
#: device's rows change only if its config changed or its routing state
#: did (the delta engine's dirty set bounds the latter).
ROUTING_QUESTIONS = frozenset(
    {"routes", "reachability", "traceroute", "explain_route"}
)

#: Questions computed from the parsed configs alone; the impact set is
#: the set of hosts whose files changed bytes.
CONFIG_QUESTIONS = frozenset(
    {
        "test_filter",
        "undefined_references",
        "unused_structures",
        "duplicate_ips",
        "parse_warnings",
        "lint",
    }
)

#: Risk-ranked kind order for the uncovered report: an unexercised ACL
#: line is a live security hole, an untouched route-map clause a silent
#: policy gap, an untouched interface usually just an unused port.
RISK_ORDER = ("acl_line", "route_map_clause", "interface")


def question_scope(question: str) -> str:
    """``routing`` / ``config`` / ``global`` (unknown = global)."""
    if question in ROUTING_QUESTIONS:
        return "routing"
    if question in CONFIG_QUESTIONS:
        return "config"
    return "global"


def canonical_params(params: Optional[Dict]) -> str:
    """Canonical rendering of question params — the params component of
    the (snapshot, question, params) record key. Matches the service's
    job-coalescing digest convention (sorted keys, compact)."""
    return json.dumps(params or {}, sort_keys=True, separators=(",", ":"))


def _param_hosts(params: Optional[Dict]) -> Set[str]:
    """Host names a question's params explicitly bind it to."""
    hosts: Set[str] = set()
    if not params:
        return hosts
    node = params.get("node")
    if isinstance(node, str) and node:
        hosts.add(node)
    sources = params.get("sources")
    if isinstance(sources, (list, tuple)):
        for entry in sources:
            if isinstance(entry, str):
                hosts.add(entry)
            elif isinstance(entry, (list, tuple)) and entry:
                hosts.add(str(entry[0]))
    return hosts


def vector_delta(
    before: Dict[CoverageKey, int], after: Dict[CoverageKey, int]
) -> Dict[CoverageKey, int]:
    """What one execution added to a question's coverage vector."""
    delta: Dict[CoverageKey, int] = {}
    for key, count in after.items():
        added = count - before.get(key, 0)
        if added > 0:
            delta[key] = added
    return delta


def build_record(
    question: str,
    params: Optional[Dict],
    vector: Dict[CoverageKey, int],
) -> Dict:
    """One JSON-ready coverage record for a completed execution.

    ``hosts`` is the record's footprint: the devices the execution
    touched plus any the params explicitly name. None (no touches, no
    named hosts) means the footprint is unknown and the question is
    treated as network-wide by prioritization."""
    touched_hosts = {key[1] for key in vector}
    hosts = sorted(touched_hosts | _param_hosts(params))
    return {
        "schema": RECORD_SCHEMA,
        "question": question,
        "params": dict(params or {}),
        "params_key": canonical_params(params),
        "scope": question_scope(question),
        "hosts": hosts if hosts else None,
        "vector": {
            render_key(key): count for key, count in sorted(vector.items())
        },
        "runs": 1,
    }


# ----------------------------------------------------------------------
# Record persistence (tracker run registry + content-addressed cache)


def persist_record(cache, snapshot_key: str, record: Dict) -> None:
    """Write one record (and its index entry) to the snapshot cache.
    Load-modify-store on the index is not atomic across processes; a
    lost index entry only costs a future cache miss, never wrong data."""
    if cache is None:
        return
    record_key = coverage_record_key(
        snapshot_key, record["question"], record["params_key"]
    )
    cache.store("coverage", record_key, record)
    index_key = coverage_index_key(snapshot_key)
    index = cache.load("coverage_index", index_key) or {}
    index[record_key] = [record["question"], record["params_key"]]
    cache.store("coverage_index", index_key, index)


def load_records(cache, snapshot_key: str) -> Dict[Tuple[str, str], Dict]:
    """All persisted records for a snapshot, keyed (question, params_key)."""
    if cache is None:
        return {}
    index = cache.load("coverage_index", coverage_index_key(snapshot_key))
    records: Dict[Tuple[str, str], Dict] = {}
    for record_key, entry in (index or {}).items():
        record = cache.load("coverage", record_key)
        if isinstance(record, dict) and record.get("question"):
            records[(record["question"], record["params_key"])] = record
    return records


def record_question_run(
    tracker: CoverageTracker,
    cache,
    snapshot_key: str,
    question: str,
    params: Optional[Dict],
    vector: Dict[CoverageKey, int],
) -> Dict:
    """Register (and persist) one completed question execution."""
    record = build_record(question, params, vector)
    previous = tracker.recorded_runs(snapshot_key).get(
        (question, record["params_key"])
    )
    if previous:
        record["runs"] = int(previous.get("runs", 0)) + 1
        # A rerun that touched nothing new (e.g. a fully memoized lint
        # pass) keeps the earlier, richer vector as the footprint.
        if not record["vector"] and previous.get("vector"):
            record["vector"] = dict(previous["vector"])
            record["hosts"] = previous.get("hosts")
    tracker.record_run(snapshot_key, question, record["params_key"], record)
    persist_record(cache, snapshot_key, record)
    return record


# ----------------------------------------------------------------------
# Coverage-guided prioritization


def prioritize_questions(
    records: Dict[Tuple[str, str], Dict],
    changed_hosts: Iterable[str],
    dirty_hosts: Iterable[str],
    everything: bool = False,
) -> Tuple[List[Dict], List[Dict]]:
    """Split recorded questions into (affected, skipped) for a delta.

    ``changed_hosts`` are devices whose config bytes changed;
    ``dirty_hosts`` the delta engine's routing dirty set;
    ``everything`` forces all questions affected (splice fallback — the
    engine could not bound the impact, so neither can we). Affected
    entries are ranked by overlap: the record's vector mass on impacted
    hosts plus its host intersection size, so the service can rerun the
    most-exposed questions first."""
    changed = set(changed_hosts)
    dirty = set(dirty_hosts)
    affected: List[Dict] = []
    skipped: List[Dict] = []
    for (question, _params_key), record in sorted(records.items()):
        scope = record.get("scope") or question_scope(question)
        hosts = record.get("hosts")
        if scope == "config":
            impact = changed
        elif scope == "routing":
            impact = changed | dirty
        else:
            impact = None  # global: always affected
        entry = {
            "question": question,
            "params": record.get("params") or {},
            "scope": scope,
            "overlap": 0,
        }
        if everything or impact is None or hosts is None:
            entry["overlap"] = _overlap(record, impact)
            affected.append(entry)
        elif set(hosts) & impact:
            entry["overlap"] = _overlap(record, impact)
            affected.append(entry)
        else:
            skipped.append(entry)
    affected.sort(key=lambda e: (-e["overlap"], e["question"]))
    skipped.sort(key=lambda e: e["question"])
    return affected, skipped


def _overlap(record: Dict, impact: Optional[Set[str]]) -> int:
    """Vector mass on impacted hosts + host-intersection size (1 floor
    so an affected question never ranks at zero)."""
    hosts = record.get("hosts")
    if impact is None:
        impact_hosts = set(hosts or [])
    else:
        impact_hosts = set(hosts or []) & impact
    score = len(impact_hosts)
    for rendered, count in (record.get("vector") or {}).items():
        key = parse_key(rendered)
        if key is None:
            continue
        if impact is None or key[1] in impact:
            score += int(count)
    return max(score, 1)


def questions_for_delta(
    tracker: CoverageTracker,
    cache,
    base_snapshot_key: str,
    new_snapshot_key: str,
    changed_hosts: Iterable[str],
    dirty_hosts: Iterable[str],
    everything: bool = False,
) -> Tuple[List[Dict], List[Dict]]:
    """The delta engine's entry point: load the base snapshot's records
    (run registry first, cache as backstop), prioritize against the
    delta's impact, and carry every *skipped* record forward under the
    new snapshot key — its answer is unchanged, so the record still
    describes the new snapshot and chains across further deltas."""
    records = dict(tracker.recorded_runs(base_snapshot_key))
    for key, record in load_records(cache, base_snapshot_key).items():
        records.setdefault(key, record)
    affected, skipped = prioritize_questions(
        records, changed_hosts, dirty_hosts, everything=everything
    )
    skipped_keys = {
        (entry["question"], canonical_params(entry["params"]))
        for entry in skipped
    }
    for key, record in records.items():
        if key in skipped_keys:
            tracker.record_run(new_snapshot_key, key[0], key[1], record)
            persist_record(cache, new_snapshot_key, record)
    return affected, skipped


# ----------------------------------------------------------------------
# Structure inventory, attribution matrix


def snapshot_structures(snapshot) -> List[Tuple[CoverageKey, str, str, int]]:
    """Every coverable structure a snapshot defines:
    (key, label, source_file, source_line)."""
    out: List[Tuple[CoverageKey, str, str, int]] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface_name in sorted(device.interfaces):
            iface = device.interfaces[iface_name]
            out.append(
                (
                    ("interface", hostname, iface_name, None),
                    f"{hostname}:{iface_name}",
                    iface.source_file,
                    iface.source_line,
                )
            )
        for acl_name in sorted(device.acls):
            for index, line in enumerate(device.acls[acl_name].lines):
                out.append(
                    (
                        ("acl_line", hostname, acl_name, index),
                        f"{hostname}:{acl_name}#{index}"
                        + (f" ({line.name})" if line.name else ""),
                        line.source_file,
                        line.source_line,
                    )
                )
        for rm_name in sorted(device.route_maps):
            for clause in device.route_maps[rm_name].sorted_clauses():
                out.append(
                    (
                        ("route_map_clause", hostname, rm_name, clause.seq),
                        f"{hostname}:{rm_name} seq {clause.seq}",
                        clause.source_file,
                        clause.source_line,
                    )
                )
    return out


def kind_totals(snapshot) -> Dict[str, int]:
    totals = {kind: 0 for kind in KINDS}
    for key, _label, _file, _line in snapshot_structures(snapshot):
        totals[key[0]] += 1
    return totals


def attribution_matrix(
    tracker: CoverageTracker, snapshot
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-question, per-kind coverage against the snapshot's totals:
    ``{question: {kind: {touched, total, ratio}}}``. Lint rule labels
    (``lint/<rule>``) roll up under ``lint``."""
    totals = kind_totals(snapshot)
    questions = sorted(
        {label.split("/", 1)[0] for label in tracker.vector_labels()}
    )
    matrix: Dict[str, Dict[str, Dict[str, float]]] = {}
    for question in questions:
        vector = tracker.question_vector(question)
        distinct: Dict[str, Set[CoverageKey]] = {kind: set() for kind in KINDS}
        for key in vector:
            if key[0] in distinct:
                distinct[key[0]].add(key)
        matrix[question] = {
            kind: {
                "touched": len(distinct[kind]),
                "total": totals[kind],
                "ratio": (
                    round(len(distinct[kind]) / totals[kind], 6)
                    if totals[kind]
                    else 0.0
                ),
            }
            for kind in KINDS
        }
    return matrix


# ----------------------------------------------------------------------
# Uncovered-stanza risk report + witness packets


@dataclass
class UncoveredStanza:
    """One config structure no question or lint rule touched."""

    kind: str
    hostname: str
    name: str
    index: Optional[int]
    label: str
    source_file: str = ""
    source_line: int = 0
    #: For ACL lines: whether any packet can reach the line (False =
    #: shadowed — dead config, a lint matter rather than a blind spot).
    reachable: Optional[bool] = None
    #: Suggested probe: ``{"packet": {...}, "inject": {...}|None}``.
    witness: Optional[Dict] = None

    def to_json(self) -> Dict:
        doc: Dict = {
            "kind": self.kind,
            "hostname": self.hostname,
            "name": self.name,
            "index": self.index,
            "label": self.label,
        }
        if self.source_file:
            doc["source"] = f"{self.source_file}:{self.source_line}"
        if self.reachable is not None:
            doc["reachable"] = self.reachable
        if self.witness is not None:
            doc["witness"] = self.witness
        return doc


@dataclass
class UncoveredReport:
    """Uncovered structures ranked by kind risk, plus per-kind ratios."""

    stanzas: List[UncoveredStanza] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)
    touched: Dict[str, int] = field(default_factory=dict)

    @property
    def uncovered_total(self) -> int:
        return len(self.stanzas)

    def by_kind(self) -> Dict[str, List[UncoveredStanza]]:
        grouped: Dict[str, List[UncoveredStanza]] = {
            kind: [] for kind in RISK_ORDER
        }
        for stanza in self.stanzas:
            grouped.setdefault(stanza.kind, []).append(stanza)
        return grouped

    def to_json(self) -> Dict:
        return {
            "uncovered_total": self.uncovered_total,
            "totals": dict(self.totals),
            "touched": dict(self.touched),
            "stanzas": [stanza.to_json() for stanza in self.stanzas],
        }

    def describe(self, limit: int = 10) -> str:
        lines = [f"uncovered stanzas: {self.uncovered_total}"]
        for kind, group in self.by_kind().items():
            total = self.totals.get(kind, 0)
            lines.append(
                f"  {kind}: {len(group)} uncovered of {total}"
            )
            for stanza in group[:limit]:
                where = (
                    f" ({stanza.source_file}:{stanza.source_line})"
                    if stanza.source_file
                    else ""
                )
                lines.append(f"    {stanza.label}{where}")
            if len(group) > limit:
                lines.append(f"    ... and {len(group) - limit} more")
        return "\n".join(lines)


def _packet_json(packet) -> Dict:
    return {
        "dst_ip": str(packet.dst_ip),
        "src_ip": str(packet.src_ip),
        "dst_port": packet.dst_port,
        "src_port": packet.src_port,
        "ip_protocol": packet.ip_protocol,
        "description": packet.describe(),
    }


def _acl_bindings(device, acl_name: str) -> Optional[Dict]:
    """Where to inject a witness so the concrete engine evaluates the
    ACL: the first interface binding it as an ingress filter, else the
    first egress binding (annotated, since egress needs a forwarding
    path to reach it)."""
    for iface_name in sorted(device.interfaces):
        if device.interfaces[iface_name].incoming_acl == acl_name:
            return {
                "node": device.hostname,
                "interface": iface_name,
                "direction": "in",
            }
    for iface_name in sorted(device.interfaces):
        if device.interfaces[iface_name].outgoing_acl == acl_name:
            return {
                "node": device.hostname,
                "interface": iface_name,
                "direction": "out",
            }
    return None


def witness_for_acl_line(
    device, acl_name: str, index: int, encoder: Optional[PacketEncoder] = None
) -> Optional[Dict]:
    """A concrete probe that exercises exactly ``acl_name`` line
    ``index`` on ``device``: a satisfying packet of the line's
    *effective* match set (its space minus every earlier line's), so
    first-match semantics guarantee the probe matches this line and no
    earlier one. None when the line is shadowed (empty effective set)."""
    acl = device.acls.get(acl_name)
    if acl is None or not (0 <= index < len(acl.lines)):
        return None
    encoder = encoder or PacketEncoder()
    spaces = acl_line_spaces(acl, encoder)
    effective = spaces[index][1]
    if effective == FALSE:
        return None
    inject = _acl_bindings(device, acl_name)
    if inject is not None and inject["direction"] == "out":
        # An egress ACL is only evaluated for packets the FIB forwards
        # out that interface; steer the witness's destination into the
        # interface's connected subnet when the line's match set allows
        # it, so tracing the probe actually reaches the ACL.
        prefix = device.interfaces[inject["interface"]].prefix
        if prefix is not None:
            steered = encoder.engine.and_(
                effective, encoder.ip_in_prefix(hdr_fields.DST_IP, prefix)
            )
            if steered != FALSE:
                effective = steered
    packet = encoder.example_packet(
        effective, default_preferences(encoder)
    )
    if packet is None:
        return None
    return {
        "packet": _packet_json(packet),
        "inject": inject,
    }


def uncovered_stanzas(
    tracker: CoverageTracker, snapshot, witnesses: int = 0
) -> UncoveredReport:
    """The blind-spot report: structures in the snapshot that *no*
    attribution label touched, risk-ranked by kind. ``witnesses`` > 0
    additionally synthesizes up to that many probe packets for
    reachable uncovered ACL lines (witness generation builds BDD line
    spaces per ACL, so it is opt-in)."""
    touched = set(tracker.touched_keys())
    report = UncoveredReport(
        totals={kind: 0 for kind in KINDS},
        touched={kind: 0 for kind in KINDS},
    )
    ordered: Dict[str, List[UncoveredStanza]] = {kind: [] for kind in RISK_ORDER}
    for key, label, source_file, source_line in snapshot_structures(snapshot):
        kind = key[0]
        report.totals[kind] += 1
        if key in touched:
            report.touched[kind] += 1
            continue
        ordered.setdefault(kind, []).append(
            UncoveredStanza(
                kind=kind,
                hostname=key[1],
                name=key[2],
                index=key[3],
                label=label,
                source_file=source_file,
                source_line=source_line,
            )
        )
    budget = max(0, int(witnesses))
    if budget:
        encoder = PacketEncoder()
        for stanza in ordered.get("acl_line", []):
            if budget <= 0:
                break
            device = snapshot.device(stanza.hostname)
            witness = witness_for_acl_line(
                device, stanza.name, stanza.index, encoder
            )
            stanza.reachable = witness is not None
            if witness is not None:
                stanza.witness = witness
                budget -= 1
    for kind in RISK_ORDER:
        report.stanzas.extend(ordered.get(kind, []))
    return report


# ----------------------------------------------------------------------
# Service surfaces: coverage payload, Prometheus series


def coverage_payload(session, witnesses: int = 0) -> Dict:
    """The ``GET /snapshots/{name}/coverage`` body: the per-question
    attribution matrix, recorded runs, and the uncovered-stanza list."""
    tracker = obs.coverage()
    matrix = attribution_matrix(tracker, session.snapshot)
    report = uncovered_stanzas(tracker, session.snapshot, witnesses=witnesses)
    records = [
        {
            "question": record["question"],
            "params": record.get("params") or {},
            "scope": record.get("scope", "global"),
            "hosts": record.get("hosts"),
            "touches": sum((record.get("vector") or {}).values()),
            "runs": record.get("runs", 1),
        }
        for (_q, _pk), record in sorted(
            tracker.recorded_runs(session.snapshot_key).items()
        )
    ]
    return {
        "schema": "repro-coverage/v1",
        "snapshot_key": session.snapshot_key,
        "questions": matrix,
        "records": records,
        "uncovered": report.to_json(),
    }


def prometheus_coverage(
    tracker: CoverageTracker, snapshots: Iterable
) -> Tuple[Dict[str, List[Tuple[Dict[str, str], float]]], int]:
    """Labeled gauge samples + the uncovered-stanza count for the
    ``/metrics`` exposition: ``coverage.ratio{question, kind}`` over the
    union of the stored snapshots' structures, and the total number of
    structures nothing touched."""
    totals = {kind: 0 for kind in KINDS}
    all_keys: Set[CoverageKey] = set()
    for snapshot in snapshots:
        for key, _label, _file, _line in snapshot_structures(snapshot):
            if key not in all_keys:
                all_keys.add(key)
                totals[key[0]] += 1
    samples: List[Tuple[Dict[str, str], float]] = []
    for question in sorted(
        {label.split("/", 1)[0] for label in tracker.vector_labels()}
    ):
        vector = tracker.question_vector(question)
        distinct: Dict[str, Set[CoverageKey]] = {kind: set() for kind in KINDS}
        for key in vector:
            if key[0] in distinct:
                distinct[key[0]].add(key)
        for kind in KINDS:
            if not totals[kind]:
                continue
            samples.append(
                (
                    {"question": question, "kind": kind},
                    len(distinct[kind]) / totals[kind],
                )
            )
    touched_keys = set(tracker.touched_keys())
    uncovered = sum(1 for key in all_keys if key not in touched_keys)
    return {"coverage.ratio": samples}, uncovered


# ----------------------------------------------------------------------
# CI coverage gate: python -m repro.questions.coverage

BASELINE_SCHEMA = "repro-coverage-baseline/v1"


def gate_battery(spec, scale: int = 1) -> Dict[str, Dict[str, List[int]]]:
    """Run the gate's fixed question battery over one registry network
    and return ``{question: {kind: [touched, total]}}``.

    The battery is reachability (the data-plane workhorse) plus lint
    (which sweeps every ACL line and route-map clause through the BDD
    rules) — together they bound how much of each structure kind the
    shipped questions can see, which is the ratio the gate pins."""
    from repro.core.session import Session
    from repro.obs import context as obs_context

    session = Session.from_texts(spec.generate(scale))
    with obs_context.attribution("reachability"):
        session.reachability()
    session.lint()  # rules self-attribute as lint/<rule_id>
    matrix = attribution_matrix(obs.coverage(), session.snapshot)
    return {
        question: {
            kind: [cell["touched"], cell["total"]]
            for kind, cell in kinds.items()
        }
        for question, kinds in matrix.items()
    }


def gate_run(
    network_names: Optional[List[str]] = None,
    scale: int = 1,
    verbose: bool = False,
) -> Dict[str, Dict[str, Dict[str, List[int]]]]:
    """The full gate sweep: battery per registry network, obs state
    reset between networks so ratios never bleed across them."""
    from repro.synth.networks import NETWORKS

    wanted = set(network_names) if network_names else None
    results: Dict[str, Dict[str, Dict[str, List[int]]]] = {}
    was_metrics = obs.active()
    obs.enable_metrics()
    try:
        for spec in NETWORKS:
            if wanted is not None and spec.name not in wanted:
                continue
            obs.coverage().reset()
            results[spec.name] = gate_battery(spec, scale)
            if verbose:
                summary = ", ".join(
                    f"{q}:{cells['acl_line'][0]}/{cells['acl_line'][1]} acl"
                    for q, cells in sorted(results[spec.name].items())
                )
                print(f"{spec.name}: {summary}", flush=True)
    finally:
        obs.coverage().reset()
        if not was_metrics:
            obs.disable()
    return results


def gate_diff(
    baseline: Dict, current: Dict
) -> List[Dict]:
    """Exact-match comparison; every discrepancy (regressed ratio,
    improved ratio, missing/new network or question) is drift — the
    baseline stays a faithful description or it fails."""
    drift: List[Dict] = []
    base_networks = baseline.get("networks", {})
    for network in sorted(set(base_networks) | set(current)):
        base = base_networks.get(network)
        now = current.get(network)
        if base is None or now is None:
            drift.append(
                {
                    "network": network,
                    "question": "*",
                    "kind": "*",
                    "baseline": base,
                    "current": now,
                    "message": (
                        f"network {network} "
                        + ("missing from baseline" if base is None else "not measured")
                    ),
                }
            )
            continue
        for question in sorted(set(base) | set(now)):
            base_q = base.get(question, {})
            now_q = now.get(question, {})
            for kind in sorted(set(base_q) | set(now_q)):
                expected = base_q.get(kind)
                measured = now_q.get(kind)
                if list(expected or []) != list(measured or []):
                    drift.append(
                        {
                            "network": network,
                            "question": question,
                            "kind": kind,
                            "baseline": expected,
                            "current": measured,
                            "message": (
                                f"{network}/{question}/{kind}: "
                                f"baseline {expected} != current {measured}"
                            ),
                        }
                    )
    return drift


def gate_sarif(drift: List[Dict]) -> Dict:
    """SARIF 2.1.0 artifact mirroring the lint baseline gate's format,
    one result per drift entry."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-coverage-gate",
                        "informationUri": "https://github.com/batfish/batfish",
                        "rules": [
                            {
                                "id": "coverage-drift",
                                "shortDescription": {
                                    "text": (
                                        "Per-question coverage ratio differs "
                                        "from the committed baseline"
                                    )
                                },
                            }
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": "coverage-drift",
                        "level": "error",
                        "message": {"text": entry["message"]},
                        "properties": {
                            "network": entry["network"],
                            "question": entry["question"],
                            "kind": entry["kind"],
                            "baseline": entry["baseline"],
                            "current": entry["current"],
                        },
                    }
                    for entry in drift
                ],
            }
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.questions.coverage",
        description=(
            "CI coverage gate: run the question battery over the "
            "synthetic network registry and compare per-question "
            "coverage ratios against a committed baseline."
        ),
    )
    parser.add_argument(
        "--network",
        action="append",
        help="registry network name (repeatable; default: all)",
    )
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument(
        "--baseline", help="baseline JSON to compare against (drift -> exit 2)"
    )
    parser.add_argument(
        "--out", help="write the measured ratios as JSON here"
    )
    parser.add_argument(
        "--sarif", help="write a SARIF drift artifact here (always written)"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write --baseline (or --out) from the current measurement",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    current = gate_run(args.network, scale=args.scale, verbose=args.verbose)
    doc = {"schema": BASELINE_SCHEMA, "networks": current}
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.write_baseline:
        target = args.baseline or args.out
        if not target:
            parser.error("--write-baseline needs --baseline or --out")
        with open(target, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"coverage baseline written: {target}", flush=True)
        return 0
    if not args.baseline:
        print(
            f"measured {len(current)} network(s); no --baseline given",
            flush=True,
        )
        return 0
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    drift = gate_diff(baseline, current)
    if args.sarif:
        with open(args.sarif, "w") as handle:
            json.dump(gate_sarif(drift), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if drift:
        for entry in drift:
            print(f"coverage drift: {entry['message']}", flush=True)
        print(
            f"{len(drift)} coverage drift(s) vs {args.baseline}; refresh "
            "with: python -m repro.questions.coverage --write-baseline "
            f"--baseline {args.baseline}",
            flush=True,
        )
        return 2
    print(
        f"coverage gate clean: {len(current)} network(s) match "
        f"{args.baseline}",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
