"""Differential (snapshot-comparison) questions.

Proactive validation (§5.1) is fundamentally comparative: a candidate
change is judged by what it *changes*. These questions compare two
snapshots — typically "deployed" vs "candidate" — at the routing and
forwarding levels, surfacing exactly the collateral movement that the
paper's §5.1.2 anecdote describes (an engineer discovering that ten
devices, not two, needed updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd.engine import FALSE
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.packet import Packet
from repro.reachability.examples import default_preferences
from repro.reachability.graph import GraphNode
from repro.reachability.queries import NetworkAnalyzer
from repro.routing.engine import DataPlane


@dataclass(frozen=True)
class RouteDiffRow:
    node: str
    change: str  # "added" | "removed"
    description: str


@dataclass
class RouteDiffAnswer:
    rows: List[RouteDiffRow]

    @property
    def affected_nodes(self) -> List[str]:
        return sorted({row.node for row in self.rows})

    def added(self) -> List[RouteDiffRow]:
        return [row for row in self.rows if row.change == "added"]

    def removed(self) -> List[RouteDiffRow]:
        return [row for row in self.rows if row.change == "removed"]


def compare_routes(before: DataPlane, after: DataPlane) -> RouteDiffAnswer:
    """Diff the main RIBs of two computed data planes."""
    rows: List[RouteDiffRow] = []
    nodes = sorted(set(before.nodes) | set(after.nodes))
    for node in nodes:
        before_routes: Set[str] = set()
        after_routes: Set[str] = set()
        if node in before.nodes:
            before_routes = {r.describe() for r in before.main_rib(node).routes()}
        if node in after.nodes:
            after_routes = {r.describe() for r in after.main_rib(node).routes()}
        for description in sorted(after_routes - before_routes):
            rows.append(RouteDiffRow(node, "added", description))
        for description in sorted(before_routes - after_routes):
            rows.append(RouteDiffRow(node, "removed", description))
    return RouteDiffAnswer(rows=rows)


@dataclass
class ReachabilityDiffAnswer:
    """Flows that change fate between two snapshots, per source."""

    #: source -> set of flows that succeed after but not before.
    gained: Dict[GraphNode, int] = field(default_factory=dict)
    #: source -> set of flows that succeeded before but not after.
    lost: Dict[GraphNode, int] = field(default_factory=dict)
    gained_examples: Dict[GraphNode, Packet] = field(default_factory=dict)
    lost_examples: Dict[GraphNode, Packet] = field(default_factory=dict)

    @property
    def unchanged(self) -> bool:
        return not self.gained and not self.lost


def compare_reachability(
    before: NetworkAnalyzer,
    after: NetworkAnalyzer,
    sources: Sequence[Tuple[str, Optional[str]]],
    headerspace_bdd: int = 1,
) -> ReachabilityDiffAnswer:
    """Differential reachability: which flows gain or lose end-to-end
    success under the candidate change?

    Both analyzers must share a :class:`PacketEncoder` so their BDDs are
    comparable.
    """
    if before.encoder is not after.encoder:
        raise ValueError("analyzers must share one PacketEncoder")
    engine = before.encoder.engine
    answer = ReachabilityDiffAnswer()
    preferences = default_preferences(before.encoder)
    for location in sources:
        before_map = before.sources_at([location], headerspace_bdd)
        after_map = after.sources_at([location], headerspace_bdd)
        for source in sorted(
            set(before_map) | set(after_map), key=lambda n: tuple(map(str, n))
        ):
            old = (
                before.reachability({source: before_map[source]}).success_set()
                if source in before_map
                else FALSE
            )
            new = (
                after.reachability({source: after_map[source]}).success_set()
                if source in after_map
                else FALSE
            )
            gained = engine.diff(new, old)
            lost = engine.diff(old, new)
            if gained != FALSE:
                answer.gained[source] = gained
                answer.gained_examples[source] = before.encoder.example_packet(
                    gained, preferences
                )
            if lost != FALSE:
                answer.lost[source] = lost
                answer.lost_examples[source] = before.encoder.example_packet(
                    lost, preferences
                )
    return answer
