"""Filter (ACL) questions: testFilters, searchFilters, and unreachable
lines (Lesson 5 / the ACL-refactoring use-case of §5.3).

``test_filter`` answers "does this ACL permit this concrete packet, and
which line decides?" — the direct replacement for lab-testing a filter.
``search_filters`` finds the packets within a header space that an ACL
permits/denies symbolically. ``unreachable_filter_lines`` finds lines
fully shadowed by earlier lines — the entries ACL-compression projects
remove (e.g. the large-ACL refactoring story in §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bdd.engine import FALSE
from repro.config.model import Acl, AclLine, Action, Device, Snapshot
from repro.dataplane.acl import (
    AclResult,
    acl_line_spaces,
    acl_permit_space,
    evaluate_acl,
)
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.packet import Packet
from repro.reachability.examples import default_preferences


@dataclass
class TestFilterRow:
    hostname: str
    filter_name: str
    packet: Packet
    action: Action
    matched_line: Optional[str]  # None = implicit deny


def test_filter(
    snapshot: Snapshot, hostname: str, filter_name: str, packet: Packet
) -> TestFilterRow:
    """Evaluate one packet against one ACL (concrete semantics)."""
    device = snapshot.device(hostname)
    acl = device.acls.get(filter_name)
    if acl is None:
        raise KeyError(f"{hostname} has no filter {filter_name!r}")
    result = evaluate_acl(acl, packet)
    return TestFilterRow(
        hostname=hostname,
        filter_name=filter_name,
        packet=packet,
        action=result.action,
        matched_line=result.line.name if result.line else None,
    )


@dataclass
class SearchFiltersRow:
    hostname: str
    filter_name: str
    action: Action
    example: Packet
    matched_line: Optional[str]


def search_filters(
    snapshot: Snapshot,
    headerspace: HeaderSpace,
    action: Action = Action.PERMIT,
    encoder: Optional[PacketEncoder] = None,
) -> List[SearchFiltersRow]:
    """Find, for every ACL in the network, whether it can take ``action``
    on some packet in ``headerspace`` — with an example packet."""
    encoder = encoder or PacketEncoder()
    engine = encoder.engine
    space = headerspace.to_bdd(encoder)
    preferences = default_preferences(encoder)
    rows: List[SearchFiltersRow] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for filter_name in sorted(device.acls):
            acl = device.acls[filter_name]
            permit = acl_permit_space(acl, encoder)
            target = permit if action is Action.PERMIT else engine.not_(permit)
            overlap = engine.and_(space, target)
            if overlap == FALSE:
                continue
            packet = encoder.example_packet(overlap, preferences)
            result = evaluate_acl(acl, packet)
            rows.append(
                SearchFiltersRow(
                    hostname=hostname,
                    filter_name=filter_name,
                    action=action,
                    example=packet,
                    matched_line=result.line.name if result.line else None,
                )
            )
    return rows


@dataclass
class UnreachableLineRow:
    hostname: str
    filter_name: str
    line_index: int
    line: str
    blocking_lines: List[int]


def unreachable_filter_lines(
    snapshot: Snapshot, encoder: Optional[PacketEncoder] = None
) -> List[UnreachableLineRow]:
    """Lines that can never match because earlier lines shadow them.

    These are exactly the redundant entries the §5.3 refactoring
    use-case compresses away. The blocking lines are reported so the
    user can see *why* the line is dead.
    """
    encoder = encoder or PacketEncoder()
    engine = encoder.engine
    rows: List[UnreachableLineRow] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for filter_name in sorted(device.acls):
            acl = device.acls[filter_name]
            spaces = acl_line_spaces(acl, encoder)
            for index, (line, effective) in enumerate(spaces):
                if effective != FALSE:
                    continue
                from repro.dataplane.acl import line_space

                full = line_space(line, encoder)
                blockers: List[int] = []
                remaining = full
                for earlier_index in range(index):
                    earlier_space = line_space(acl.lines[earlier_index], encoder)
                    if engine.and_(remaining, earlier_space) != FALSE:
                        blockers.append(earlier_index)
                        remaining = engine.diff(remaining, earlier_space)
                        if remaining == FALSE:
                            break
                rows.append(
                    UnreachableLineRow(
                        hostname=hostname,
                        filter_name=filter_name,
                        line_index=index,
                        line=line.name or str(line.action.value),
                        blocking_lines=blockers,
                    )
                )
    return rows
