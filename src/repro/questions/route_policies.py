"""Route-policy questions: testRoutePolicies / searchRoutePolicies.

Lesson 5 again: beyond forwarding, engineers want to unit-test their
routing policies directly. ``test_route_policy`` evaluates one candidate
route against a named policy and reports the decision with the full
clause trace; ``search_route_policies`` sweeps a set of candidate
prefixes and reports which are permitted/denied and how their attributes
are transformed — the offline policy review used when refactoring
routing design (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.model import Action, Snapshot
from repro.hdr.ip import Prefix
from repro.routing.policy import (
    DEFAULT_SEMANTICS,
    PolicyRoute,
    PolicySemantics,
    apply_route_map,
)


@dataclass
class RoutePolicyTestResult:
    hostname: str
    policy: str
    input_route: PolicyRoute
    action: Action
    output_route: Optional[PolicyRoute]
    trace: List[str]

    @property
    def permitted(self) -> bool:
        return self.action is Action.PERMIT

    def attribute_changes(self) -> Dict[str, Tuple[object, object]]:
        """Attributes the policy modified: name -> (before, after)."""
        if self.output_route is None:
            return {}
        changes: Dict[str, Tuple[object, object]] = {}
        for name in (
            "local_pref", "med", "as_path", "next_hop_ip", "tag", "weight",
        ):
            before = getattr(self.input_route, name)
            after = getattr(self.output_route, name)
            if before != after:
                changes[name] = (before, after)
        if self.input_route.communities != self.output_route.communities:
            changes["communities"] = (
                tuple(sorted(self.input_route.communities)),
                tuple(sorted(self.output_route.communities)),
            )
        return changes


def test_route_policy(
    snapshot: Snapshot,
    hostname: str,
    policy: str,
    route: PolicyRoute,
    semantics: PolicySemantics = DEFAULT_SEMANTICS,
) -> RoutePolicyTestResult:
    """Evaluate one candidate route against one policy, with trace."""
    device = snapshot.device(hostname)
    if policy not in device.route_maps:
        raise KeyError(f"{hostname} has no route map {policy!r}")
    result = apply_route_map(device, policy, route, semantics)
    return RoutePolicyTestResult(
        hostname=hostname,
        policy=policy,
        input_route=route,
        action=Action.PERMIT if result.permitted else Action.DENY,
        output_route=result.route,
        trace=result.trace,
    )


@dataclass
class RoutePolicySearchRow:
    hostname: str
    policy: str
    prefix: Prefix
    action: Action
    changes: Dict[str, Tuple[object, object]] = field(default_factory=dict)


def search_route_policies(
    snapshot: Snapshot,
    prefixes: Sequence[Prefix],
    action: Action = Action.PERMIT,
    nodes: Optional[Sequence[str]] = None,
    semantics: PolicySemantics = DEFAULT_SEMANTICS,
) -> List[RoutePolicySearchRow]:
    """For every policy on the selected nodes, report which of the
    candidate prefixes it treats with ``action`` (and how it rewrites
    their attributes)."""
    rows: List[RoutePolicySearchRow] = []
    hostnames = list(nodes) if nodes is not None else snapshot.hostnames()
    for hostname in hostnames:
        device = snapshot.device(hostname)
        for policy_name in sorted(device.route_maps):
            for prefix in prefixes:
                candidate = PolicyRoute(prefix=prefix)
                result = apply_route_map(
                    device, policy_name, candidate, semantics
                )
                decided = Action.PERMIT if result.permitted else Action.DENY
                if decided is not action:
                    continue
                test = RoutePolicyTestResult(
                    hostname=hostname,
                    policy=policy_name,
                    input_route=candidate,
                    action=decided,
                    output_route=result.route,
                    trace=result.trace,
                )
                rows.append(
                    RoutePolicySearchRow(
                        hostname=hostname,
                        policy=policy_name,
                        prefix=prefix,
                        action=decided,
                        changes=test.attribute_changes(),
                    )
                )
    return rows
