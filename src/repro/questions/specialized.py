"""Task-specific reachability questions (§4.4.1).

"Batfish now wraps the underlying general mechanisms with highly
task-specific queries. Checking if a service endpoint is reachable from
its intended client locations is a separate query from checking if a
service cannot be reached." Each question picks its own scoping
defaults (§4.4.2) and reports contrasting positive/negative examples
(§4.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.reachability.examples import (
    default_preferences,
    differing_fields,
    pick_example_pair,
)
from repro.reachability.graph import Disposition, GraphNode, src_node
from repro.reachability.queries import NetworkAnalyzer


@dataclass
class ServiceReachabilityAnswer:
    """Answer of the "clients can reach the service" question."""

    service: str
    reachable: bool
    #: sources that can NOT reach the service at all.
    failing_sources: List[GraphNode] = field(default_factory=list)
    #: per failing source: a counterexample and a contrasting positive
    #: example (if some traffic does get through), with the differing
    #: fields between them.
    examples: Dict[GraphNode, Tuple[Optional[Packet], Optional[Packet], List[str]]] = field(
        default_factory=dict
    )


def service_reachable(
    analyzer: NetworkAnalyzer,
    service_ip: "Ip | str",
    port: int,
    client_locations: Optional[Sequence[Tuple[str, Optional[str]]]] = None,
    protocols: Sequence[int] = (f.PROTO_TCP,),
) -> ServiceReachabilityAnswer:
    """Can the intended clients reach the service endpoint?

    The intent is "every client location can deliver service traffic";
    sources whose entire (scoped) service-traffic space fails are
    reported with contrasting examples.

    Scoping defaults (§4.4.2): without explicit client locations, the
    host-facing interfaces are used with plausible source addresses,
    suppressing spoofed-source and similar uninteresting violations.
    """
    encoder = analyzer.encoder
    engine = encoder.engine
    service_ip = Ip(service_ip)
    service_space = engine.and_(
        encoder.ip_eq(f.DST_IP, service_ip),
        engine.and_(
            encoder.field_eq(f.DST_PORT, port),
            engine.all_or(encoder.protocol(p) for p in protocols),
        ),
    )
    if client_locations is None:
        sources = analyzer.default_sources(service_space)
    else:
        sources = analyzer.sources_at(client_locations, service_space)
    answer = ServiceReachabilityAnswer(
        service=f"{service_ip}:{port}", reachable=True
    )
    for source, space in sorted(sources.items(), key=lambda kv: tuple(map(str, kv[0]))):
        result = analyzer.reachability({source: space})
        success = result.success_set()
        failure = result.failure_set()
        never_delivered = engine.diff(space, success)
        if never_delivered == FALSE:
            continue
        answer.reachable = False
        answer.failing_sources.append(source)
        negative, positive = pick_example_pair(
            encoder, never_delivered, success,
            default_preferences(encoder, dst_prefix=Prefix(service_ip.value, 32)),
        )
        contrast = (
            differing_fields(negative, positive)
            if negative is not None and positive is not None
            else []
        )
        answer.examples[source] = (negative, positive, contrast)
    return answer


@dataclass
class ServiceIsolationAnswer:
    """Answer of the "service must NOT be reachable" question."""

    service: str
    isolated: bool
    leaking_sources: List[GraphNode] = field(default_factory=list)
    examples: Dict[GraphNode, Packet] = field(default_factory=dict)


def service_unreachable(
    analyzer: NetworkAnalyzer,
    service_ip: "Ip | str",
    port: int,
    from_locations: Optional[Sequence[Tuple[str, Optional[str]]]] = None,
    protocols: Sequence[int] = (f.PROTO_TCP,),
) -> ServiceIsolationAnswer:
    """The security-oriented twin of :func:`service_reachable`: verify
    that no (scoped) traffic can reach the endpoint — a separate query
    with different defaults, per §4.4.1."""
    encoder = analyzer.encoder
    engine = encoder.engine
    service_ip = Ip(service_ip)
    service_space = engine.and_(
        encoder.ip_eq(f.DST_IP, service_ip),
        engine.and_(
            encoder.field_eq(f.DST_PORT, port),
            engine.all_or(encoder.protocol(p) for p in protocols),
        ),
    )
    if from_locations is None:
        # Security default: all entry points, unscoped sources (an
        # attacker may spoof).
        sources = analyzer.all_sources(service_space)
    else:
        sources = analyzer.sources_at(from_locations, service_space)
    answer = ServiceIsolationAnswer(service=f"{service_ip}:{port}", isolated=True)
    for source, space in sorted(sources.items(), key=lambda kv: tuple(map(str, kv[0]))):
        result = analyzer.reachability({source: space})
        delivered = result.success_set()
        if delivered == FALSE:
            continue
        answer.isolated = False
        answer.leaking_sources.append(source)
        example = encoder.example_packet(
            delivered, default_preferences(encoder)
        )
        if example is not None:
            answer.examples[source] = example
    return answer
