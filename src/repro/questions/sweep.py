"""The ``sweep`` question: resilience sweeps over the service API.

Decodes wire params into :meth:`Session.sweep` arguments (raising
``ValueError`` on malformed input — the service layer maps that to a
structured 400) and encodes the result for the job payload. Kept out
of :mod:`repro.service.serialize` so the CLI and notebook users can
reuse the same wire schema.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sweep.report import findings_from_result
from repro.sweep.scenarios import ALL_KINDS, ReachabilityProperty

#: The wire params the sweep question accepts.
PARAM_KEYS = {
    "k",
    "kinds",
    "property",
    "prune",
    "limit",
    "max_elements",
    "jobs",
}


def _int_param(params: Dict, key: str, minimum: int) -> Optional[int]:
    value = params.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{key} must be an integer")
    if value < minimum:
        raise ValueError(f"{key} must be >= {minimum}")
    return value


def property_from_json(body: Dict) -> ReachabilityProperty:
    if not isinstance(body, dict):
        raise ValueError("property must be an object")
    unknown = sorted(
        set(body)
        - {
            "src_node",
            "src_interface",
            "dst_ip",
            "src_ip",
            "ip_protocol",
            "dst_port",
        }
    )
    if unknown:
        raise ValueError(f"unknown property field(s): {', '.join(unknown)}")
    for required in ("src_node", "src_interface", "dst_ip"):
        if not isinstance(body.get(required), str) or not body[required]:
            raise ValueError(f"property.{required} must be a non-empty string")
    kwargs = {
        "src_node": body["src_node"],
        "src_interface": body["src_interface"],
        "dst_ip": body["dst_ip"],
    }
    if "src_ip" in body:
        if not isinstance(body["src_ip"], str):
            raise ValueError("property.src_ip must be a string")
        kwargs["src_ip"] = body["src_ip"]
    for key in ("ip_protocol", "dst_port"):
        if key in body:
            value = body[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"property.{key} must be an integer")
            kwargs[key] = value
    return ReachabilityProperty(**kwargs)


def sweep_kwargs_from_json(params: Dict) -> Dict:
    """Wire params -> ``Session.sweep`` keyword arguments."""
    unknown = sorted(set(params) - PARAM_KEYS)
    if unknown:
        raise ValueError(f"unknown sweep param(s): {', '.join(unknown)}")
    kwargs: Dict = {}
    k = _int_param(params, "k", 1)
    if k is not None:
        kwargs["k"] = k
    kinds = params.get("kinds")
    if kinds is not None:
        if not isinstance(kinds, list) or not all(
            isinstance(kind, str) for kind in kinds
        ):
            raise ValueError("kinds must be a list of strings")
        bad = sorted(set(kinds) - set(ALL_KINDS))
        if bad:
            raise ValueError(
                f"unknown element kind(s): {', '.join(bad)} "
                f"(choose from {', '.join(ALL_KINDS)})"
            )
        if not kinds:
            raise ValueError("kinds must not be empty")
        kwargs["kinds"] = tuple(kinds)
    if params.get("property") is not None:
        kwargs["prop"] = property_from_json(params["property"])
    if "prune" in params:
        if not isinstance(params["prune"], bool):
            raise ValueError("prune must be a boolean")
        kwargs["prune"] = params["prune"]
    for key in ("limit", "max_elements", "jobs"):
        value = _int_param(params, key, 1)
        if value is not None:
            kwargs[key] = value
    return kwargs


def sweep_answer(session, params: Dict) -> Dict:
    """Run the sweep and encode the job result payload."""
    kwargs = sweep_kwargs_from_json(params)
    result = session.sweep(**kwargs)
    host_to_file = {
        hostname: filename
        for filename, hostname in session.snapshot.sources.items()
    }
    findings = findings_from_result(result, host_to_file)
    body = result.to_json()
    body["findings"] = [finding.to_json() for finding in findings]
    return body
