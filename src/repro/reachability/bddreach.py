"""BDD dataflow propagation over the forwarding graph (§4.2.1).

"Following standard dataflow analysis, we start with the set of packets
of interest at the source and iteratively traverse edges in the graph to
update the set of packets that can reach each node, until we reach a
fixed point." Multipath routing is modeled inherently since all paths
are traversed.

Both directions are provided:

* :func:`forward_reachability` — the general engine;
* :func:`backward_reachability` — the single-destination optimization:
  "we walk the graph backwards from the destination toward the sources
  ... it saves us from walking the edges that do not lie on the
  destination's forwarding tree."
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Tuple

from repro.bdd.engine import FALSE
from repro.reachability.graph import ForwardingGraph, GraphNode


def forward_reachability(
    graph: ForwardingGraph,
    sources: Dict[GraphNode, int],
    max_visits_per_node: int = 10_000,
) -> Dict[GraphNode, int]:
    """Fixed-point forward propagation.

    ``sources`` maps graph nodes to initial packet sets; the result maps
    every node to the set of packets that can reach it. Receivers union
    incoming sets, so everything reachable over any path is captured.
    """
    engine = graph.encoder.engine
    reach: Dict[GraphNode, int] = {}
    worklist = deque()
    queued = set()
    for node, packet_set in sorted(sources.items(), key=_node_key):
        if packet_set == FALSE:
            continue
        reach[node] = engine.or_(reach.get(node, FALSE), packet_set)
        if node not in queued:
            worklist.append(node)
            queued.add(node)
    visits: Dict[GraphNode, int] = {}
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > max_visits_per_node:
            raise RuntimeError(f"propagation did not stabilize at {node}")
        current = reach.get(node, FALSE)
        if current == FALSE:
            continue
        for edge in graph.out_edges(node):
            moved = edge.fn.forward(current)
            if moved == FALSE:
                continue
            existing = reach.get(edge.head, FALSE)
            merged = engine.or_(existing, moved)
            if merged != existing:
                reach[edge.head] = merged
                if edge.head not in queued:
                    worklist.append(edge.head)
                    queued.add(edge.head)
    return reach


def backward_reachability(
    graph: ForwardingGraph,
    targets: Dict[GraphNode, int],
    max_visits_per_node: int = 10_000,
) -> Dict[GraphNode, int]:
    """Fixed-point backward propagation from target sets.

    The result maps each node to the set of packets that, arriving at
    that node, can go on to reach a target. Only edges on the targets'
    (reverse) forwarding tree are walked.
    """
    engine = graph.encoder.engine
    reach: Dict[GraphNode, int] = {}
    worklist = deque()
    queued = set()
    for node, packet_set in sorted(targets.items(), key=_node_key):
        if packet_set == FALSE:
            continue
        reach[node] = engine.or_(reach.get(node, FALSE), packet_set)
        if node not in queued:
            worklist.append(node)
            queued.add(node)
    visits: Dict[GraphNode, int] = {}
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > max_visits_per_node:
            raise RuntimeError(f"backward propagation did not stabilize at {node}")
        current = reach.get(node, FALSE)
        if current == FALSE:
            continue
        for edge in graph.in_edges(node):
            moved = edge.fn.backward(current)
            if moved == FALSE:
                continue
            existing = reach.get(edge.tail, FALSE)
            merged = engine.or_(existing, moved)
            if merged != existing:
                reach[edge.tail] = merged
                if edge.tail not in queued:
                    worklist.append(edge.tail)
                    queued.add(edge.tail)
    return reach


def _node_key(item: Tuple[GraphNode, int]):
    return tuple(str(part) for part in item[0])
