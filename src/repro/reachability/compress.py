"""Graph compression (§4.2.3).

"Many nodes in the dataflow graph are simple, i.e., they have only one
incoming or outgoing edge ... We implemented an optimization that
identifies and deletes these" — contracting chains of pass-through nodes
and composing their edge functions, which removes the repeated BDD work
of walking trivial hops during propagation.

A node is contractible when it has exactly one incoming and one outgoing
edge and is neither a source, a sink, nor a disposition node. The two
edge functions compose; adjacent :class:`Constraint` functions fuse into
a single conjunction so the compressed edge costs one BDD op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.reachability.graph import (
    Compose,
    Constraint,
    Edge,
    EdgeFunction,
    ForwardingGraph,
    Identity,
)

#: Node kinds never contracted: sources, sinks, dispositions, and the
#: stateful-firewall points that session recording (post_zone) and
#: session fast-path splicing (zone_policy/zone_clear, in_acl) attach to.
_PROTECTED_KINDS = {
    "src", "sink", "disp", "zone_policy", "zone_clear", "post_zone", "in_acl",
}


@dataclass
class CompressionStats:
    nodes_before: int = 0
    edges_before: int = 0
    nodes_after: int = 0
    edges_after: int = 0
    nodes_removed: int = 0


def _compose(engine, first: EdgeFunction, second: EdgeFunction) -> EdgeFunction:
    """Compose two edge functions, fusing constraints where possible."""
    if isinstance(first, Identity):
        return second
    if isinstance(second, Identity):
        return first
    if isinstance(first, Constraint) and isinstance(second, Constraint):
        return Constraint(
            engine,
            engine.and_(first.label, second.label),
            f"{first.note} & {second.note}",
        )
    parts: List[EdgeFunction] = []
    for fn in (first, second):
        if isinstance(fn, Compose):
            parts.extend(fn.parts)
        else:
            parts.append(fn)
    return Compose(parts)


def compress_graph(graph: ForwardingGraph) -> CompressionStats:
    """Contract simple nodes in place. Returns before/after statistics.

    Works over mutable adjacency maps with a worklist, so each
    contraction is O(1) plus one BDD conjunction for fused constraints.
    """
    stats = CompressionStats(
        nodes_before=graph.num_nodes(), edges_before=graph.num_edges()
    )
    engine = graph.encoder.engine
    out_edges: Dict[tuple, List[Edge]] = {}
    in_edges: Dict[tuple, List[Edge]] = {}
    for edge in graph.edges:
        out_edges.setdefault(edge.tail, []).append(edge)
        in_edges.setdefault(edge.head, []).append(edge)
    worklist = sorted(graph.nodes, key=lambda n: tuple(str(p) for p in n))
    queued: Set[tuple] = set(worklist)
    removed_nodes: Set[tuple] = set()
    while worklist:
        node = worklist.pop()
        queued.discard(node)
        if node in removed_nodes or node[0] in _PROTECTED_KINDS:
            continue
        ins = in_edges.get(node, [])
        outs = out_edges.get(node, [])
        if len(ins) != 1 or len(outs) != 1:
            continue
        incoming, outgoing = ins[0], outs[0]
        if incoming.tail == node or outgoing.head == node:
            continue  # self loop, leave alone
        fused = Edge(
            incoming.tail, outgoing.head, _compose(engine, incoming.fn, outgoing.fn)
        )
        out_edges[incoming.tail].remove(incoming)
        in_edges[outgoing.head].remove(outgoing)
        out_edges.setdefault(fused.tail, []).append(fused)
        in_edges.setdefault(fused.head, []).append(fused)
        in_edges.pop(node, None)
        out_edges.pop(node, None)
        removed_nodes.add(node)
        stats.nodes_removed += 1
        for endpoint in (incoming.tail, outgoing.head):
            if endpoint not in queued:
                worklist.append(endpoint)
                queued.add(endpoint)
    graph.edges = [
        edge for edges in out_edges.values() for edge in edges
    ]
    graph.rebuild_indices()
    stats.nodes_after = graph.num_nodes()
    stats.edges_after = graph.num_edges()
    return stats
