"""Example selection and annotation (§4.4.3).

"Batfish picks examples (positive or negative) carefully to match what
is likely for the network ... common protocols (e.g., TCP) and
applications (e.g., HTTP) are prioritized. BDDs help to select positive
and negative examples quickly by intersecting the answer space with
preference constraints."

:func:`default_preferences` builds the standard preference chain;
:func:`pick_example_pair` returns a contrasting positive/negative pair
("if they differ only in source ports, the source port of the
counterexample is problematic"); :func:`annotate_packet` attaches the
routing and ACL entries a packet hits (via the concrete traceroute
engine — the Stage 4 provenance replacement after Datalog's automatic
provenance was lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.engine import FALSE
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Prefix
from repro.hdr.packet import Packet

_COMMON_DST_PORTS = (80, 443, 22, 53)
_EPHEMERAL_LOW = 49152


def default_preferences(
    encoder: PacketEncoder,
    src_prefix: Optional[Prefix] = None,
    dst_prefix: Optional[Prefix] = None,
) -> List[int]:
    """Preference constraints, strongest first. Each is applied greedily
    and kept only while the answer space stays non-empty."""
    engine = encoder.engine
    preferences: List[int] = []
    if src_prefix is not None:
        preferences.append(encoder.ip_in_prefix(f.SRC_IP, src_prefix))
    if dst_prefix is not None:
        preferences.append(encoder.ip_in_prefix(f.DST_IP, dst_prefix))
    # Prefer TCP, then common applications, then a fresh (non-reply)
    # connection from an ephemeral port.
    preferences.append(encoder.tcp())
    preferences.append(
        engine.all_or(
            encoder.field_eq(f.DST_PORT, port) for port in _COMMON_DST_PORTS
        )
    )
    preferences.append(encoder.field_eq(f.DST_PORT, 80))
    preferences.append(
        encoder.field_in_range(f.SRC_PORT, _EPHEMERAL_LOW, 65535)
    )
    preferences.append(encoder.tcp_flag(f.TCP_ACK, False))
    preferences.append(encoder.tcp_flag(f.TCP_SYN, True))
    # Avoid addresses that read as bogus in reports (0.0.0.0, multicast).
    preferences.append(
        engine.not_(encoder.ip_in_prefix(f.SRC_IP, Prefix("0.0.0.0/8")))
    )
    preferences.append(
        engine.not_(encoder.ip_in_prefix(f.DST_IP, Prefix("224.0.0.0/4")))
    )
    return preferences


def pick_example_pair(
    encoder: PacketEncoder,
    violating_set: int,
    satisfying_set: int,
    preferences: Optional[Sequence[int]] = None,
) -> Tuple[Optional[Packet], Optional[Packet]]:
    """A (counterexample, positive example) pair chosen under the same
    preferences so they contrast meaningfully."""
    prefs = list(preferences) if preferences is not None else default_preferences(encoder)
    negative = encoder.example_packet(violating_set, prefs)
    positive = None
    if satisfying_set != FALSE and negative is not None:
        # Bias the positive example toward the counterexample's values so
        # the diff isolates the problematic field.
        anchored = [encoder.packet_bdd(negative)] + [
            _field_anchor(encoder, negative, name)
            for name in (f.DST_IP, f.SRC_IP, f.DST_PORT, f.IP_PROTOCOL, f.SRC_PORT)
        ] + prefs
        positive = encoder.example_packet(satisfying_set, anchored)
    elif satisfying_set != FALSE:
        positive = encoder.example_packet(satisfying_set, prefs)
    return negative, positive


def _field_anchor(encoder: PacketEncoder, packet: Packet, field_name: str) -> int:
    return encoder.field_eq(field_name, packet.field_value(field_name))


def differing_fields(a: Packet, b: Packet) -> List[str]:
    """Header fields on which two packets differ — the contrast shown to
    the user next to an example pair."""
    return [
        name
        for name in f.HEADER_FIELDS
        if a.field_value(name) != b.field_value(name)
    ]


@dataclass
class PacketAnnotation:
    """Context attached to an example packet."""

    packet: Packet
    start_location: Tuple[str, str]
    disposition: str
    hops: List[str] = field(default_factory=list)
    acl_lines_hit: List[str] = field(default_factory=list)
    fib_entries_hit: List[str] = field(default_factory=list)


def annotate_packet(
    analyzer, packet: Packet, start_node: str, start_interface: str
) -> PacketAnnotation:
    """Run the concrete traceroute engine for the packet and collect the
    routing and ACL entries it touches along its path(s)."""
    from repro.traceroute.engine import TracerouteEngine

    tracer = TracerouteEngine(analyzer.dataplane, analyzer.fibs)
    traces = tracer.trace(packet, start_node, start_interface)
    annotation = PacketAnnotation(
        packet=packet,
        start_location=(start_node, start_interface),
        disposition=traces[0].disposition.value if traces else "unknown",
    )
    for trace in traces:
        for hop in trace.hops:
            annotation.hops.append(hop.describe())
            for step in hop.steps:
                if step.kind == "acl":
                    annotation.acl_lines_hit.append(step.detail)
                elif step.kind == "fib":
                    annotation.fib_entries_hit.append(step.detail)
    return annotation
