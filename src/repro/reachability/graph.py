"""The dataflow (forwarding) graph of §4.2.

Nodes represent points in the general device pipeline (§7.2): packet
sources per interface, the incoming ACL, destination NAT, the FIB
lookup, source NAT, the outgoing ACL, per-interface destination sinks,
and per-node disposition sinks. Edge labels are packet sets (BDDs)
derived from FIBs and ACLs; NAT edges carry transformation relations;
zone-based firewalls set/test/erase zone bits (§4.2.3).

Edge semantics are packaged as :class:`EdgeFunction` objects supporting
forward and backward application, so the same graph serves forward
reachability, the backward single-destination optimization, and the
instrumented return-direction pass of bidirectional reachability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bdd.engine import FALSE, TRUE, BddEngine
from repro.config.model import Device
from repro.dataplane.acl import acl_permit_space
from repro.dataplane.fib import Fib, FibActionType, FibEntry
from repro.dataplane.nat import NatPipeline
from repro.hdr import fields as f
from repro.hdr.headerspace import PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.routing.engine import DataPlane
from repro.routing.prefix_trie import PrefixTrie
from repro.routing.topology import InterfaceId


class Disposition(enum.Enum):
    """Terminal fates of a packet (mirrors Batfish's flow dispositions)."""

    ACCEPTED = "accepted"  # delivered to the device itself
    DELIVERED = "delivered"  # delivered to a host on a connected subnet
    EXITS_NETWORK = "exits-network"  # leaves the modeled network
    DENIED_IN = "denied-in"
    DENIED_OUT = "denied-out"
    NO_ROUTE = "no-route"
    NULL_ROUTED = "null-routed"
    LOOP = "loop"


# Graph node naming. Nodes are plain tuples so they hash/sort cheaply:
#   ("src", node, iface)        packets entering at iface
#   ("in", node, iface)         post-ingress (after in ACL and dst NAT)
#   ("fwd", node)               FIB lookup point
#   ("out", node, iface)        pre-egress (before src NAT / out ACL)
#   ("egress", node, iface)     after egress processing, on the wire
#   ("sink", node, iface)       delivered/exits sink per interface
#   ("disp", node, disposition) per-node disposition sink
GraphNode = Tuple


def src_node(node: str, iface: str) -> GraphNode:
    return ("src", node, iface)


def fwd_node(node: str) -> GraphNode:
    return ("fwd", node)


def sink_node(node: str, iface: str) -> GraphNode:
    return ("sink", node, iface)


def disp_node(node: str, disposition: Disposition) -> GraphNode:
    return ("disp", node, disposition.value)


class EdgeFunction:
    """Base edge semantics: how a packet set crosses an edge.

    Edge functions are the graph's hot per-edge objects — large
    networks allocate one per FIB entry and ACL hop — so every subclass
    declares ``__slots__`` to drop the per-instance ``__dict__``.
    """

    __slots__ = ()

    def forward(self, packet_set: int) -> int:
        raise NotImplementedError

    def backward(self, packet_set: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class Identity(EdgeFunction):
    __slots__ = ("_engine",)

    def __init__(self, engine: BddEngine):
        self._engine = engine

    def forward(self, packet_set: int) -> int:
        return packet_set

    def backward(self, packet_set: int) -> int:
        return packet_set

    def describe(self) -> str:
        return "identity"


class Constraint(EdgeFunction):
    """Intersect with a fixed packet set (FIB entry, ACL space, ...)."""

    __slots__ = ("_engine", "label", "note")

    def __init__(self, engine: BddEngine, label: int, note: str = ""):
        self._engine = engine
        self.label = label
        self.note = note

    def forward(self, packet_set: int) -> int:
        return self._engine.and_(packet_set, self.label)

    def backward(self, packet_set: int) -> int:
        return self._engine.and_(packet_set, self.label)

    def describe(self) -> str:
        return f"constraint({self.note})" if self.note else "constraint"


class Transform(EdgeFunction):
    """A packet transformation (NAT rule set) with pass-through for
    non-matching packets, built from a NatPipeline."""

    __slots__ = ("_encoder", "_pipeline", "note")

    def __init__(self, encoder: PacketEncoder, pipeline: NatPipeline, note: str = ""):
        self._encoder = encoder
        self._pipeline = pipeline
        self.note = note

    def forward(self, packet_set: int) -> int:
        return self._pipeline.apply_symbolic(self._encoder, packet_set)

    def backward(self, packet_set: int) -> int:
        # Preimage: packets that the pipeline maps into packet_set.
        engine = self._encoder.engine
        remaining_pre = TRUE
        preimage_parts: List[int] = []
        for step in self._pipeline.symbolic_steps(self._encoder):
            # Packets matching this step: preimage through the relation.
            field = step.field
            out_map = engine.rename_map(
                {
                    self._encoder.layout.var(field, bit): self._encoder.layout.out_var(
                        field, bit
                    )
                    for bit in range(self._encoder.layout.width(field))
                }
            )
            shifted = engine.rename(packet_set, out_map)
            out_cube = engine.cube(self._encoder.layout.out_vars_of(field))
            pre = engine.and_exists(shifted, step.relation, out_cube)
            preimage_parts.append(engine.and_(pre, step.match))
            remaining_pre = engine.diff(remaining_pre, step.match)
        # Non-matching packets pass through unchanged.
        preimage_parts.append(engine.and_(packet_set, remaining_pre))
        return engine.or_all(preimage_parts)

    def describe(self) -> str:
        return f"transform({self.note})" if self.note else "transform"


class AssignField(EdgeFunction):
    """Set a field to a constant (zone tagging, waypoint marking)."""

    __slots__ = ("_encoder", "field_name", "value")

    def __init__(self, encoder: PacketEncoder, field_name: str, value: int):
        self._encoder = encoder
        self.field_name = field_name
        self.value = value

    def forward(self, packet_set: int) -> int:
        engine = self._encoder.engine
        erased = self._encoder.erase(packet_set, [self.field_name])
        return engine.and_(
            erased, self._encoder.field_eq(self.field_name, self.value)
        )

    def backward(self, packet_set: int) -> int:
        engine = self._encoder.engine
        narrowed = engine.and_(
            packet_set, self._encoder.field_eq(self.field_name, self.value)
        )
        return self._encoder.erase(narrowed, [self.field_name])

    def describe(self) -> str:
        return f"assign({self.field_name}={self.value})"


class EraseField(EdgeFunction):
    """Existentially erase a field (leaving a firewall's zone scope)."""

    __slots__ = ("_encoder", "field_name")

    def __init__(self, encoder: PacketEncoder, field_name: str):
        self._encoder = encoder
        self.field_name = field_name

    def forward(self, packet_set: int) -> int:
        return self._encoder.erase(packet_set, [self.field_name])

    def backward(self, packet_set: int) -> int:
        # Preimage of erase for reachability: any pre-value whose erased
        # image intersects the target. (Over-approximation-free here
        # because erase only widens.)
        return self._encoder.erase(packet_set, [self.field_name])

    def describe(self) -> str:
        return f"erase({self.field_name})"


class Compose(EdgeFunction):
    """Sequential composition of edge functions (graph compression)."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[EdgeFunction]):
        self.parts = parts

    def forward(self, packet_set: int) -> int:
        for part in self.parts:
            packet_set = part.forward(packet_set)
            if packet_set == FALSE:
                return FALSE
        return packet_set

    def backward(self, packet_set: int) -> int:
        for part in reversed(self.parts):
            packet_set = part.backward(packet_set)
            if packet_set == FALSE:
                return FALSE
        return packet_set

    def describe(self) -> str:
        return " ; ".join(part.describe() for part in self.parts)


@dataclass(slots=True)
class Edge:
    tail: GraphNode
    head: GraphNode
    fn: EdgeFunction


class ForwardingGraph:
    """The dataflow graph plus indices for traversal."""

    def __init__(self, encoder: PacketEncoder):
        self.encoder = encoder
        self.edges: List[Edge] = []
        self._out: Dict[GraphNode, List[Edge]] = {}
        self._in: Dict[GraphNode, List[Edge]] = {}
        self.nodes: Set[GraphNode] = set()

    def add_edge(self, tail: GraphNode, head: GraphNode, fn: EdgeFunction) -> None:
        edge = Edge(tail, head, fn)
        self.edges.append(edge)
        self._out.setdefault(tail, []).append(edge)
        self._in.setdefault(head, []).append(edge)
        self.nodes.add(tail)
        self.nodes.add(head)

    def out_edges(self, node: GraphNode) -> List[Edge]:
        return self._out.get(node, [])

    def in_edges(self, node: GraphNode) -> List[Edge]:
        return self._in.get(node, [])

    def num_nodes(self) -> int:
        return len(self.nodes)

    def num_edges(self) -> int:
        return len(self.edges)

    def source_nodes(self) -> List[GraphNode]:
        return sorted(n for n in self.nodes if n[0] == "src")

    def sink_nodes(self) -> List[GraphNode]:
        return sorted(
            (n for n in self.nodes if n[0] in ("sink", "disp")),
            key=lambda n: tuple(str(part) for part in n),
        )

    def rebuild_indices(self) -> None:
        """Recompute adjacency after compression mutated `edges`."""
        self._out = {}
        self._in = {}
        self.nodes = set()
        for edge in self.edges:
            self._out.setdefault(edge.tail, []).append(edge)
            self._in.setdefault(edge.head, []).append(edge)
            self.nodes.add(edge.tail)
            self.nodes.add(edge.head)


@dataclass
class GraphBuildOptions:
    """Feature toggles (consumed by the ablation benchmarks)."""

    model_acls: bool = True
    model_nat: bool = True
    model_zones: bool = True


def build_forwarding_graph(
    dataplane: DataPlane,
    fibs: Dict[str, Fib],
    encoder: Optional[PacketEncoder] = None,
    options: Optional[GraphBuildOptions] = None,
) -> ForwardingGraph:
    """Construct the dataflow graph for a computed data plane."""
    encoder = encoder or PacketEncoder()
    options = options or GraphBuildOptions()
    graph = ForwardingGraph(encoder)
    engine = encoder.engine
    snapshot = dataplane.snapshot
    topology = dataplane.topology

    # Own-IP sets per device (packets the device accepts).
    own_ips: Dict[str, int] = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        own_ips[hostname] = engine.or_all(
            encoder.ip_eq(f.DST_IP, address)
            for _name, address, _len in device.interface_ips()
        )

    zone_indices: Dict[str, Dict[str, int]] = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        names = sorted(device.zones)
        zone_indices[hostname] = {name: i + 1 for i, name in enumerate(names)}

    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        _build_device_pipeline(
            graph, device, fibs[hostname], own_ips[hostname],
            zone_indices[hostname], topology, options,
        )
    return graph


def _build_device_pipeline(
    graph: ForwardingGraph,
    device: Device,
    fib: Fib,
    own_ip_set: int,
    zones: Dict[str, int],
    topology,
    options: GraphBuildOptions,
) -> None:
    encoder = graph.encoder
    engine = encoder.engine
    hostname = device.hostname
    has_zones = bool(zones) and options.model_zones

    # --- ingress side: src -> (in ACL, dst NAT, zone tag) -> fwd -------
    for iface in sorted(device.interfaces.values(), key=lambda i: i.name):
        if not iface.enabled or iface.address is None:
            continue
        entry = src_node(hostname, iface.name)
        current = entry
        if options.model_acls and iface.incoming_acl:
            acl = device.acls.get(iface.incoming_acl)
            permit = acl_permit_space(acl, encoder) if acl else TRUE
            acl_point = ("in_acl", hostname, iface.name)
            graph.add_edge(current, acl_point, Identity(engine))
            graph.add_edge(
                acl_point,
                ("post_in_acl", hostname, iface.name),
                Constraint(engine, permit, f"acl {iface.incoming_acl} permits"),
            )
            graph.add_edge(
                acl_point,
                disp_node(hostname, Disposition.DENIED_IN),
                Constraint(engine, engine.not_(permit), "acl denies"),
            )
            current = ("post_in_acl", hostname, iface.name)
        if options.model_nat and iface.dst_nat_rules:
            nat_point = ("dst_nat", hostname, iface.name)
            graph.add_edge(current, nat_point, Identity(engine))
            graph.add_edge(
                nat_point,
                ("post_dst_nat", hostname, iface.name),
                Transform(
                    encoder,
                    NatPipeline(device, iface.dst_nat_rules, kind=None),
                    f"dst-nat {iface.name}",
                ),
            )
            current = ("post_dst_nat", hostname, iface.name)
        if has_zones:
            zone_name = device.zone_of_interface(iface.name)
            zone_value = zones.get(zone_name, 0) if zone_name else 0
            tag_point = ("zone_tag", hostname, iface.name)
            graph.add_edge(current, tag_point, Identity(engine))
            graph.add_edge(
                tag_point,
                fwd_node(hostname),
                AssignField(encoder, f.ZONE_IN, zone_value),
            )
        else:
            graph.add_edge(current, fwd_node(hostname), Identity(engine))

    # --- FIB lookup: fwd -> accept / out chains / drops ----------------
    fwd = fwd_node(hostname)
    graph.add_edge(
        fwd,
        disp_node(hostname, Disposition.ACCEPTED),
        Constraint(engine, own_ip_set, "destined to device"),
    )
    not_accepted = engine.not_(own_ip_set)
    # Effective per-entry spaces: prefix match minus longer prefixes.
    shadow = PrefixTrie()
    for prefix, _entries in fib.entries():
        shadow.add(prefix, True)
    # Per out-interface: which packet spaces are forwarded toward which
    # next hop (arp_ip None = deliver toward the destination itself).
    # Per-entry parts are collected and unioned once with the balanced
    # n-ary kernel rather than folded left (FIBs are the widest unions
    # in the graph build).
    routed_parts: List[int] = []
    arp_parts: Dict[str, Dict[Optional[Ip], List[int]]] = {}
    for prefix, entries in fib.entries():
        space = engine.diff(
            encoder.ip_in_prefix(f.DST_IP, prefix),
            engine.or_all(
                encoder.ip_in_prefix(f.DST_IP, longer)
                for longer in shadow.covered_prefixes(prefix)
            ),
        )
        space = engine.and_(space, not_accepted)
        routed_parts.append(space)
        if space == FALSE:
            continue
        for entry in entries:
            if entry.action is FibActionType.DROP_NULL:
                graph.add_edge(
                    fwd,
                    disp_node(hostname, Disposition.NULL_ROUTED),
                    Constraint(engine, space, f"null route {prefix}"),
                )
            elif entry.action is FibActionType.DROP_NO_ROUTE:
                graph.add_edge(
                    fwd,
                    disp_node(hostname, Disposition.NO_ROUTE),
                    Constraint(engine, space, f"unresolvable {prefix}"),
                )
            else:
                out_point = ("out", hostname, entry.out_interface)
                graph.add_edge(
                    fwd,
                    out_point,
                    Constraint(engine, space, f"fib {prefix} -> {entry.out_interface}"),
                )
                per_arp = arp_parts.setdefault(entry.out_interface, {})
                per_arp.setdefault(entry.arp_ip, []).append(space)
    routed_space = engine.or_all(routed_parts)
    arp_spaces: Dict[str, Dict[Optional[Ip], int]] = {
        iface: {arp_ip: engine.or_all(parts) for arp_ip, parts in per.items()}
        for iface, per in arp_parts.items()
    }
    no_route_space = engine.diff(engine.not_(own_ip_set), routed_space)
    graph.add_edge(
        fwd,
        disp_node(hostname, Disposition.NO_ROUTE),
        Constraint(engine, no_route_space, "no matching route"),
    )

    # --- egress side: out -> zone policy -> src NAT -> out ACL -> wire --
    for iface in sorted(device.interfaces.values(), key=lambda i: i.name):
        if not iface.enabled or iface.address is None:
            continue
        out_point = ("out", hostname, iface.name)
        if out_point not in graph.nodes:
            continue  # no FIB entry forwards out this interface
        current = out_point
        if has_zones:
            current = _add_zone_policy(
                graph, device, iface.name, zones, current, hostname
            )
        if options.model_nat and iface.src_nat_rules:
            nat_point = ("src_nat", hostname, iface.name)
            graph.add_edge(current, nat_point, Identity(engine))
            graph.add_edge(
                nat_point,
                ("post_src_nat", hostname, iface.name),
                Transform(
                    encoder,
                    NatPipeline(device, iface.src_nat_rules, kind=None),
                    f"src-nat {iface.name}",
                ),
            )
            current = ("post_src_nat", hostname, iface.name)
        if options.model_acls and iface.outgoing_acl:
            acl = device.acls.get(iface.outgoing_acl)
            permit = acl_permit_space(acl, encoder) if acl else TRUE
            acl_point = ("out_acl", hostname, iface.name)
            graph.add_edge(current, acl_point, Identity(engine))
            graph.add_edge(
                acl_point,
                ("post_out_acl", hostname, iface.name),
                Constraint(engine, permit, f"acl {iface.outgoing_acl} permits"),
            )
            graph.add_edge(
                acl_point,
                disp_node(hostname, Disposition.DENIED_OUT),
                Constraint(engine, engine.not_(permit), "acl denies"),
            )
            current = ("post_out_acl", hostname, iface.name)
        egress = ("egress", hostname, iface.name)
        graph.add_edge(current, egress, Identity(engine))
        _wire_egress(
            graph, device, iface, egress, topology,
            arp_spaces.get(iface.name, {}),
        )


def _add_zone_policy(graph, device, iface_name, zones, current, hostname):
    """Edges enforcing zone-pair policies for traffic leaving via
    ``iface_name``; the zone-in bits are tested and then erased."""
    encoder = graph.encoder
    engine = encoder.engine
    to_zone = device.zone_of_interface(iface_name)
    to_index = zones.get(to_zone, 0) if to_zone else 0
    # Intra-zone traffic is permitted by default.
    allowed_parts: List[int] = [encoder.field_eq(f.ZONE_IN, to_index)]
    for (from_zone, policy_to_zone), policy in sorted(device.zone_policies.items()):
        if policy_to_zone != to_zone:
            continue
        from_index = zones.get(from_zone, 0)
        acl = device.acls.get(policy.acl)
        permit = acl_permit_space(acl, encoder) if acl else FALSE
        allowed_parts.append(
            engine.and_(encoder.field_eq(f.ZONE_IN, from_index), permit)
        )
    allowed = engine.or_all(allowed_parts)
    policy_point = ("zone_policy", hostname, iface_name)
    graph.add_edge(current, policy_point, Identity(engine))
    graph.add_edge(
        policy_point,
        disp_node(hostname, Disposition.DENIED_OUT),
        Constraint(engine, engine.not_(allowed), "zone policy denies"),
    )
    cleared = ("zone_clear", hostname, iface_name)
    graph.add_edge(
        policy_point,
        cleared,
        Constraint(engine, allowed, "zone policy permits"),
    )
    erased = ("post_zone", hostname, iface_name)
    graph.add_edge(cleared, erased, EraseField(encoder, f.ZONE_IN))
    return erased


def _wire_egress(
    graph, device, iface, egress, topology, arp_spaces: Dict[Optional[Ip], int]
) -> None:
    """Connect an egress point to neighbors and/or sinks, honouring the
    FIB's next-hop choice on multi-access links.

    ``arp_spaces`` maps next-hop address (None = deliver toward the
    destination itself) to the dst-based packet space forwarded that
    way. dst constraints computed at the FIB remain valid here because
    only source NAT runs on the egress side.
    """
    encoder = graph.encoder
    engine = encoder.engine
    hostname = device.hostname
    interface_id = InterfaceId(hostname, iface.name)
    neighbor_edges = topology.edges_from(interface_id)
    neighbor_ip_set: Dict[Ip, object] = {e.head_ip: e for e in neighbor_edges}
    direct_space = arp_spaces.get(None, FALSE)
    for l3_edge in neighbor_edges:
        to_neighbor = arp_spaces.get(l3_edge.head_ip, FALSE)
        # Directly-delivered traffic destined to the neighbor's own
        # address also crosses the link.
        to_neighbor = engine.or_(
            to_neighbor,
            engine.and_(direct_space, encoder.ip_eq(f.DST_IP, l3_edge.head_ip)),
        )
        if to_neighbor == FALSE:
            continue
        head = src_node(l3_edge.head.node, l3_edge.head.interface)
        graph.add_edge(
            egress, head,
            Constraint(engine, to_neighbor, f"to {l3_edge.head.node}"),
        )
    prefix = iface.prefix
    delivered = FALSE
    neighbor_ips = engine.or_all(
        encoder.ip_eq(f.DST_IP, ip) for ip in neighbor_ip_set
    )
    if prefix is not None:
        # Delivered to hosts on the connected subnet (addresses not owned
        # by modeled neighbors).
        subnet = encoder.ip_in_prefix(f.DST_IP, prefix)
        delivered = engine.and_(direct_space, engine.diff(subnet, neighbor_ips))
        if delivered != FALSE:
            graph.add_edge(
                egress,
                sink_node(hostname, iface.name),
                Constraint(engine, delivered, "delivered to subnet"),
            )
    # Traffic forwarded toward an unmodeled next hop (e.g. a provider
    # address we do not have the config for), or directly forwarded
    # beyond the subnet, exits the network here. The arp map is walked
    # in sorted next-hop order so the build is schedule-independent.
    exit_parts: List[int] = [
        engine.diff(engine.diff(direct_space, delivered), neighbor_ips)
    ]
    for arp_ip in sorted(
        (ip for ip in arp_spaces if ip is not None), key=lambda ip: ip.value
    ):
        if arp_ip not in neighbor_ip_set:
            exit_parts.append(arp_spaces[arp_ip])
    exits = engine.or_all(exit_parts)
    if exits != FALSE:
        graph.add_edge(
            egress,
            disp_node(hostname, Disposition.EXITS_NETWORK),
            Constraint(engine, exits, "exits network"),
        )
