"""Verification queries over the BDD dataflow analysis.

:class:`NetworkAnalyzer` is the user-facing facade: it builds (and
optionally compresses) the forwarding graph once and answers queries:

* forward reachability with per-disposition answers,
* destination reachability via backward propagation (§4.2.3),
* multipath consistency (the paper's §6 benchmark query),
* waypoint enforcement using waypoint bits (§4.2.3),
* bidirectional reachability with firewall session fast paths (§4.2.3),
* forwarding-loop detection.

Scoped defaults (§4.4.2) are implemented by
:meth:`NetworkAnalyzer.default_sources`: starting locations are limited
to host-facing and network-edge interfaces, and source IPs to addresses
that can plausibly originate there — which suppresses the "spoofed
source IP" class of uninteresting violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.bdd.engine import FALSE, TRUE
from repro.dataplane.fib import Fib, compute_fibs
from repro.hdr import fields as f
from repro.hdr.headerspace import HeaderSpace, PacketEncoder
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.reachability.bddreach import backward_reachability, forward_reachability
from repro.reachability.compress import CompressionStats, compress_graph
from repro.reachability.examples import default_preferences
from repro.reachability.graph import (
    Constraint,
    Disposition,
    Edge,
    ForwardingGraph,
    GraphBuildOptions,
    GraphNode,
    build_forwarding_graph,
    disp_node,
    fwd_node,
    sink_node,
    src_node,
)
from repro.routing.engine import DataPlane
from repro.routing.topology import InterfaceId

SUCCESS_DISPOSITIONS = (
    Disposition.ACCEPTED,
    Disposition.DELIVERED,
    Disposition.EXITS_NETWORK,
)
FAILURE_DISPOSITIONS = (
    Disposition.DENIED_IN,
    Disposition.DENIED_OUT,
    Disposition.NO_ROUTE,
    Disposition.NULL_ROUTED,
    Disposition.LOOP,
)


@dataclass
class ReachabilityAnswer:
    """Per-disposition reachable sets plus chosen examples (§4.4.3)."""

    #: disposition -> union of packet sets arriving with that fate.
    by_disposition: Dict[Disposition, int] = field(default_factory=dict)
    #: (sink graph node) -> packet set.
    by_sink: Dict[GraphNode, int] = field(default_factory=dict)
    #: full reach map (node -> set), for deeper inspection.
    reach: Dict[GraphNode, int] = field(default_factory=dict)

    def success_set(self) -> int:
        return self._union(SUCCESS_DISPOSITIONS)

    def failure_set(self) -> int:
        return self._union(FAILURE_DISPOSITIONS)

    def _union(self, dispositions) -> int:
        result = FALSE
        for disposition in dispositions:
            value = self.by_disposition.get(disposition, FALSE)
            if value != FALSE:
                result = value if result == FALSE else self._or(result, value)
        return result

    _or = None  # bound by NetworkAnalyzer


@dataclass
class MultipathViolation:
    """A flow accepted along some paths and dropped along others."""

    source: GraphNode
    packet_set: int
    example: Optional[Packet]
    success_dispositions: List[Disposition]
    failure_dispositions: List[Disposition]


@dataclass
class LoopViolation:
    cycle: List[GraphNode]
    packet_set: int
    example: Optional[Packet]


class NetworkAnalyzer:
    """Builds the dataflow graph for a data plane and answers queries."""

    def __init__(
        self,
        dataplane: DataPlane,
        encoder: Optional[PacketEncoder] = None,
        fibs: Optional[Dict[str, Fib]] = None,
        compress: bool = True,
        options: Optional[GraphBuildOptions] = None,
    ):
        self.dataplane = dataplane
        self.encoder = encoder or PacketEncoder()
        self.fibs = fibs if fibs is not None else compute_fibs(dataplane)
        with obs.span("bdd.graph_build", devices=len(dataplane.snapshot.devices)):
            self.graph = build_forwarding_graph(
                dataplane, self.fibs, self.encoder, options
            )
            self.compression: Optional[CompressionStats] = None
            if compress:
                self.compression = compress_graph(self.graph)
        self._emit_bdd_gauges()

    def _emit_bdd_gauges(self) -> None:
        """Publish the BDD engine's size counters as gauges; called at
        graph-build and query boundaries (cheap: three dict sizes)."""
        if not obs.active():
            return
        stats = self.encoder.engine.stats()
        obs.gauge("bdd.nodes", stats["nodes"])
        obs.gauge("bdd.unique_table", stats["unique_table"])
        obs.gauge("bdd.ops_cached", stats["ops_cached"])
        obs.gauge("bdd.graph_nodes", len(self.graph.nodes))
        obs.gauge("bdd.graph_edges", len(self.graph.edges))

    # ------------------------------------------------------------------
    # Sources and scoping defaults (§4.4.2)

    def all_sources(self, headerspace_bdd: int = TRUE) -> Dict[GraphNode, int]:
        """Every interface as a starting location, unscoped headers."""
        return {node: headerspace_bdd for node in self.graph.source_nodes()}

    def default_sources(
        self, headerspace_bdd: int = TRUE
    ) -> Dict[GraphNode, int]:
        """Scoped default search space: start only at host-facing or
        network-edge interfaces, with source IPs limited to addresses
        that can plausibly originate there."""
        sources: Dict[GraphNode, int] = {}
        engine = self.encoder.engine
        for hostname in self.dataplane.snapshot.hostnames():
            device = self.dataplane.snapshot.device(hostname)
            for iface in device.interfaces.values():
                if not iface.enabled or iface.prefix is None:
                    continue
                interface_id = InterfaceId(hostname, iface.name)
                if self.dataplane.topology.has_remote_end(interface_id):
                    continue  # inter-router link, commonly not of interest
                scope = engine.and_(
                    headerspace_bdd,
                    self.encoder.ip_in_prefix(f.SRC_IP, iface.prefix),
                )
                if scope != FALSE:
                    sources[src_node(hostname, iface.name)] = scope
        return sources

    def sources_at(
        self,
        locations: Sequence[Tuple[str, Optional[str]]],
        headerspace_bdd: int = TRUE,
    ) -> Dict[GraphNode, int]:
        """Sources from (node, interface) pairs; interface None = all
        interfaces of the node."""
        sources: Dict[GraphNode, int] = {}
        for hostname, iface_name in locations:
            if iface_name is not None:
                sources[src_node(hostname, iface_name)] = headerspace_bdd
                continue
            for node in self.graph.source_nodes():
                if node[1] == hostname:
                    sources[node] = headerspace_bdd
        return sources

    # ------------------------------------------------------------------
    # Core queries

    def reachability(
        self, sources: Dict[GraphNode, int]
    ) -> ReachabilityAnswer:
        """Forward reachability from the given sources."""
        engine = self.encoder.engine
        with obs.span("query.reachability", sources=len(sources)):
            reach = forward_reachability(self.graph, sources)
            answer = ReachabilityAnswer(reach=reach)
            answer._or = engine.or_
            for node, packet_set in reach.items():
                if node[0] == "disp":
                    disposition = Disposition(node[2])
                    answer.by_disposition[disposition] = engine.or_(
                        answer.by_disposition.get(disposition, FALSE), packet_set
                    )
                    answer.by_sink[node] = packet_set
                elif node[0] == "sink":
                    answer.by_disposition[Disposition.DELIVERED] = engine.or_(
                        answer.by_disposition.get(Disposition.DELIVERED, FALSE),
                        packet_set,
                    )
                    answer.by_sink[node] = packet_set
            if obs.active():
                obs.add("query.reachability_runs")
                self._touch_reach_coverage(reach)
                self._emit_bdd_gauges()
        return answer

    def _touch_reach_coverage(self, reach: Dict[GraphNode, int]) -> None:
        """Symbolic coverage: an interface counts as exercised when any
        packet set flowed through one of its graph nodes."""
        for node, packet_set in reach.items():
            if packet_set == FALSE or len(node) < 3:
                continue
            if node[0] in ("src", "in", "out", "egress", "sink"):
                obs.touch("interface", node[1], str(node[2]))

    def explain_example(self, packet, node: str, interface: str):
        """Annotate a counterexample packet with full forwarding
        provenance (§4.4.3: "we annotate example packets with as much
        context as possible"): trace it through the concrete engine
        under provenance recording and return the
        :class:`~repro.provenance.FlowExplanation` with per-ACL-line and
        per-NAT-rule evaluation detail."""
        from repro.provenance import Flow, build_flow_explanation
        from repro.provenance import record as prov
        from repro.traceroute.engine import TracerouteEngine

        tracer = TracerouteEngine(self.dataplane, self.fibs)
        with prov.recording():
            traces = tracer.trace(packet, node, interface)
        return build_flow_explanation(
            Flow(packet=packet, ingress_node=node, ingress_interface=interface),
            traces,
        )

    def destination_reachability(
        self, hostname: str, interface: Optional[str] = None,
        headerspace_bdd: int = TRUE,
    ) -> Dict[GraphNode, int]:
        """Which packets, starting where, can be delivered at a given
        device (interface)? Uses backward propagation (§4.2.3): walks
        only the destination's forwarding tree."""
        engine = self.encoder.engine
        with obs.span("query.destination_reachability", target=hostname):
            targets: Dict[GraphNode, int] = {}
            accepted = disp_node(hostname, Disposition.ACCEPTED)
            if accepted in self.graph.nodes:
                targets[accepted] = headerspace_bdd
            for node in self.graph.nodes:
                if node[0] == "sink" and node[1] == hostname:
                    if interface is None or node[2] == interface:
                        targets[node] = headerspace_bdd
            reach = backward_reachability(self.graph, targets)
            if obs.active():
                obs.add("query.destination_reachability_runs")
                self._touch_reach_coverage(reach)
                self._emit_bdd_gauges()
            return {
                node: packet_set
                for node, packet_set in reach.items()
                if node[0] == "src" and packet_set != FALSE
            }

    def multipath_consistency(
        self, sources: Optional[Dict[GraphNode, int]] = None
    ) -> List[MultipathViolation]:
        """Find flows accepted along some paths and dropped along others
        (the paper's §6 verification benchmark)."""
        engine = self.encoder.engine
        sources = sources if sources is not None else self.all_sources()
        with obs.span("query.multipath_consistency", sources=len(sources)):
            violations = self._multipath_consistency(engine, sources)
        if obs.enabled():
            obs.add("query.multipath_runs")
            obs.add("query.multipath_violations", len(violations))
            self._emit_bdd_gauges()
        return violations

    def _multipath_consistency(
        self, engine, sources: Dict[GraphNode, int]
    ) -> List[MultipathViolation]:
        violations: List[MultipathViolation] = []
        for source in sorted(sources, key=lambda n: tuple(map(str, n))):
            answer = self.reachability({source: sources[source]})
            success = answer.success_set()
            failure = answer.failure_set()
            if success == FALSE or failure == FALSE:
                continue
            both = engine.and_(success, failure)
            if both == FALSE:
                continue
            example = self.encoder.example_packet(
                both, default_preferences(self.encoder)
            )
            violations.append(
                MultipathViolation(
                    source=source,
                    packet_set=both,
                    example=example,
                    success_dispositions=[
                        d for d in SUCCESS_DISPOSITIONS
                        if engine.and_(
                            answer.by_disposition.get(d, FALSE), both
                        ) != FALSE
                    ],
                    failure_dispositions=[
                        d for d in FAILURE_DISPOSITIONS
                        if engine.and_(
                            answer.by_disposition.get(d, FALSE), both
                        ) != FALSE
                    ],
                )
            )
        return violations

    # ------------------------------------------------------------------
    # Waypoints (§4.2.3)

    def waypoint_reachability(
        self,
        sources: Dict[GraphNode, int],
        waypoint_hostname: str,
        waypoint_bit: int = 0,
    ) -> Tuple[int, int]:
        """Split delivered traffic by whether it traversed a waypoint.

        Adds a temporary marking edge at the waypoint's FIB node (the
        bit is set when the packet passes through), runs the analysis,
        and returns ``(through_waypoint, bypassing_waypoint)`` for all
        delivered/accepted traffic. Requires only one extra BDD bit.
        """
        from repro.reachability.graph import AssignField

        engine = self.encoder.engine
        level = self.encoder.layout.var(f.WAYPOINT, waypoint_bit)
        marked = engine.var(level)
        unmarked = engine.nvar(level)
        waypoint = fwd_node(waypoint_hostname)
        if waypoint not in self.graph.nodes:
            raise ValueError(f"no such device in graph: {waypoint_hostname}")
        # Splice the marker in front of the waypoint's outgoing edges.
        mark_fn = _SetBit(self.encoder, level)
        original_edges = list(self.graph.out_edges(waypoint))
        replaced: List[Tuple[Edge, Edge]] = []
        for edge in original_edges:
            new_edge = Edge(edge.tail, edge.head, _ComposePair(mark_fn, edge.fn))
            replaced.append((edge, new_edge))
        try:
            for old, new in replaced:
                self.graph.edges.remove(old)
                self.graph.edges.append(new)
            self.graph.rebuild_indices()
            # Sources start with the bit clear.
            scoped = {
                node: engine.and_(packet_set, unmarked)
                for node, packet_set in sources.items()
            }
            answer = self.reachability(scoped)
            delivered = answer.success_set()
            through = engine.and_(delivered, marked)
            bypass = engine.and_(delivered, unmarked)
            # Erase the waypoint bit so callers see pure header sets.
            cube = engine.cube([level])
            return engine.exists(through, cube), engine.exists(bypass, cube)
        finally:
            for old, new in replaced:
                self.graph.edges.remove(new)
                self.graph.edges.append(old)
            self.graph.rebuild_indices()

    # ------------------------------------------------------------------
    # Bidirectional reachability (§4.2.3)

    def bidirectional_reachability(
        self,
        sources: Dict[GraphNode, int],
        return_sources: Sequence[Tuple[str, str]],
    ) -> Tuple[int, int]:
        """Round-trip analysis with stateful session fast paths.

        Runs the forward analysis, derives the firewall session sets,
        instruments the graph with session fast-path edges, and runs the
        return direction from ``return_sources`` (the destination-side
        locations). Returns ``(forward_delivered, roundtrip_ok)`` where
        ``roundtrip_ok`` is the subset of forward flows whose return
        traffic reaches back.

        NAT coordinates: session sets are recorded at the firewalls'
        ``post_zone`` points, *before* source NAT, so they are expressed
        in original (inside) addresses. The return pass injects the
        endpoint-swapped session set at ``return_sources`` — modeling
        the firewall's session table un-translating return traffic —
        and ``roundtrip_ok`` is reported in the same pre-NAT
        coordinates. Without stateful devices, the plain delivered set
        is swapped instead.
        """
        engine = self.encoder.engine
        forward_answer = self.reachability(sources)
        delivered = forward_answer.success_set()
        if delivered == FALSE:
            return FALSE, FALSE
        sessions = self._session_sets(forward_answer)
        swap = self._endpoint_swap_map()
        fast_path_edges: List[Edge] = []
        for firewall, session_set in sessions.items():
            return_match = engine.permute(session_set, swap)
            for node in list(self.graph.nodes):
                if node[0] == "zone_policy" and node[1] == firewall:
                    cleared = ("zone_clear", node[1], node[2])
                    if cleared in self.graph.nodes:
                        fast_path_edges.append(
                            Edge(
                                node,
                                cleared,
                                Constraint(engine, return_match, "session fast path"),
                            )
                        )
                if node[0] == "in_acl" and node[1] == firewall:
                    post = ("post_in_acl", node[1], node[2])
                    if post in self.graph.nodes:
                        fast_path_edges.append(
                            Edge(
                                node,
                                post,
                                Constraint(engine, return_match, "session fast path"),
                            )
                        )
        try:
            for edge in fast_path_edges:
                self.graph.edges.append(edge)
            self.graph.rebuild_indices()
            if sessions:
                forward_base = engine.all_or(sessions.values())
            else:
                forward_base = delivered
            return_header = engine.permute(forward_base, swap)
            back_sources = {
                src_node(node, iface): return_header
                for node, iface in return_sources
            }
            return_answer = self.reachability(back_sources)
            returned = return_answer.success_set()
            roundtrip = engine.and_(forward_base, engine.permute(returned, swap))
            return delivered, roundtrip
        finally:
            for edge in fast_path_edges:
                self.graph.edges.remove(edge)
            self.graph.rebuild_indices()

    def _session_sets(self, answer: ReachabilityAnswer) -> Dict[str, int]:
        """Per-stateful-device session sets: flows that passed its zone
        policies in the forward direction."""
        engine = self.encoder.engine
        sessions: Dict[str, int] = {}
        for node, packet_set in answer.reach.items():
            if node[0] == "post_zone":
                hostname = node[1]
                sessions[hostname] = engine.or_(
                    sessions.get(hostname, FALSE), packet_set
                )
        return sessions

    def _endpoint_swap_map(self) -> Dict[int, int]:
        layout = self.encoder.layout
        mapping: Dict[int, int] = {}
        for field_a, field_b in ((f.DST_IP, f.SRC_IP), (f.DST_PORT, f.SRC_PORT)):
            for bit in range(layout.width(field_a)):
                a = layout.var(field_a, bit)
                b = layout.var(field_b, bit)
                mapping[a] = b
                mapping[b] = a
        return mapping

    # ------------------------------------------------------------------
    # Loop detection

    def detect_loops(
        self, sources: Optional[Dict[GraphNode, int]] = None
    ) -> List[LoopViolation]:
        """Find forwarding loops: cycles in the graph that some packet
        can traverse end to end."""
        engine = self.encoder.engine
        sources = sources if sources is not None else self.all_sources()
        reach = forward_reachability(self.graph, sources)
        # Restrict to nodes with flow, then find cycles.
        import networkx as nx

        digraph = nx.DiGraph()
        for edge in self.graph.edges:
            if reach.get(edge.tail, FALSE) == FALSE:
                continue
            digraph.add_edge(edge.tail, edge.head, fn=edge.fn)
        violations: List[LoopViolation] = []
        for component in nx.strongly_connected_components(digraph):
            if len(component) < 2:
                node = next(iter(component))
                if not digraph.has_edge(node, node):
                    continue
            subgraph = digraph.subgraph(component)
            try:
                cycle_edges = nx.find_cycle(subgraph)
            except nx.NetworkXNoCycle:
                continue
            survivor = reach.get(cycle_edges[0][0], FALSE)
            cycle_nodes = [cycle_edges[0][0]]
            for tail, head in cycle_edges:
                survivor = digraph[tail][head]["fn"].forward(survivor)
                cycle_nodes.append(head)
                if survivor == FALSE:
                    break
            if survivor == FALSE:
                continue
            example = self.encoder.example_packet(
                survivor, default_preferences(self.encoder)
            )
            violations.append(
                LoopViolation(
                    cycle=cycle_nodes, packet_set=survivor, example=example
                )
            )
        return violations


class _SetBit:
    """Edge function that sets one BDD variable to 1 (waypoint marker)."""

    def __init__(self, encoder: PacketEncoder, level: int):
        self._engine = encoder.engine
        self._level = level

    def forward(self, packet_set: int) -> int:
        engine = self._engine
        erased = engine.exists(packet_set, engine.cube([self._level]))
        return engine.and_(erased, engine.var(self._level))

    def backward(self, packet_set: int) -> int:
        engine = self._engine
        narrowed = engine.and_(packet_set, engine.var(self._level))
        return engine.exists(narrowed, engine.cube([self._level]))

    def describe(self) -> str:
        return f"set-bit({self._level})"


class _ComposePair:
    """Minimal two-step composition used by the waypoint splice."""

    def __init__(self, first, second):
        self._first = first
        self._second = second

    def forward(self, packet_set: int) -> int:
        return self._second.forward(self._first.forward(packet_set))

    def backward(self, packet_set: int) -> int:
        return self._first.backward(self._second.backward(packet_set))

    def describe(self) -> str:
        return f"{self._first.describe()} ; {self._second.describe()}"
