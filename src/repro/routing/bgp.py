"""BGP: session establishment, the decision process, and the BGP RIB.

Two of the paper's convergence techniques live here and in
:mod:`repro.routing.engine`:

* **logical clocks** (§4.1.2): "we add logical clocks to our BGP RIB
  implementation, helping us to tie break routing advertisements based
  on arrival time, like routers do. This technique removes pathological
  re-advertisement loops." The RIB stamps each *changed* candidate with
  the engine's logical clock; the decision process prefers older routes
  at the final tie-break (before router-id).
* **session viability** (§4.1.1): "the establishment of a BGP session
  between two peers depends on a successful TCP connection, which can
  be prevented by misconfigured ACLs" — session compatibility and TCP
  viability are evaluated against partial data-plane state and
  re-evaluated as the computation proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config.model import BgpNeighbor, Device, Snapshot
from repro.hdr.ip import Ip, Prefix
from repro.provenance import record as prov
from repro.routing.rib import RibDelta, route_sort_key
from repro.routing.route import (
    AD_EBGP,
    AD_IBGP,
    BgpAttributes,
    BgpRoute,
    Origin,
    intern_as_path,
    intern_communities,
)
from repro.routing.topology import InterfaceId, Layer3Topology


@dataclass
class BgpSession:
    """One direction of a candidate BGP peering (local view)."""

    local_node: str
    remote_node: str
    local_ip: Ip
    remote_ip: Ip
    local_as: int
    remote_as: int
    neighbor: BgpNeighbor  # the local neighbor configuration
    is_ibgp: bool
    established: bool = False
    failure_reason: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.local_node, str(self.local_ip), str(self.remote_ip))


@dataclass(frozen=True)
class SessionCompatibilityIssue:
    """A misconfigured peering found by compatibility checking (also the
    Lesson 5 `bgpSessionCompatibility` question)."""

    node: str
    peer_ip: Ip
    issue: str


def _local_ips(device: Device) -> Dict[Ip, str]:
    """address -> interface for all enabled addressed interfaces."""
    return {
        address: name for name, address, _len in device.interface_ips()
    }


def compute_bgp_sessions(
    snapshot: Snapshot,
) -> Tuple[List[BgpSession], List[SessionCompatibilityIssue]]:
    """Pair up neighbor configurations into candidate sessions.

    A session candidate exists when some device owns the configured peer
    address, has a reciprocal neighbor statement, and the AS numbers
    agree in both directions. Everything else becomes a compatibility
    issue (half-open config, AS mismatch, unknown peer IP).
    """
    ip_owner: Dict[Ip, str] = {}
    for hostname in snapshot.hostnames():
        for address in _local_ips(snapshot.device(hostname)):
            ip_owner.setdefault(address, hostname)

    sessions: List[BgpSession] = []
    issues: List[SessionCompatibilityIssue] = []
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        if device.bgp is None:
            continue
        local_addresses = _local_ips(device)
        for peer_ip, neighbor in sorted(device.bgp.neighbors.items()):
            remote_node = ip_owner.get(peer_ip)
            if remote_node is None:
                issues.append(
                    SessionCompatibilityIssue(
                        hostname, peer_ip, "peer address not present in snapshot"
                    )
                )
                continue
            remote_device = snapshot.device(remote_node)
            if remote_device.bgp is None:
                issues.append(
                    SessionCompatibilityIssue(
                        hostname, peer_ip, f"{remote_node} has no BGP process"
                    )
                )
                continue
            # The remote side must have a neighbor statement pointing at
            # one of our addresses.
            reciprocal: Optional[BgpNeighbor] = None
            local_ip: Optional[Ip] = None
            for address in sorted(local_addresses):
                remote_neighbor = remote_device.bgp.neighbors.get(address)
                if remote_neighbor is not None:
                    reciprocal = remote_neighbor
                    local_ip = address
                    break
            if reciprocal is None or local_ip is None:
                issues.append(
                    SessionCompatibilityIssue(
                        hostname, peer_ip,
                        f"{remote_node} has no reciprocal neighbor statement",
                    )
                )
                continue
            local_as = neighbor.local_as or device.bgp.local_as
            remote_as_actual = reciprocal.local_as or remote_device.bgp.local_as
            if neighbor.remote_as != remote_as_actual:
                issues.append(
                    SessionCompatibilityIssue(
                        hostname, peer_ip,
                        f"remote-as {neighbor.remote_as} does not match "
                        f"{remote_node}'s AS {remote_as_actual}",
                    )
                )
                continue
            if reciprocal.remote_as != local_as:
                issues.append(
                    SessionCompatibilityIssue(
                        hostname, peer_ip,
                        f"{remote_node} expects AS {reciprocal.remote_as}, "
                        f"local AS is {local_as}",
                    )
                )
                continue
            sessions.append(
                BgpSession(
                    local_node=hostname,
                    remote_node=remote_node,
                    local_ip=local_ip,
                    remote_ip=peer_ip,
                    local_as=local_as,
                    remote_as=neighbor.remote_as,
                    neighbor=neighbor,
                    is_ibgp=local_as == neighbor.remote_as,
                )
            )
    return sessions, issues


# ----------------------------------------------------------------------
# Decision process


_ORIGIN_RANK = {Origin.IGP: 0, Origin.EGP: 1, Origin.INCOMPLETE: 2}


def _zero_igp_cost(_ip: Ip) -> Optional[int]:
    """Default IGP cost resolver (picklable, unlike a lambda)."""
    return 0


class BgpRib:
    """The BGP RIB of one node: per-peer candidates, best selection via
    the full decision process, logical clocks, and a RIB delta."""

    def __init__(
        self,
        local_as: int,
        multipath: int = 1,
        igp_cost: Optional[Callable[[Ip], Optional[int]]] = None,
        use_clocks: bool = True,
        owner: Optional[str] = None,
    ):
        self.local_as = local_as
        self.multipath = max(1, multipath)
        self._igp_cost = igp_cost or _zero_igp_cost
        self.use_clocks = use_clocks
        #: hosting node, for provenance recording of decision outcomes
        self.owner = owner
        # prefix -> {received_from (None = local): route}
        self._candidates: Dict[Prefix, Dict[Optional[Ip], BgpRoute]] = {}
        self._clocks: Dict[Tuple[Prefix, Optional[Ip]], int] = {}
        self._best: Dict[Prefix, List[BgpRoute]] = {}
        self.delta = RibDelta()

    def __getstate__(self):
        """Pickle support for the snapshot cache: the IGP cost resolver
        is a closure over live node state and is not serialized; a
        cached (already converged) RIB never re-runs best selection."""
        state = self.__dict__.copy()
        state["_igp_cost"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._igp_cost is None:
            self._igp_cost = _zero_igp_cost

    # -- mutation ---------------------------------------------------------

    def put(self, route: BgpRoute, clock: int) -> bool:
        """Install/replace the candidate from ``route.received_from``.

        Identical re-advertisements do not refresh the clock (so stable
        routes keep their seniority). Returns True if the best set
        changed.
        """
        peers = self._candidates.setdefault(route.prefix, {})
        existing = peers.get(route.received_from)
        if existing == route:
            return False
        peers[route.received_from] = route
        self._clocks[(route.prefix, route.received_from)] = clock
        return self._reselect(route.prefix)

    def withdraw(self, prefix: Prefix, peer: Optional[Ip]) -> bool:
        """Remove the candidate learned from ``peer``."""
        peers = self._candidates.get(prefix)
        if not peers or peer not in peers:
            return False
        del peers[peer]
        self._clocks.pop((prefix, peer), None)
        if not peers:
            del self._candidates[prefix]
        return self._reselect(prefix)

    def reselect_all(self) -> bool:
        """Re-run selection everywhere (after IGP costs changed)."""
        changed = False
        for prefix in sorted(self._candidates, key=str):
            changed |= self._reselect(prefix)
        return changed

    def _reselect(self, prefix: Prefix) -> bool:
        old_best = self._best.get(prefix, [])
        new_best = self._select(prefix)
        if new_best == old_best:
            return False
        if new_best:
            self._best[prefix] = new_best
        else:
            self._best.pop(prefix, None)
        for route in old_best:
            if route not in new_best:
                self.delta.removed.append(route)
                if prov.enabled() and self.owner is not None:
                    prov.route_event(
                        self.owner, prefix, "bgp", "displaced",
                        f"{route.describe()} no longer best in BGP decision "
                        "process",
                        neighbor=str(route.received_from)
                        if route.received_from is not None
                        else None,
                    )
        for route in new_best:
            if route not in old_best:
                self.delta.added.append(route)
                if prov.enabled() and self.owner is not None:
                    detail = f"{route.describe()} won BGP decision process"
                    if len(new_best) > 1:
                        detail += f" (multipath set of {len(new_best)})"
                    prov.route_event(
                        self.owner, prefix, "bgp", "best", detail,
                        neighbor=str(route.received_from)
                        if route.received_from is not None
                        else None,
                    )
        return True

    def _pre_clock_candidates(self, prefix: Prefix) -> List[BgpRoute]:
        """Candidates surviving every attribute-based tie-break — the
        set the arrival-clock step (single-path mode) then filters."""
        peers = self._candidates.get(prefix)
        if not peers:
            return []
        viable: List[Tuple[BgpRoute, int]] = []
        for route in peers.values():
            cost = self._resolve_igp_cost(route)
            if cost is None:
                continue  # unresolvable next hop: route stays inactive
            viable.append((route, cost))
        if not viable:
            return []

        def filter_best(key):
            best = min(key(item) for item in viable)
            return [item for item in viable if key(item) == best]

        viable = filter_best(lambda item: -item[0].attributes.weight)
        viable = filter_best(lambda item: -item[0].attributes.local_pref)
        viable = filter_best(lambda item: len(item[0].attributes.as_path))
        viable = filter_best(lambda item: _ORIGIN_RANK[item[0].attributes.origin])
        viable = filter_best(lambda item: item[0].attributes.med)
        viable = filter_best(lambda item: 1 if item[0].attributes.from_ibgp else 0)
        viable = filter_best(lambda item: item[1])  # IGP cost
        return [route for route, _cost in viable]

    def order_sensitive_prefixes(self) -> List[Prefix]:
        """Prefixes whose single-path choice reached the arrival-clock
        tie-break with more than one candidate still standing.

        For these, the winner depends on message-arrival order, not on
        route attributes alone — a different (but equally valid)
        convergence schedule could pick a different best route. The
        delta engine treats any such prefix as a reason to fall back to
        a full recompute rather than splice warm-started state. Clock
        stamps themselves need no inspection: ambiguity exists exactly
        when multiple candidates survive the attribute tie-breaks.
        """
        if self.multipath > 1 or not self.use_clocks:
            return []  # multipath keeps the whole set; no clock step
        return [
            prefix
            for prefix in sorted(self._best, key=str)
            if len(self._pre_clock_candidates(prefix)) > 1
        ]

    def _select(self, prefix: Prefix) -> List[BgpRoute]:
        """The BGP decision process (§4.1.2 plus standard steps).

        Order: weight, local-pref, AS-path length, origin, MED,
        eBGP-over-iBGP, IGP cost to next hop, then (single-path only)
        arrival-time logical clock, then lowest neighbor address.
        """
        candidates = self._pre_clock_candidates(prefix)
        if not candidates:
            return []
        if self.multipath > 1:
            return sorted(candidates, key=route_sort_key)[: self.multipath]
        if len(candidates) > 1:
            # With logical clocks (§4.1.2) the *oldest* advertisement
            # wins, like routers: an equally good newcomer never
            # displaces the incumbent, removing re-advertisement churn.
            # Without clocks we model the naive behaviour — the newest
            # update wins — whose churn the clocks were added to remove.
            clocks = [
                self._clocks.get((prefix, r.received_from), 0) for r in candidates
            ]
            target = min(clocks) if self.use_clocks else max(clocks)
            candidates = [
                r
                for r, c in zip(candidates, clocks)
                if c == target
            ]
        # Final deterministic tie-break: lowest advertiser address
        # (local routes, peer None, win over learned ones).
        def advertiser(route: BgpRoute) -> int:
            return -1 if route.received_from is None else route.received_from.value

        best_advertiser = min(advertiser(r) for r in candidates)
        return sorted(
            (r for r in candidates if advertiser(r) == best_advertiser),
            key=route_sort_key,
        )[:1]

    def _resolve_igp_cost(self, route: BgpRoute) -> Optional[int]:
        if route.received_from is None:
            return 0  # locally originated
        return self._igp_cost(route.next_hop_ip)

    # -- queries ----------------------------------------------------------

    def best_routes(self, prefix: Prefix) -> List[BgpRoute]:
        return list(self._best.get(prefix, []))

    def all_best(self) -> List[BgpRoute]:
        result: List[BgpRoute] = []
        for prefix in sorted(self._best, key=str):
            result.extend(self._best[prefix])
        return result

    def candidate_count(self) -> int:
        return sum(len(peers) for peers in self._candidates.values())

    def take_delta(self) -> RibDelta:
        return self.delta.clear()


# ----------------------------------------------------------------------
# Advertisement construction (export side)


def export_route(
    session: BgpSession, route: BgpRoute, next_hop_override: Optional[Ip] = None
) -> Optional[BgpRoute]:
    """Transform a locally-selected route into the advertisement the
    remote peer receives on ``session`` (before the remote import
    policy). Returns None when BGP rules forbid the advertisement.
    """
    attrs = route.attributes
    if session.is_ibgp:
        if attrs.from_ibgp and not session.neighbor.route_reflector_client:
            # iBGP-learned routes only go to route-reflector clients.
            return None
        next_hop = route.next_hop_ip
        if session.neighbor.next_hop_self or route.received_from is None:
            next_hop = session.local_ip
        new_attrs = attrs.with_changes(
            from_ibgp=True,
            admin_distance=AD_IBGP,
            originator_id=attrs.originator_id
            or (route.received_from if attrs.from_ibgp else None),
        )
    else:
        next_hop = next_hop_override or session.local_ip
        new_attrs = attrs.with_changes(
            as_path=intern_as_path((session.local_as,) + attrs.as_path),
            local_pref=100,  # local-pref is not carried across eBGP
            from_ibgp=False,
            admin_distance=AD_EBGP,
            originator_id=None,
            weight=0,
            med=0 if attrs.from_ibgp else attrs.med,
            communities=attrs.communities
            if session.neighbor.send_community
            else (),
        )
    return BgpRoute(
        prefix=route.prefix,
        next_hop_ip=next_hop,
        attributes=new_attrs,
        received_from=session.local_ip,  # will be the receiver's peer ip
    )


def accepts_route(session: BgpSession, route: BgpRoute) -> Tuple[bool, str]:
    """Receiver-side sanity rules: AS-path loop prevention and
    originator-id reflection loop prevention."""
    if not session.is_ibgp and session.local_as in route.attributes.as_path:
        return False, "as-path loop"
    if (
        session.is_ibgp
        and route.attributes.originator_id is not None
        and route.attributes.originator_id == session.local_ip
    ):
        return False, "originator-id loop"
    return True, ""


def local_route(
    prefix: Prefix,
    next_hop: Ip,
    local_as: int,
    source_protocol=None,
    med: int = 0,
    communities: Tuple[str, ...] = (),
) -> BgpRoute:
    """A locally-originated BGP route (network statement or
    redistribution)."""
    return BgpRoute(
        prefix=prefix,
        next_hop_ip=next_hop,
        attributes=BgpAttributes.make(
            as_path=intern_as_path(()),
            origin=Origin.IGP if source_protocol is None else Origin.INCOMPLETE,
            med=med,
            communities=intern_communities(communities),
            weight=32768,  # locally originated routes win by weight
            admin_distance=AD_EBGP,
            source_protocol=source_protocol,
        ),
        received_from=None,
    )
