"""Protocol-specific graph coloring for deterministic convergence
(§4.1.2).

"For each routing protocol, [Batfish] computes the adjacencies, colors
the graph, and allows only nodes of the same color to participate in the
message exchange at the same time (for that routing protocol). This
technique eliminates race conditions caused by neighbors exchanging
routes given their partially converged state."

Nodes of one color class are pairwise non-adjacent, so they can safely
process concurrently; color classes execute sequentially within an
iteration. The coloring is greedy over nodes in sorted order, which
makes the schedule — and therefore the simulation — deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple


def greedy_coloring(
    nodes: Iterable[str], edges: Iterable[Tuple[str, str]]
) -> Dict[str, int]:
    """Color an undirected graph greedily, visiting nodes in sorted
    order. Returns node -> color (0-based)."""
    adjacency: Dict[str, Set[str]] = {node: set() for node in nodes}
    for a, b in edges:
        if a == b:
            continue
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    colors: Dict[str, int] = {}
    for node in sorted(adjacency):
        taken = {colors[n] for n in adjacency[node] if n in colors}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def color_classes(colors: Dict[str, int]) -> List[List[str]]:
    """Group nodes by color; classes ordered by color, nodes sorted."""
    classes: Dict[int, List[str]] = {}
    for node, color in colors.items():
        classes.setdefault(color, []).append(node)
    return [sorted(classes[color]) for color in sorted(classes)]


def verify_coloring(
    colors: Dict[str, int], edges: Iterable[Tuple[str, str]]
) -> bool:
    """True if no edge connects two nodes of the same color."""
    return all(
        a == b or colors.get(a) != colors.get(b) for a, b in edges
    )
