"""The imperative data-plane generation engine (§4.1).

This replaces the original Datalog model (Lesson 1) with custom code
running a fixed-point computation. The schedule encodes the paper's
optimizations explicitly:

1. connected and static routes first (with recursive next-hop
   resolution to a fixed point),
2. the IGP (OSPF) converges fully before BGP starts ("allowing IGP
   protocols to converge prior to beginning BGP computation"),
3. BGP session viability is evaluated against the partial data plane
   (reachability of the peer address, ACLs on the TCP/179 path) and
   re-evaluated after BGP converges — sessions that become (in)viable
   trigger another round,
4. the BGP fixed point uses protocol-specific graph coloring plus
   logical clocks for deterministic convergence (§4.1.2), and RIB-delta
   pulls with no per-neighbor queues for memory (§4.1.3): a receiver
   pulls a neighbor's delta and runs the neighbor's export policy, its
   own import policy, and the RIB merge in one step.

Non-convergence is *detected and reported*, not forced: the engine
hashes global BGP state each iteration and reports an oscillation when a
state repeats (Figure 1's patterns, reproduced in the convergence
benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.provenance import record as prov
from repro.config.model import Action, Device, Protocol, Snapshot
from repro.hdr import fields as hdr_fields
from repro.hdr.ip import Ip, Prefix
from repro.hdr.packet import Packet
from repro.routing.bgp import (
    BgpRib,
    BgpSession,
    SessionCompatibilityIssue,
    accepts_route,
    compute_bgp_sessions,
    export_route,
    local_route,
)
from repro.routing.coloring import color_classes, greedy_coloring
from repro.routing.ospf import compute_ospf, compute_ospf_externals
from repro.routing.policy import (
    DEFAULT_SEMANTICS,
    PolicyRoute,
    PolicySemantics,
    apply_route_map,
)
from repro.routing.rib import Rib, RibDelta
from repro.routing.route import (
    BgpRoute,
    ConnectedRoute,
    OspfRoute,
    StaticRouteEntry,
    intern_as_path,
    intern_communities,
)
from repro.routing.topology import InterfaceId, Layer3Topology, build_layer3_topology

DEFAULT_EXTERNAL_METRIC = 20


@dataclass
class ConvergenceSettings:
    """Knobs for the convergence study (Figure 1 benchmark)."""

    #: "colored": color classes execute sequentially (the paper's
    #: technique). "lockstep": all nodes exchange in the same iteration —
    #: the uncontrolled parallelism that triggers pathological cases.
    schedule: str = "colored"
    use_logical_clocks: bool = True
    max_iterations: int = 500
    #: Re-evaluations of session viability after BGP convergence.
    max_session_rounds: int = 3


@dataclass
class NodeState:
    """Routing state of one simulated node."""

    device: Device
    main_rib: Rib = field(default_factory=Rib)
    bgp_rib: Optional[BgpRib] = None
    connected_routes: List[ConnectedRoute] = field(default_factory=list)
    #: BGP routes currently merged into the main RIB.
    bgp_in_main: List[BgpRoute] = field(default_factory=list)


@dataclass
class DataPlaneStats:
    iterations: int = 0
    session_rounds: int = 0
    bgp_routes_processed: int = 0
    #: Total best-route churn (delta entries published); logical clocks
    #: exist to keep this low when equally good routes race (§4.1.2).
    best_route_changes: int = 0
    elapsed_seconds: float = 0.0
    total_routes: int = 0


@dataclass
class DataPlane:
    """The computed data-plane state of a snapshot."""

    snapshot: Snapshot
    topology: Layer3Topology
    nodes: Dict[str, NodeState]
    sessions: List[BgpSession]
    session_issues: List[SessionCompatibilityIssue]
    converged: bool
    oscillating_prefixes: List[Prefix]
    stats: DataPlaneStats

    def main_rib(self, hostname: str) -> Rib:
        return self.nodes[hostname].main_rib

    def route_counts(self) -> Dict[str, int]:
        return {name: len(state.main_rib) for name, state in self.nodes.items()}


def compute_dataplane(
    snapshot: Snapshot,
    settings: Optional[ConvergenceSettings] = None,
    semantics: PolicySemantics = DEFAULT_SEMANTICS,
) -> DataPlane:
    """Derive the data plane implied by a configuration snapshot."""
    settings = settings or ConvergenceSettings()
    started = time.perf_counter()
    with obs.span("dataplane", devices=len(snapshot.devices)):
        with obs.span("dataplane.igp"):
            topology = build_layer3_topology(snapshot)
            nodes: Dict[str, NodeState] = {
                hostname: NodeState(
                    device=snapshot.device(hostname),
                    # Owner wires main-RIB install/suppress outcomes into
                    # the provenance record (no-op unless recording).
                    main_rib=Rib(owner=hostname),
                )
                for hostname in snapshot.hostnames()
            }
            _install_connected(nodes)
            _install_static(nodes)
            _run_ospf(snapshot, topology, nodes, semantics)
        sessions, issues = compute_bgp_sessions(snapshot)
        stats = DataPlaneStats()
        converged = True
        oscillating: List[Prefix] = []
        established_keys: Set[Tuple[str, str, str]] = set()
        with obs.span("dataplane.bgp"):
            for round_number in range(settings.max_session_rounds):
                stats.session_rounds = round_number + 1
                _evaluate_session_viability(snapshot, nodes, sessions)
                new_keys = {s.key for s in sessions if s.established}
                if round_number > 0 and new_keys == established_keys:
                    break
                established_keys = new_keys
                converged, oscillating = _run_bgp(
                    snapshot, nodes, sessions, settings, semantics, stats
                )
                _merge_bgp_into_main(nodes)
                if not converged:
                    break
        stats.elapsed_seconds = time.perf_counter() - started
        stats.total_routes = sum(len(state.main_rib) for state in nodes.values())
        if obs.enabled():
            obs.add("dataplane.runs")
            obs.add("dataplane.bgp.iterations", stats.iterations)
            obs.add("dataplane.session_rounds", stats.session_rounds)
            obs.add("dataplane.bgp.routes_processed", stats.bgp_routes_processed)
            obs.observe("dataplane.convergence_iterations", stats.iterations)
            obs.gauge("dataplane.total_routes", stats.total_routes)
            if not converged:
                obs.add("dataplane.oscillations")
    return DataPlane(
        snapshot=snapshot,
        topology=topology,
        nodes=nodes,
        sessions=sessions,
        session_issues=issues,
        converged=converged,
        oscillating_prefixes=oscillating,
        stats=stats,
    )


# ----------------------------------------------------------------------
# Connected and static routes


def _install_connected(nodes: Dict[str, NodeState]) -> None:
    # Sorted hostname order: install order feeds RIB deltas, and the
    # parallel/serial equivalence tests assert byte-identical FIBs.
    recording = prov.enabled()
    for hostname, state in sorted(nodes.items()):
        for iface in sorted(state.device.interfaces.values(), key=lambda i: i.name):
            if not iface.enabled or iface.prefix is None:
                continue
            route = ConnectedRoute(prefix=iface.prefix, interface=iface.name)
            state.connected_routes.append(route)
            if recording:
                prov.route_event(
                    hostname, iface.prefix, "connected", "installed",
                    f"interface {iface.name} is up with address "
                    f"{iface.address}/{iface.prefix.length}",
                )
            state.main_rib.merge(route)


def _install_static(nodes: Dict[str, NodeState]) -> None:
    """Activate static routes, resolving recursive next hops iteratively:
    a static route is active when null-routed or when its next hop
    resolves in the (growing) main RIB."""
    pending: Dict[str, List[StaticRouteEntry]] = {}
    for hostname, state in nodes.items():
        entries = [
            StaticRouteEntry(
                prefix=config_route.prefix,
                next_hop_ip=config_route.next_hop_ip,
                next_hop_interface=config_route.next_hop_interface,
                admin_distance=config_route.admin_distance,
                tag=config_route.tag,
            )
            for config_route in state.device.static_routes
        ]
        pending[hostname] = entries
    recording = prov.enabled()
    changed = True
    while changed:
        changed = False
        for hostname in sorted(pending):
            state = nodes[hostname]
            still_pending: List[StaticRouteEntry] = []
            for entry in pending[hostname]:
                resolution = ""
                if entry.is_null_routed or entry.next_hop_ip is None:
                    resolvable = True
                    resolution = "null-routed (discard)" if entry.is_null_routed else (
                        f"directly via interface {entry.next_hop_interface}"
                    )
                elif entry.next_hop_interface is not None:
                    resolvable = entry.next_hop_interface in state.device.interfaces
                    resolution = f"via configured interface {entry.next_hop_interface}"
                else:
                    match = state.main_rib.longest_match(entry.next_hop_ip)
                    # Require the resolving route to be less specific
                    # than the static route itself (no self-resolution).
                    resolvable = match is not None and match[0] != entry.prefix
                    if resolvable:
                        resolution = (
                            f"next hop {entry.next_hop_ip} resolved via {match[0]}"
                        )
                if resolvable:
                    if recording:
                        prov.route_event(
                            hostname, entry.prefix, "static", "installed",
                            f"static route activated: {resolution}",
                        )
                    if state.main_rib.merge(entry):
                        changed = True
                else:
                    still_pending.append(entry)
            pending[hostname] = still_pending
    if recording:
        # Whatever never resolved explains the *absence* of a FIB entry.
        for hostname in sorted(pending):
            for entry in pending[hostname]:
                prov.route_event(
                    hostname, entry.prefix, "static", "suppressed",
                    f"static route inactive: next hop {entry.next_hop_ip} "
                    "unresolvable in main RIB",
                )


# ----------------------------------------------------------------------
# OSPF


def _run_ospf(
    snapshot: Snapshot,
    topology: Layer3Topology,
    nodes: Dict[str, NodeState],
    semantics: PolicySemantics,
    restrict: Optional[Set[str]] = None,
) -> None:
    """Converge OSPF and merge results into the nodes' main RIBs.

    ``nodes`` may be a restricted subset of the snapshot's devices (the
    delta engine re-simulates only dirty devices); results for hosts
    outside it are discarded, and ``restrict`` additionally skips their
    SPF work entirely.
    """
    computation = compute_ospf(snapshot, topology, restrict=restrict)
    for hostname, routes in computation.routes.items():
        if hostname not in nodes:
            continue
        state = nodes[hostname]
        for route in routes:
            if prov.enabled():
                prov.route_event(
                    hostname, route.prefix, "ospf", "installed",
                    f"SPF result: {route.describe()} "
                    f"(next hop {route.next_hop_ip})",
                    neighbor=str(route.next_hop_ip)
                    if route.next_hop_ip is not None
                    else None,
                )
            state.main_rib.merge(route)
    # Redistribution into OSPF (connected/static sources), walked in
    # sorted hostname order for schedule-independent results.
    redistributed: Dict[str, List[Tuple[Prefix, int]]] = {}
    for hostname, state in sorted(nodes.items()):
        device = state.device
        if device.ospf is None or not device.ospf.redistributions:
            continue
        contributions: List[Tuple[Prefix, int]] = []
        recording = prov.enabled()
        for redist in device.ospf.redistributions:
            metric = redist.metric or DEFAULT_EXTERNAL_METRIC
            for route in state.main_rib.routes():
                if not _matches_redist_source(route, redist.source):
                    continue
                policy_route = PolicyRoute(
                    prefix=route.prefix, source_protocol=route.protocol
                )
                result = apply_route_map(
                    device, redist.route_map, policy_route, semantics
                )
                if recording:
                    prov.route_event(
                        hostname, route.prefix, "ospf",
                        "redistributed" if result.permitted else "rejected",
                        f"redistribute {redist.source.value} into OSPF "
                        f"(metric {metric}): "
                        + ("permitted" if result.permitted else "denied"),
                        policy=_policy_label(redist.route_map, result),
                    )
                if result.permitted:
                    contributions.append((route.prefix, metric))
        if contributions:
            redistributed[hostname] = sorted(set(contributions))
    if redistributed:
        externals = compute_ospf_externals(snapshot, computation, redistributed)
        for hostname, routes in externals.items():
            if hostname not in nodes:
                continue
            state = nodes[hostname]
            for route in routes:
                if prov.enabled():
                    prov.route_event(
                        hostname, route.prefix, "ospf", "installed",
                        f"external (redistributed): {route.describe()}",
                    )
                state.main_rib.merge(route)


def _policy_label(route_map_name: Optional[str], result) -> str:
    """Render the deciding policy clause for a provenance event."""
    if route_map_name is None:
        return ""
    if result.matched_clause is None:
        return f"route-map {route_map_name} (no clause matched)"
    return f"route-map {route_map_name} clause {result.matched_clause}"


def _matches_redist_source(route, source: Protocol) -> bool:
    if source is Protocol.CONNECTED:
        return isinstance(route, ConnectedRoute)
    if source is Protocol.STATIC:
        return isinstance(route, StaticRouteEntry)
    if source is Protocol.OSPF:
        return isinstance(route, OspfRoute)
    if source is Protocol.BGP:
        return isinstance(route, BgpRoute)
    return False


# ----------------------------------------------------------------------
# BGP session viability (partial-data-plane dependence, §4.1.1)


def _evaluate_session_viability(
    snapshot: Snapshot, nodes: Dict[str, NodeState], sessions: List[BgpSession]
) -> None:
    recording = prov.enabled()
    for session in sessions:
        session.established, session.failure_reason = _session_viable(
            snapshot, nodes, session
        )
        if recording and not session.established:
            # A down session suppresses every route it would have
            # carried; record it against the wildcard prefix.
            prov.route_event(
                session.local_node, "*", "session", "down",
                f"BGP session to {session.remote_node} ({session.remote_ip}) "
                f"not established: {session.failure_reason}",
                neighbor=str(session.remote_ip),
            )


def _session_viable(
    snapshot: Snapshot, nodes: Dict[str, NodeState], session: BgpSession
) -> Tuple[bool, str]:
    state = nodes[session.local_node]
    device = state.device
    # Reachability of the peer address.
    if session.is_ibgp or session.neighbor.ebgp_multihop:
        if state.main_rib.longest_match(session.remote_ip) is None:
            return False, f"peer {session.remote_ip} unreachable"
    else:
        # Single-hop eBGP: the peer must be directly connected.
        if not any(
            route.prefix.contains_ip(session.remote_ip)
            for route in state.connected_routes
        ):
            return False, f"peer {session.remote_ip} not directly connected"
    # TCP viability through ACLs on the interfaces facing the peer: the
    # local outgoing filter and the remote incoming filter must both
    # permit BGP (TCP/179) between the session addresses.
    probe = Packet(
        dst_ip=session.remote_ip,
        src_ip=session.local_ip,
        dst_port=179,
        src_port=33000,
        ip_protocol=hdr_fields.PROTO_TCP,
    )
    local_iface = _interface_owning(device, session.local_ip)
    if local_iface is not None and local_iface.outgoing_acl:
        if not _acl_permits(device, local_iface.outgoing_acl, probe):
            return False, f"outgoing ACL {local_iface.outgoing_acl} blocks TCP/179"
    remote_device = snapshot.device(session.remote_node)
    remote_iface = _interface_owning(remote_device, session.remote_ip)
    if remote_iface is not None and remote_iface.incoming_acl:
        if not _acl_permits(remote_device, remote_iface.incoming_acl, probe):
            return False, (
                f"incoming ACL {remote_iface.incoming_acl} on "
                f"{session.remote_node} blocks TCP/179"
            )
    return True, ""


def _interface_owning(device: Device, address: Ip):
    for iface in device.interfaces.values():
        if iface.address == address:
            return iface
    return None


def _acl_permits(device: Device, acl_name: str, packet: Packet) -> bool:
    from repro.dataplane.acl import evaluate_acl

    acl = device.acls.get(acl_name)
    if acl is None:
        return True  # undefined ACL: permit (model default, Lesson 3)
    result = evaluate_acl(acl, packet)
    if obs.active():
        obs.touch(
            "acl_line",
            device.hostname,
            acl_name,
            result.line_index if result.line_index is not None else -1,
        )
    return result.action is Action.PERMIT


# ----------------------------------------------------------------------
# BGP fixed point


def _run_bgp(
    snapshot: Snapshot,
    nodes: Dict[str, NodeState],
    sessions: List[BgpSession],
    settings: ConvergenceSettings,
    semantics: PolicySemantics,
    stats: DataPlaneStats,
) -> Tuple[bool, List[Prefix]]:
    """Run the BGP exchange to a fixed point (or detect oscillation).

    Returns (converged, oscillating_prefixes).
    """
    established = [s for s in sessions if s.established]
    bgp_nodes = sorted(
        {s.local_node for s in established}
        | {
            hostname
            for hostname, state in nodes.items()
            if state.device.bgp is not None
        }
    )
    if not bgp_nodes:
        return True, []
    # (Re)create BGP RIBs and seed them with local routes.
    clock_counter = [0]

    def next_clock() -> int:
        clock_counter[0] += 1
        return clock_counter[0]

    for hostname in bgp_nodes:
        state = nodes[hostname]
        device = state.device
        state.bgp_rib = BgpRib(
            local_as=device.bgp.local_as,
            multipath=device.bgp.maximum_paths,
            igp_cost=_igp_cost_fn(state),
            use_clocks=settings.use_logical_clocks,
            owner=hostname,
        )
        _originate_local_bgp(state, semantics, next_clock)

    # Sessions indexed by receiver: (receiver, sender_session).
    in_sessions: Dict[str, List[BgpSession]] = {}
    session_by_key: Dict[Tuple[str, str, str], BgpSession] = {}
    for session in established:
        session_by_key[session.key] = session
    for session in established:
        # The session as seen by the *sender*; receiver pulls through it.
        in_sessions.setdefault(session.remote_node, []).append(session)

    # Per directed session edge: the pending delta the receiver has not
    # consumed yet. Routes are references into the sender's RIB (shared,
    # interned objects) — this is the "no queues" hybrid (§4.1.3).
    pending: Dict[Tuple[str, str, str], RibDelta] = {
        s.key: RibDelta() for s in established
    }

    def publish(sender: str, delta: RibDelta) -> None:
        if delta.empty:
            return
        for session in established:
            if session.local_node == sender:
                pending[session.key].extend(
                    RibDelta(list(delta.added), list(delta.removed))
                )

    # Seed: every node publishes its initial best routes.
    for hostname in bgp_nodes:
        delta = nodes[hostname].bgp_rib.take_delta()
        publish(hostname, delta)

    # Scheduling order: colored classes or one lockstep class.
    if settings.schedule == "colored":
        session_edges = [(s.local_node, s.remote_node) for s in established]
        colors = greedy_coloring(bgp_nodes, session_edges)
        schedule = color_classes(colors)
    else:
        schedule = [list(bgp_nodes)]

    seen_states: Dict[int, int] = {}
    previous_best: Dict[str, Tuple] = {}
    converged = False
    oscillating: List[Prefix] = []
    observing = obs.enabled()
    recording = prov.enabled()
    for iteration in range(1, settings.max_iterations + 1):
        stats.iterations = iteration
        if recording:
            # Stamp subsequent derivation events with the convergence
            # iteration that produced them (§4.1.2 diagnosability).
            prov.set_iteration(iteration)
        any_change = False
        iteration_delta_routes = 0
        for color_class in schedule:
            # Two-phase within a class: snapshot pendings first so nodes
            # of one class see a consistent pre-class state (they are
            # pairwise non-adjacent under coloring, so this only matters
            # for the lockstep schedule).
            snapshots = {}
            for hostname in color_class:
                for session in in_sessions.get(hostname, []):
                    snapshots[session.key] = pending[session.key].clear()
            deltas: Dict[str, RibDelta] = {}
            for hostname in color_class:
                state = nodes[hostname]
                for session in in_sessions.get(hostname, []):
                    delta = snapshots.get(session.key)
                    if delta is None or delta.empty:
                        continue
                    _process_incoming(
                        snapshot, state, session, delta, semantics,
                        next_clock, stats,
                    )
                deltas[hostname] = state.bgp_rib.take_delta()
                delta_size = len(deltas[hostname].added) + len(
                    deltas[hostname].removed
                )
                stats.best_route_changes += delta_size
                iteration_delta_routes += delta_size
            for hostname in color_class:
                delta = deltas[hostname]
                if not delta.empty:
                    any_change = True
                    publish(hostname, delta)
        if observing:
            # Per-iteration RIB-delta telemetry: the §4.1.3 churn signal
            # used to diagnose slow or diverging convergence.
            obs.observe("dataplane.bgp.iteration_delta_routes", iteration_delta_routes)
        if not any_change and all(p.empty for p in pending.values()):
            converged = True
            break
        # Oscillation detection: a repeated global state means a cycle.
        state_hash, best_map = _global_state(nodes, bgp_nodes)
        if state_hash in seen_states:
            oscillating = _diff_prefixes(previous_best, best_map)
            converged = False
            break
        seen_states[state_hash] = iteration
        previous_best = best_map
    if recording:
        prov.set_iteration(0)  # later events are outside the fixed point
    return converged, sorted(set(oscillating), key=str)


def _igp_cost_fn(state: NodeState):
    def igp_cost(next_hop: Ip) -> Optional[int]:
        match = state.main_rib.longest_match(next_hop)
        if match is None:
            return None
        _prefix, routes = match
        best = routes[0]
        if isinstance(best, OspfRoute):
            return best.cost
        if isinstance(best, (ConnectedRoute, StaticRouteEntry)):
            return 0
        return None  # next hop resolving via BGP is not allowed

    return igp_cost


def _originate_local_bgp(state: NodeState, semantics, next_clock) -> None:
    device = state.device
    bgp = device.bgp
    local_ip = device.router_id()
    recording = prov.enabled()
    hostname = device.hostname
    for prefix in bgp.networks:
        # A network statement originates only if the prefix is present
        # in the main RIB (IGP/connected/static), per vendor semantics.
        if state.main_rib.best_routes(prefix):
            if recording:
                prov.route_event(
                    hostname, prefix, "bgp", "originated",
                    f"network statement for {prefix}: prefix present in "
                    "main RIB, originated into BGP",
                )
            state.bgp_rib.put(
                local_route(prefix, local_ip, bgp.local_as), next_clock()
            )
        elif recording:
            prov.route_event(
                hostname, prefix, "bgp", "suppressed",
                f"network statement for {prefix} did not originate: "
                "prefix absent from main RIB",
            )
    for redist in bgp.redistributions:
        for route in list(state.main_rib.routes()):
            if not _matches_redist_source(route, redist.source):
                continue
            policy_route = PolicyRoute(
                prefix=route.prefix,
                source_protocol=route.protocol,
                med=getattr(route, "cost", 0),
            )
            result = apply_route_map(
                device, redist.route_map, policy_route, semantics
            )
            if recording:
                prov.route_event(
                    hostname, route.prefix, "bgp",
                    "originated" if result.permitted else "rejected",
                    f"redistribute {redist.source.value} into BGP: "
                    + ("permitted" if result.permitted else "denied"),
                    policy=_policy_label(redist.route_map, result),
                )
            if not result.permitted:
                continue
            transformed = result.route
            state.bgp_rib.put(
                local_route(
                    route.prefix,
                    local_ip,
                    bgp.local_as,
                    source_protocol=route.protocol,
                    med=transformed.med,
                    communities=tuple(transformed.communities),
                ),
                next_clock(),
            )


def _process_incoming(
    snapshot: Snapshot,
    state: NodeState,
    sender_session: BgpSession,
    delta: RibDelta,
    semantics: PolicySemantics,
    next_clock,
    stats: DataPlaneStats,
) -> None:
    """Pull one neighbor's RIB delta: run the sender's export policy, the
    local import policy, and the RIB merge in a single step (§4.1.3)."""
    sender_device = snapshot.device(sender_session.local_node)
    receiver_device = state.device
    receiver_neighbor = receiver_device.bgp.neighbors.get(sender_session.local_ip)
    peer_ip = sender_session.local_ip
    recording = prov.enabled()
    receiver = receiver_device.hostname
    sender = sender_session.local_node
    # Withdrawals: remove whatever we had from this peer for the prefix.
    for route in delta.removed:
        stats.bgp_routes_processed += 1
        if recording:
            prov.route_event(
                receiver, route.prefix, "bgp", "withdrawn",
                f"withdrawal pulled from {sender}",
                neighbor=str(peer_ip),
            )
        state.bgp_rib.withdraw(route.prefix, peer_ip)
    advertised: Set[Prefix] = set()
    for route in delta.added:
        stats.bgp_routes_processed += 1
        if route.prefix in advertised:
            continue  # one advertisement per prefix (no add-path)
        advertised.add(route.prefix)
        # Sender-side export policy (sender's route map).
        export_policy = sender_session.neighbor.export_policy
        policy_route = _to_policy_route(route)
        result = apply_route_map(
            sender_device, export_policy, policy_route, semantics
        )
        if not result.permitted:
            if recording:
                prov.route_event(
                    receiver, route.prefix, "bgp", "suppressed",
                    f"denied by {sender}'s export policy",
                    neighbor=str(peer_ip),
                    policy=_policy_label(export_policy, result),
                )
            state.bgp_rib.withdraw(route.prefix, peer_ip)
            continue
        shaped = _from_policy_route(route, result.route)
        advertisement = export_route(sender_session, shaped)
        if advertisement is None:
            if recording:
                prov.route_event(
                    receiver, route.prefix, "bgp", "suppressed",
                    f"not advertised by {sender}: iBGP-learned route to "
                    "non-route-reflector-client peer",
                    neighbor=str(peer_ip),
                )
            state.bgp_rib.withdraw(route.prefix, peer_ip)
            continue
        accepted, reason = accepts_route(
            _receiver_view(sender_session), advertisement
        )
        if not accepted:
            if recording:
                prov.route_event(
                    receiver, route.prefix, "bgp", "rejected",
                    f"advertisement from {sender} rejected: {reason}",
                    neighbor=str(peer_ip),
                )
            state.bgp_rib.withdraw(route.prefix, peer_ip)
            continue
        # Receiver-side import policy.
        import_policy = (
            receiver_neighbor.import_policy if receiver_neighbor else None
        )
        policy_route = _to_policy_route(advertisement)
        result = apply_route_map(
            receiver_device, import_policy, policy_route, semantics
        )
        if not result.permitted:
            if recording:
                prov.route_event(
                    receiver, route.prefix, "bgp", "suppressed",
                    f"advertisement from {sender} denied by import policy",
                    neighbor=str(peer_ip),
                    policy=_policy_label(import_policy, result),
                )
            state.bgp_rib.withdraw(route.prefix, peer_ip)
            continue
        final = _from_policy_route(advertisement, result.route)
        final = BgpRoute(
            prefix=final.prefix,
            next_hop_ip=final.next_hop_ip,
            attributes=final.attributes,
            received_from=peer_ip,
        )
        if recording:
            export_label = _policy_label(export_policy, result)
            prov.route_event(
                receiver, route.prefix, "bgp", "installed",
                f"received from {sender} via {peer_ip}: "
                f"as-path {list(final.attributes.as_path)}, "
                f"local-pref {final.attributes.local_pref}, "
                f"med {final.attributes.med}; export "
                + (f"[{export_label}]" if export_label else "[no policy]")
                + "; import "
                + (
                    f"[{_policy_label(import_policy, result)}]"
                    if import_policy
                    else "[no policy]"
                ),
                neighbor=str(peer_ip),
            )
        state.bgp_rib.put(final, next_clock())


def _receiver_view(sender_session: BgpSession) -> BgpSession:
    """The session as the receiver sees it (local/remote swapped)."""
    return BgpSession(
        local_node=sender_session.remote_node,
        remote_node=sender_session.local_node,
        local_ip=sender_session.remote_ip,
        remote_ip=sender_session.local_ip,
        local_as=sender_session.remote_as,
        remote_as=sender_session.local_as,
        neighbor=sender_session.neighbor,
        is_ibgp=sender_session.is_ibgp,
        established=sender_session.established,
    )


def _to_policy_route(route: BgpRoute) -> PolicyRoute:
    attrs = route.attributes
    return PolicyRoute(
        prefix=route.prefix,
        next_hop_ip=route.next_hop_ip,
        as_path=attrs.as_path,
        local_pref=attrs.local_pref,
        med=attrs.med,
        origin=attrs.origin,
        communities=set(attrs.communities),
        weight=attrs.weight,
        tag=attrs.tag,
        source_protocol=attrs.source_protocol,
    )


def _from_policy_route(base: BgpRoute, policy_route: PolicyRoute) -> BgpRoute:
    attrs = base.attributes.with_changes(
        as_path=intern_as_path(policy_route.as_path),
        local_pref=policy_route.local_pref,
        med=policy_route.med,
        origin=policy_route.origin,
        communities=intern_communities(tuple(policy_route.communities)),
        weight=policy_route.weight,
        tag=policy_route.tag,
    )
    next_hop = policy_route.next_hop_ip or base.next_hop_ip
    return BgpRoute(
        prefix=base.prefix,
        next_hop_ip=next_hop,
        attributes=attrs,
        received_from=base.received_from,
    )


def _global_state(nodes, bgp_nodes) -> Tuple[int, Dict[str, Tuple]]:
    best_map: Dict[str, Tuple] = {}
    for hostname in bgp_nodes:
        rib = nodes[hostname].bgp_rib
        best_map[hostname] = tuple(
            (route.prefix, route.next_hop_ip, route.attributes)
            for route in rib.all_best()
        )
    return hash(tuple(sorted(best_map.items()))), best_map


def _diff_prefixes(old: Dict[str, Tuple], new: Dict[str, Tuple]) -> List[Prefix]:
    changed: List[Prefix] = []
    for hostname in sorted(new):
        old_set = set(old.get(hostname, ()))
        new_set = set(new.get(hostname, ()))
        # Set iteration order is hash-seed dependent; sort so reports
        # are identical across processes (parallel workers included).
        changed.extend(sorted((entry[0] for entry in old_set ^ new_set), key=str))
    return changed


def _merge_bgp_into_main(nodes: Dict[str, NodeState]) -> None:
    for _hostname, state in sorted(nodes.items()):
        for route in state.bgp_in_main:
            state.main_rib.withdraw(route)
        state.bgp_in_main = []
        if state.bgp_rib is None:
            continue
        for route in state.bgp_rib.all_best():
            if route.received_from is None:
                continue  # locally-originated routes already in main RIB
            if state.main_rib.merge(route):
                pass
            state.bgp_in_main.append(route)
