"""OSPF route computation.

OSPF is link-state: every router in an area floods its adjacencies and
attached prefixes, then each router runs shortest-path-first over the
resulting area graph. The simulation mirrors that structure directly —
an area-wide link-state database is assembled from the configurations
(flooding always converges to exactly this database), then per-router
Dijkstra computes intra-area routes. Inter-area routes go through area-0
ABRs, and redistribution produces type-2 external routes whose metric
does not accumulate along the path (ties broken by distance to the
ASBR), matching the protocol specification.

Running IGP to convergence *before* BGP is one of the explicit
optimizations imperative evaluation enabled (§4.1.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config.model import Device, Snapshot
from repro.hdr.ip import Ip, Prefix
from repro.provenance import record as prov
from repro.routing.route import OspfRoute, OspfRouteType
from repro.routing.topology import InterfaceId, Layer3Edge, Layer3Topology

DEFAULT_EXTERNAL_METRIC = 20


@dataclass(frozen=True)
class OspfNeighbor:
    """An established OSPF adjacency (both sides enabled, same area,
    neither passive)."""

    edge: Layer3Edge
    area: int
    cost: int  # cost of the tail's outgoing interface


def interface_cost(device: Device, interface_name: str) -> int:
    """Interface cost: explicit `ip ospf cost`, else reference bandwidth
    divided by interface bandwidth (minimum 1)."""
    iface = device.interfaces[interface_name]
    if iface.ospf_cost is not None:
        return iface.ospf_cost
    reference = (
        device.ospf.reference_bandwidth if device.ospf else 100_000_000
    )
    return max(1, reference // max(iface.bandwidth, 1))


def ospf_neighbors(
    snapshot: Snapshot, topology: Layer3Topology
) -> List[OspfNeighbor]:
    """All OSPF adjacencies implied by the configurations."""
    neighbors: List[OspfNeighbor] = []
    for edge in topology.edges():
        tail_device = snapshot.device(edge.tail.node)
        head_device = snapshot.device(edge.head.node)
        if tail_device.ospf is None or head_device.ospf is None:
            continue
        tail_iface = tail_device.interfaces[edge.tail.interface]
        head_iface = head_device.interfaces[edge.head.interface]
        if not (tail_iface.ospf_enabled and head_iface.ospf_enabled):
            continue
        if tail_iface.ospf_passive or head_iface.ospf_passive:
            continue
        if tail_iface.ospf_area != head_iface.ospf_area:
            continue
        neighbors.append(
            OspfNeighbor(
                edge=edge,
                area=tail_iface.ospf_area,
                cost=interface_cost(tail_device, edge.tail.interface),
            )
        )
    return neighbors


@dataclass
class _AreaDatabase:
    """The link-state database of one area."""

    area: int
    # node -> [(neighbor_node, cost, edge)]
    adjacency: Dict[str, List[Tuple[str, int, Layer3Edge]]]
    # prefixes advertised into the area: node -> [(prefix, stub_cost)]
    prefixes: Dict[str, List[Tuple[Prefix, int]]]
    members: Set[str]


def _build_area_databases(
    snapshot: Snapshot, topology: Layer3Topology
) -> Dict[int, _AreaDatabase]:
    databases: Dict[int, _AreaDatabase] = {}

    def area_db(area: int) -> _AreaDatabase:
        if area not in databases:
            databases[area] = _AreaDatabase(area, {}, {}, set())
        return databases[area]

    for neighbor in ospf_neighbors(snapshot, topology):
        db = area_db(neighbor.area)
        db.adjacency.setdefault(neighbor.edge.tail.node, []).append(
            (neighbor.edge.head.node, neighbor.cost, neighbor.edge)
        )
        db.members.add(neighbor.edge.tail.node)
        db.members.add(neighbor.edge.head.node)
    # Advertised prefixes: every OSPF-enabled interface (incl. passive
    # and loopbacks) contributes its connected prefix as a stub network.
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        if device.ospf is None:
            continue
        for iface in device.interfaces.values():
            if not (iface.ospf_enabled and iface.enabled):
                continue
            prefix = iface.prefix
            if prefix is None:
                continue
            db = area_db(iface.ospf_area)
            db.members.add(hostname)
            db.prefixes.setdefault(hostname, []).append(
                (prefix, interface_cost(device, iface.name))
            )
    return databases


def _dijkstra(
    db: _AreaDatabase, source: str
) -> Tuple[Dict[str, int], Dict[str, List[Layer3Edge]]]:
    """Shortest paths from ``source`` over the area graph.

    Returns distances and, for each reachable node, the set of first-hop
    edges (supporting equal-cost multipath).
    """
    dist: Dict[str, int] = {source: 0}
    first_hops: Dict[str, List[Layer3Edge]] = {source: []}
    heap: List[Tuple[int, str]] = [(0, source)]
    visited: Set[str] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, cost, edge in sorted(
            db.adjacency.get(node, []), key=lambda item: (item[0], item[1])
        ):
            candidate = d + cost
            known = dist.get(neighbor)
            if known is None or candidate < known:
                dist[neighbor] = candidate
                first_hops[neighbor] = (
                    [edge] if node == source else list(first_hops[node])
                )
                heapq.heappush(heap, (candidate, neighbor))
            elif candidate == known:
                new_hops = [edge] if node == source else first_hops[node]
                merged = {
                    (h.tail, h.head): h
                    for h in first_hops.get(neighbor, []) + list(new_hops)
                }
                first_hops[neighbor] = [
                    merged[k] for k in sorted(merged, key=lambda k: (k[0], k[1]))
                ]
    return dist, first_hops


@dataclass
class OspfComputation:
    """Result of OSPF convergence: per-node route lists, plus the
    internal distance tables reused for external-route placement."""

    routes: Dict[str, List[OspfRoute]]
    # (area, source) -> distances
    distances: Dict[Tuple[int, str], Dict[str, int]]
    first_hops: Dict[Tuple[int, str], Dict[str, List[Layer3Edge]]]
    databases: Dict[int, _AreaDatabase]


def compute_ospf(
    snapshot: Snapshot,
    topology: Layer3Topology,
    restrict: Optional[Set[str]] = None,
) -> OspfComputation:
    """Run OSPF to convergence for the whole snapshot.

    ``restrict`` limits the per-source SPF work to the given routers —
    the delta engine's selective re-simulation. Soundness requires the
    set to be closed under OSPF adjacency components (link-state
    flooding makes every router of a connected OSPF domain see any
    change inside it), which the dirty-set propagation guarantees;
    routers outside the set get empty route lists.
    """
    databases = _build_area_databases(snapshot, topology)
    routes: Dict[str, List[OspfRoute]] = {
        hostname: [] for hostname in snapshot.hostnames()
    }
    distances: Dict[Tuple[int, str], Dict[str, int]] = {}
    all_first_hops: Dict[Tuple[int, str], Dict[str, List[Layer3Edge]]] = {}

    for area, db in sorted(databases.items()):
        for source in sorted(db.members):
            if restrict is not None and source not in restrict:
                continue
            dist, first_hops = _dijkstra(db, source)
            distances[(area, source)] = dist
            all_first_hops[(area, source)] = first_hops
            device = snapshot.device(source)
            own_prefixes = {
                iface.prefix
                for iface in device.interfaces.values()
                if iface.prefix is not None
            }
            for advertiser in sorted(db.prefixes):
                if advertiser == source or advertiser not in dist:
                    continue
                for prefix, stub_cost in db.prefixes[advertiser]:
                    if prefix in own_prefixes:
                        if prov.enabled():
                            prov.route_event(
                                source, prefix, "ospf", "suppressed",
                                f"advertisement from {advertiser} for a "
                                "directly connected prefix: connected wins",
                                neighbor=advertiser,
                            )
                        continue  # connected beats OSPF
                    total = dist[advertiser] + stub_cost
                    for edge in first_hops[advertiser]:
                        routes[source].append(
                            OspfRoute(
                                prefix=prefix,
                                cost=total,
                                area=area,
                                next_hop_ip=edge.head_ip,
                                next_hop_interface=edge.tail.interface,
                                route_type=OspfRouteType.INTRA_AREA,
                            )
                        )

    _add_inter_area_routes(
        snapshot, databases, distances, all_first_hops, routes, restrict
    )
    return OspfComputation(
        routes=routes,
        distances=distances,
        first_hops=all_first_hops,
        databases=databases,
    )


def _area_border_routers(databases: Dict[int, _AreaDatabase]) -> Set[str]:
    """Routers present in area 0 and at least one other area."""
    if 0 not in databases:
        return set()
    backbone = databases[0].members
    others: Set[str] = set()
    for area, db in databases.items():
        if area != 0:
            others |= db.members
    return backbone & others


def _add_inter_area_routes(
    snapshot, databases, distances, first_hops, routes, restrict=None
):
    """Propagate prefixes between areas through area-0 ABRs.

    For a router R in area A and a prefix P known in area B (≠ A), the
    route goes through an ABR of area A: cost = dist_A(R, ABR) +
    dist_{B via backbone}(ABR, P). We implement the standard two-level
    hierarchy: leaf areas exchange only through the backbone.
    """
    abrs = _area_border_routers(databases)
    if not abrs:
        return
    # Best known cost from each ABR to each prefix (intra-area costs,
    # through any area the ABR participates in). Under a restricted run,
    # ABRs outside the restricted components have no SPF results — and
    # no restricted router can route through them (different component),
    # so skipping them loses nothing.
    abr_prefix_cost: Dict[str, Dict[Prefix, int]] = {abr: {} for abr in abrs}
    for area, db in databases.items():
        for abr in abrs & db.members:
            dist = distances.get((area, abr))
            if dist is None:
                continue
            for advertiser, prefix_list in db.prefixes.items():
                if advertiser == abr:
                    base = 0
                elif advertiser in dist:
                    base = dist[advertiser]
                else:
                    continue
                for prefix, stub_cost in prefix_list:
                    total = base + stub_cost
                    best = abr_prefix_cost[abr].get(prefix)
                    if best is None or total < best:
                        abr_prefix_cost[abr][prefix] = total
    # Backbone transit: summaries propagate between ABRs through area 0
    # (standard OSPF: inter-area traffic crosses the backbone exactly
    # once, so one relaxation over ABR pairs with area-0 distances and
    # intra-area summary costs is exact).
    intra_summary = {abr: dict(costs) for abr, costs in abr_prefix_cost.items()}
    for abr_a in abrs:
        dist0 = distances.get((0, abr_a))
        if dist0 is None:
            continue
        for abr_b in abrs:
            if abr_b == abr_a or abr_b not in dist0:
                continue
            transit = dist0[abr_b]
            for prefix, cost_b in intra_summary[abr_b].items():
                candidate = transit + cost_b
                best = abr_prefix_cost[abr_a].get(prefix)
                if best is None or candidate < best:
                    abr_prefix_cost[abr_a][prefix] = candidate
    # Each router reaches remote prefixes via ABRs of its own areas.
    for area, db in sorted(databases.items()):
        for source in sorted(db.members):
            if restrict is not None and source not in restrict:
                continue
            device = snapshot.device(source)
            dist = distances[(area, source)]
            hops = first_hops[(area, source)]
            local_prefixes = {
                route.prefix for route in routes[source]
            } | {
                iface.prefix
                for iface in device.interfaces.values()
                if iface.prefix is not None
            }
            candidates: Dict[Prefix, Tuple[int, List[Layer3Edge]]] = {}
            for abr in sorted(abrs):
                if abr == source or abr not in dist:
                    continue
                for prefix, abr_cost in abr_prefix_cost[abr].items():
                    if prefix in local_prefixes:
                        continue
                    total = dist[abr] + abr_cost
                    current = candidates.get(prefix)
                    if current is None or total < current[0]:
                        candidates[prefix] = (total, hops[abr])
                    elif total == current[0]:
                        merged = {
                            (h.tail, h.head): h for h in current[1] + hops[abr]
                        }
                        candidates[prefix] = (
                            total,
                            [merged[k] for k in sorted(merged)],
                        )
            for prefix, (total, edges) in sorted(candidates.items()):
                for edge in edges:
                    routes[source].append(
                        OspfRoute(
                            prefix=prefix,
                            cost=total,
                            area=area,
                            next_hop_ip=edge.head_ip,
                            next_hop_interface=edge.tail.interface,
                            route_type=OspfRouteType.INTER_AREA,
                        )
                    )


def compute_ospf_externals(
    snapshot: Snapshot,
    computation: OspfComputation,
    redistributed: Dict[str, List[Tuple[Prefix, int]]],
) -> Dict[str, List[OspfRoute]]:
    """Type-2 external routes for redistributed prefixes.

    ``redistributed`` maps ASBR hostname to (prefix, metric) pairs. The
    E2 metric does not accumulate; distance to the ASBR breaks ties.
    """
    externals: Dict[str, List[OspfRoute]] = {
        hostname: [] for hostname in snapshot.hostnames()
    }
    # Group each source's area memberships so multi-area routers merge
    # candidates across areas instead of duplicating routes per area.
    areas_of: Dict[str, List[int]] = {}
    for area, source in computation.distances:
        areas_of.setdefault(source, []).append(area)
    abrs = _area_border_routers(computation.databases)
    # Hierarchical ABR -> ASBR distances: intra-area where they share an
    # area, else once across the backbone via another ABR (type-4-style
    # ASBR summaries).
    abr_to_asbr: Dict[str, Dict[str, int]] = {abr: {} for abr in abrs}
    for abr in abrs:
        for area in areas_of.get(abr, []):
            dist = computation.distances[(area, abr)]
            for asbr in redistributed:
                if asbr == abr:
                    abr_to_asbr[abr][asbr] = 0
                elif asbr in dist:
                    current = abr_to_asbr[abr].get(asbr)
                    if current is None or dist[asbr] < current:
                        abr_to_asbr[abr][asbr] = dist[asbr]
    intra_asbr = {abr: dict(costs) for abr, costs in abr_to_asbr.items()}
    for abr_a in abrs:
        dist0 = computation.distances.get((0, abr_a))
        if dist0 is None:
            continue
        for abr_b in abrs:
            if abr_b == abr_a or abr_b not in dist0:
                continue
            for asbr, cost_b in intra_asbr[abr_b].items():
                candidate = dist0[abr_b] + cost_b
                current = abr_to_asbr[abr_a].get(asbr)
                if current is None or candidate < current:
                    abr_to_asbr[abr_a][asbr] = candidate

    for source, areas in sorted(areas_of.items()):
        device = snapshot.device(source)
        local_prefixes = {
            iface.prefix
            for iface in device.interfaces.values()
            if iface.prefix is not None
        }
        # prefix -> (metric, asbr_dist, area, edges)
        best: Dict[Prefix, Tuple[int, int, int, List[Layer3Edge]]] = {}

        def consider(prefix, metric, asbr_dist, area, edges):
            key = (metric, asbr_dist)
            current = best.get(prefix)
            if current is None or key < (current[0], current[1]):
                best[prefix] = (metric, asbr_dist, area, list(edges))
            elif key == (current[0], current[1]):
                merged = {(h.tail, h.head): h for h in current[3] + list(edges)}
                best[prefix] = (
                    metric, asbr_dist, current[2],
                    [merged[k] for k in sorted(merged)],
                )

        for area in sorted(areas):
            dist = computation.distances[(area, source)]
            hops = computation.first_hops[(area, source)]
            for asbr, prefix_list in sorted(redistributed.items()):
                if asbr == source:
                    continue
                if asbr in dist:
                    # ASBR in the same area: direct intra-area path.
                    for prefix, metric in prefix_list:
                        if prefix in local_prefixes:
                            continue
                        consider(prefix, metric, dist[asbr], area, hops[asbr])
                    continue
                # ASBR elsewhere: go through this area's ABRs.
                for abr in sorted(abrs):
                    if abr == source or abr not in dist:
                        continue
                    via = abr_to_asbr.get(abr, {}).get(asbr)
                    if via is None:
                        continue
                    for prefix, metric in prefix_list:
                        if prefix in local_prefixes:
                            continue
                        consider(
                            prefix, metric, dist[abr] + via, area, hops[abr]
                        )
        for prefix, (metric, _asbr_dist, area, edges) in sorted(best.items()):
            for edge in edges:
                externals[source].append(
                    OspfRoute(
                        prefix=prefix,
                        cost=metric,
                        area=area,
                        next_hop_ip=edge.head_ip,
                        next_hop_interface=edge.tail.interface,
                        route_type=OspfRouteType.EXTERNAL_2,
                    )
                )
    return externals
