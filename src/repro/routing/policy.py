"""Routing-policy (route-map) evaluation.

This is the imperative replacement for what Datalog could not express
well (Lesson 1: "route maps can use regular expressions and
arithmetic"). A route map is evaluated clause by clause against a
mutable working copy of a route; the first clause whose matches all hold
decides permit (apply the set clauses) or deny.

The *long tail* of undocumented vendor semantics (Lesson 3) is made
explicit and configurable through :class:`PolicySemantics` — e.g. "what
should happen to incoming routing announcements when a BGP neighbor is
configured to use a route map that is not defined anywhere?". The
fidelity labs (§4.3.1) inject deviations by flipping these knobs and
checking the model against collected ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Set, Tuple

from repro import obs
from repro.config.model import (
    Action,
    Device,
    MatchKind,
    Protocol,
    RouteMap,
    SetKind,
)
from repro.hdr.ip import Ip, Prefix
from repro.routing.route import Origin


@dataclass
class PolicySemantics:
    """Model decisions for under-documented situations (Lesson 3)."""

    #: An applied route map that is not defined: permit everything
    #: unchanged (True) or drop everything (False).
    undefined_route_map_permits: bool = True
    #: A `match prefix-list NAME` where NAME is undefined: treat the
    #: match as failing (True) or as passing (False).
    undefined_prefix_list_fails_match: bool = True
    #: A route-map clause with no match statements matches everything.
    empty_clause_matches_all: bool = True


DEFAULT_SEMANTICS = PolicySemantics()


@dataclass
class PolicyRoute:
    """The mutable route view a policy operates on."""

    prefix: Prefix
    next_hop_ip: Optional[Ip] = None
    as_path: Tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP
    communities: Set[str] = field(default_factory=set)
    weight: int = 0
    tag: int = 0
    source_protocol: Optional[Protocol] = None

    def copy(self) -> "PolicyRoute":
        duplicate = replace(self)
        duplicate.communities = set(self.communities)
        return duplicate


@dataclass
class PolicyResult:
    """Outcome of a policy evaluation, with the trace used for
    counterexample annotation (Stage 4).

    ``matched_clause`` is the sequence number of the deciding route-map
    clause (None when no policy applied, the policy was undefined, or no
    clause matched) — the provenance layer records it so derivation
    trees can point at the exact configuration clause."""

    permitted: bool
    route: Optional[PolicyRoute]
    trace: List[str] = field(default_factory=list)
    matched_clause: Optional[int] = None


def apply_route_map(
    device: Device,
    route_map_name: Optional[str],
    route: PolicyRoute,
    semantics: PolicySemantics = DEFAULT_SEMANTICS,
) -> PolicyResult:
    """Evaluate a named route map of ``device`` against ``route``.

    ``route_map_name`` of ``None`` (no policy applied) permits the route
    unchanged, matching router behaviour.
    """
    if route_map_name is None:
        return PolicyResult(True, route.copy(), ["no policy: permit"])
    route_map = device.route_maps.get(route_map_name)
    if route_map is None:
        permitted = semantics.undefined_route_map_permits
        trace = [
            f"route-map {route_map_name} undefined: "
            + ("permit (model default)" if permitted else "deny")
        ]
        return PolicyResult(permitted, route.copy() if permitted else None, trace)
    return _evaluate(device, route_map, route, semantics)


def _evaluate(
    device: Device,
    route_map: RouteMap,
    route: PolicyRoute,
    semantics: PolicySemantics,
) -> PolicyResult:
    trace: List[str] = []
    for clause in route_map.sorted_clauses():
        if not _clause_matches(device, clause, route, semantics, trace):
            continue
        if obs.active():
            obs.touch(
                "route_map_clause", device.hostname, route_map.name, clause.seq
            )
        label = f"route-map {route_map.name} clause {clause.seq}"
        if clause.action is Action.DENY:
            trace.append(f"{label}: deny")
            return PolicyResult(False, None, trace, matched_clause=clause.seq)
        transformed = route.copy()
        for set_clause in clause.sets:
            _apply_set(transformed, set_clause, trace)
        trace.append(f"{label}: permit")
        return PolicyResult(True, transformed, trace, matched_clause=clause.seq)
    trace.append(f"route-map {route_map.name}: no clause matched, implicit deny")
    return PolicyResult(False, None, trace)


def _clause_matches(device, clause, route, semantics, trace) -> bool:
    if not clause.matches:
        return semantics.empty_clause_matches_all
    for match in clause.matches:
        if not _match_one(device, match, route, semantics):
            return False
    return True


def _match_one(device, match, route: PolicyRoute, semantics) -> bool:
    if match.kind is MatchKind.PREFIX_LIST:
        plist = device.prefix_lists.get(match.value)
        if plist is None:
            return not semantics.undefined_prefix_list_fails_match
        return plist.permits(route.prefix)
    if match.kind is MatchKind.COMMUNITY:
        clist = device.community_lists.get(match.value)
        if clist is None:
            return False
        return clist.permits(sorted(route.communities))
    if match.kind is MatchKind.AS_PATH:
        alist = device.as_path_lists.get(match.value)
        if alist is None:
            return False
        return alist.permits(route.as_path)
    if match.kind is MatchKind.TAG:
        return route.tag == int(match.value)
    if match.kind is MatchKind.METRIC:
        return route.med == int(match.value)
    if match.kind is MatchKind.PROTOCOL:
        return (
            route.source_protocol is not None
            and route.source_protocol.value.startswith(match.value)
        )
    return False


def _apply_set(route: PolicyRoute, set_clause, trace: List[str]) -> None:
    kind, value = set_clause.kind, set_clause.value
    if kind is SetKind.LOCAL_PREF:
        route.local_pref = int(value)
    elif kind is SetKind.METRIC:
        route.med = int(value)
    elif kind is SetKind.COMMUNITY:
        route.communities = set(value.split())
    elif kind is SetKind.COMMUNITY_ADDITIVE:
        route.communities |= set(value.split())
    elif kind is SetKind.AS_PATH_PREPEND:
        prepend = tuple(int(asn) for asn in value.split())
        route.as_path = prepend + route.as_path
    elif kind is SetKind.NEXT_HOP:
        route.next_hop_ip = Ip(value)
    elif kind is SetKind.TAG:
        route.tag = int(value)
    elif kind is SetKind.WEIGHT:
        route.weight = int(value)
    trace.append(f"set {kind.value} {value}")
