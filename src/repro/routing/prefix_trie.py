"""A binary trie over IPv4 prefixes for longest-prefix matching.

Used by RIBs (resolve a next hop), FIBs (forward a concrete packet), and
the BDD dataflow-graph builder (enumerate entries with their "shadowed by
longer prefixes" structure).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.hdr.ip import Ip, Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "values")

    def __init__(self):
        self.children: List[Optional[_Node[V]]] = [None, None]
        self.values: Optional[List[V]] = None  # None = no prefix ends here


class PrefixTrie(Generic[V]):
    """Maps prefixes to lists of values with longest-prefix-match lookup."""

    def __init__(self):
        self._root: _Node[V] = _Node()
        self._len = 0

    def __len__(self) -> int:
        """Number of distinct prefixes present."""
        return self._len

    def add(self, prefix: Prefix, value: V) -> None:
        """Append ``value`` under ``prefix`` (duplicates allowed)."""
        node = self._walk_create(prefix)
        if node.values is None:
            node.values = []
            self._len += 1
        node.values.append(value)

    def replace(self, prefix: Prefix, values: List[V]) -> None:
        """Replace all values under ``prefix`` (empty list removes it)."""
        if not values:
            self.remove_prefix(prefix)
            return
        node = self._walk_create(prefix)
        if node.values is None:
            self._len += 1
        node.values = list(values)

    def remove(self, prefix: Prefix, value: V) -> bool:
        """Remove one occurrence of ``value`` under ``prefix``.

        Returns True if it was present.
        """
        node = self._walk(prefix)
        if node is None or node.values is None:
            return False
        try:
            node.values.remove(value)
        except ValueError:
            return False
        if not node.values:
            node.values = None
            self._len -= 1
        return True

    def remove_prefix(self, prefix: Prefix) -> bool:
        """Remove the prefix and all its values."""
        node = self._walk(prefix)
        if node is None or node.values is None:
            return False
        node.values = None
        self._len -= 1
        return True

    def get(self, prefix: Prefix) -> List[V]:
        """Exact-match lookup (no LPM)."""
        node = self._walk(prefix)
        if node is None or node.values is None:
            return []
        return list(node.values)

    def longest_match(self, ip: "Ip | int") -> Optional[Tuple[Prefix, List[V]]]:
        """Longest-prefix match for an address.

        Returns ``(matched_prefix, values)`` or ``None``.
        """
        value = ip.value if isinstance(ip, Ip) else ip
        node = self._root
        best: Optional[Tuple[int, int, List[V]]] = None
        depth = 0
        network = 0
        while node is not None:
            if node.values is not None:
                best = (depth, network, list(node.values))
            if depth == 32:
                break
            bit = (value >> (31 - depth)) & 1
            node = node.children[bit]
            network = (network << 1) | bit
            depth += 1
        if best is None:
            return None
        length, network, values = best
        return Prefix(network << (32 - length) if length else 0, length), values

    def items(self) -> Iterator[Tuple[Prefix, List[V]]]:
        """Iterate (prefix, values) pairs in lexicographic prefix order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        collected: List[Tuple[Prefix, List[V]]] = []
        while stack:
            node, network, depth = stack.pop()
            if node.values is not None:
                prefix = Prefix(network << (32 - depth) if depth else 0, depth)
                collected.append((prefix, list(node.values)))
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (network << 1) | bit, depth + 1))
        collected.sort(key=lambda pair: pair[0])
        yield from collected

    def covering_prefixes(self, prefix: Prefix) -> List[Prefix]:
        """All stored prefixes that contain ``prefix`` (themselves
        included), shortest first."""
        result: List[Prefix] = []
        node = self._root
        value = prefix.network.value
        for depth in range(prefix.length + 1):
            if node.values is not None:
                result.append(Prefix(value, depth))
            if depth == prefix.length:
                break
            bit = (value >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
        return result

    def covered_prefixes(self, prefix: Prefix) -> List[Prefix]:
        """All stored prefixes strictly longer than and inside ``prefix``."""
        node = self._walk(prefix, create=False, allow_partial=True)
        if node is None:
            return []
        result: List[Prefix] = []
        start_network = (
            prefix.network.value >> (32 - prefix.length) if prefix.length else 0
        )
        stack = [(node, start_network, prefix.length)]
        while stack:
            current, network, depth = stack.pop()
            # Exclude the node at `prefix` itself (depth == prefix.length).
            if current.values is not None and depth > prefix.length:
                result.append(Prefix(network << (32 - depth) if depth else 0, depth))
            if depth == 32:
                continue
            for bit in (0, 1):
                child = current.children[bit]
                if child is not None:
                    stack.append((child, (network << 1) | bit, depth + 1))
        result.sort()
        return result

    # -- internals -------------------------------------------------------

    def _walk_create(self, prefix: Prefix) -> _Node[V]:
        return self._walk(prefix, create=True)

    def _walk(
        self, prefix: Prefix, create: bool = False, allow_partial: bool = False
    ) -> Optional[_Node[V]]:
        node = self._root
        value = prefix.network.value
        for depth in range(prefix.length):
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if create:
                    child = _Node()
                    node.children[bit] = child
                elif allow_partial:
                    return None
                else:
                    return None
            node = child
        return node
