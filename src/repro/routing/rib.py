"""RIBs and RIB deltas (§4.1.3).

The engine's memory discipline follows the paper's hybrid approach: each
RIB keeps its active routes plus a :class:`RibDelta` for the current and
previous iteration; there are no per-neighbor message queues. Receivers
pull deltas directly and run export + import policy + merge in one step,
so peak memory stays near "the number of routes actually accepted by
routers".

:class:`Rib` is the generic best-route table used for the main RIB and
the protocol RIBs of OSPF/static/connected routes; BGP has its own RIB
(:mod:`repro.routing.bgp`) because its decision process needs per-peer
candidate tracking and logical clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.hdr.ip import Ip, Prefix
from repro.provenance import record as prov
from repro.routing.prefix_trie import PrefixTrie
from repro.routing.route import BgpRoute, ConnectedRoute, OspfRoute, StaticRouteEntry


@dataclass
class RibDelta:
    """Routes that became best (`added`) and stopped being best
    (`removed`) since the delta was last cleared."""

    added: List[object] = field(default_factory=list)
    removed: List[object] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed

    def extend(self, other: "RibDelta") -> None:
        """Fold another delta into this one, cancelling add/remove pairs
        so a route added then removed leaves no trace."""
        for route in other.added:
            if route in self.removed:
                self.removed.remove(route)
            else:
                self.added.append(route)
        for route in other.removed:
            if route in self.added:
                self.added.remove(route)
            else:
                self.removed.append(route)

    def clear(self) -> "RibDelta":
        """Return a copy and empty this delta."""
        snapshot = RibDelta(list(self.added), list(self.removed))
        self.added.clear()
        self.removed.clear()
        return snapshot


def route_sort_key(route) -> Tuple:
    """Deterministic total order over routes — used to keep ECMP sets and
    answer rows stable across runs (paper §4.1.2: "consistent results
    across simulations")."""
    next_hop = getattr(route, "next_hop_ip", None)
    interface = getattr(route, "next_hop_interface", None) or getattr(
        route, "interface", None
    )
    return (
        str(route.prefix),
        route.protocol.value,
        next_hop.value if next_hop is not None else -1,
        interface or "",
        repr(route),
    )


def main_rib_preference(route) -> Tuple[int, int]:
    """Preference key for cross-protocol best-route selection in the main
    RIB: administrative distance first, then the protocol metric. Lower
    is better; ties form an ECMP set."""
    if isinstance(route, OspfRoute):
        return (route.admin_distance, route.cost)
    if isinstance(route, BgpRoute):
        return (route.admin_distance, 0)
    if isinstance(route, (ConnectedRoute, StaticRouteEntry)):
        return (route.admin_distance, 0)
    return (getattr(route, "admin_distance", 255), 0)


class Rib:
    """A best-route table with pluggable preference and delta tracking.

    ``owner`` names the hosting node for provenance recording: when set
    and :mod:`repro.provenance` is recording, every merge/withdraw logs
    whether the candidate became best or was suppressed (and by what) —
    the "main-rib" outcome half of a route's derivation trace.
    """

    def __init__(
        self,
        preference: Callable[[object], Tuple] = main_rib_preference,
        owner: Optional[str] = None,
    ):
        self._preference = preference
        self._candidates: Dict[Prefix, List[object]] = {}
        self._best: PrefixTrie = PrefixTrie()
        self.delta = RibDelta()
        self.owner = owner

    # -- mutation ---------------------------------------------------------

    def merge(self, route) -> bool:
        """Add a candidate route. Returns True if the best set changed."""
        candidates = self._candidates.setdefault(route.prefix, [])
        if route in candidates:
            return False
        candidates.append(route)
        changed = self._reselect(route.prefix)
        if prov.enabled() and self.owner is not None:
            self._record_merge_outcome(route)
        return changed

    def _record_merge_outcome(self, route) -> None:
        best = self._best.get(route.prefix)
        if route in best:
            detail = f"{route.describe()} selected as best"
            if len(best) > 1:
                detail += f" (ECMP set of {len(best)})"
            prov.route_event(
                self.owner, route.prefix, "main-rib", "best", detail
            )
        else:
            incumbent = best[0] if best else None
            prov.route_event(
                self.owner,
                route.prefix,
                "main-rib",
                "suppressed",
                f"{route.describe()} lost best selection to "
                f"{incumbent.describe() if incumbent else 'nothing'} "
                f"(preference {self._preference(route)} vs "
                f"{self._preference(incumbent) if incumbent else '-'})",
            )

    def withdraw(self, route) -> bool:
        """Remove a candidate route. Returns True if the best set changed."""
        candidates = self._candidates.get(route.prefix)
        if not candidates or route not in candidates:
            return False
        candidates.remove(route)
        if not candidates:
            del self._candidates[route.prefix]
        changed = self._reselect(route.prefix)
        if prov.enabled() and self.owner is not None:
            prov.route_event(
                self.owner,
                route.prefix,
                "main-rib",
                "withdrawn",
                f"{route.describe()} withdrawn"
                + (" (best set changed)" if changed else ""),
            )
        return changed

    def clear_prefix(self, prefix: Prefix) -> bool:
        """Drop all candidates for a prefix."""
        if prefix not in self._candidates:
            return False
        del self._candidates[prefix]
        return self._reselect(prefix)

    def _reselect(self, prefix: Prefix) -> bool:
        old_best = self._best.get(prefix)
        candidates = self._candidates.get(prefix, [])
        if candidates:
            best_key = min(self._preference(r) for r in candidates)
            new_best = sorted(
                (r for r in candidates if self._preference(r) == best_key),
                key=route_sort_key,
            )
        else:
            new_best = []
        if new_best == old_best:
            return False
        self._best.replace(prefix, new_best)
        for route in old_best:
            if route not in new_best:
                self.delta.removed.append(route)
        for route in new_best:
            if route not in old_best:
                self.delta.added.append(route)
        return True

    # -- queries ------------------------------------------------------------

    def best_routes(self, prefix: Prefix) -> List[object]:
        """The ECMP set of best routes for an exact prefix."""
        return self._best.get(prefix)

    def longest_match(self, ip: "Ip | int") -> Optional[Tuple[Prefix, List[object]]]:
        """LPM over best routes."""
        return self._best.longest_match(ip)

    def routes(self) -> Iterator[object]:
        """All best routes, in deterministic prefix order."""
        for _prefix, routes in self._best.items():
            yield from routes

    def prefixes(self) -> List[Prefix]:
        return [prefix for prefix, _ in self._best.items()]

    def all_candidates(self) -> Iterator[object]:
        """Every candidate route, including non-best ones."""
        for routes in self._candidates.values():
            yield from routes

    def __len__(self) -> int:
        """Number of best routes across all prefixes."""
        return sum(len(routes) for _, routes in self._best.items())

    def take_delta(self) -> RibDelta:
        """Snapshot-and-clear the pending delta (the per-iteration pull)."""
        return self.delta.clear()
