"""Route representations and attribute interning (§4.1.3).

The paper's memory optimization: "the number of unique values for routing
attributes is orders of magnitude lower than the total number of routes.
Hence, we intern IP addresses, IP prefixes, BGP communities, and more
complex routing attributes, such as BGP AS paths and BGP community sets".
Further, "moving 13 properties of a BGP route into a single interned
object" exploits that attribute *combinations* are few (10–20x fewer than
routes) and cuts memory roughly in half.

We reproduce both layers here:

* :class:`InternPool` — a generic hash-consing pool with hit statistics
  (consumed by the interning ablation benchmark);
* :class:`BgpAttributes` — the single interned bundle of BGP route
  properties, so a :class:`BgpRoute` is just (prefix, next hop,
  attributes-reference);
* route value classes for every protocol the control plane models.

Routes are immutable values: equality/hashing is structural, which the
RIB-delta machinery relies on. All route classes are slotted
(``dataclass(slots=True)``): routes are the hottest per-object
allocation in data-plane generation, and dropping the per-instance
``__dict__`` cuts each route by roughly 50–100 bytes (the measured
delta is recorded in ``BENCH_table2.json`` by the benchmark driver).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.config.model import Protocol
from repro.hdr.ip import Ip, Prefix

T = TypeVar("T")


class InternPool(Generic[T]):
    """Hash-consing pool: ``intern(x)`` returns the canonical instance
    equal to ``x``. Tracks request/unique counts for memory accounting."""

    def __init__(self, name: str = ""):
        self.name = name
        self._pool: Dict[T, T] = {}
        self.requests = 0

    def intern(self, value: T) -> T:
        self.requests += 1
        canonical = self._pool.get(value)
        if canonical is None:
            self._pool[value] = value
            return value
        return canonical

    @property
    def unique(self) -> int:
        return len(self._pool)

    def stats(self) -> Dict[str, int]:
        return {"requests": self.requests, "unique": self.unique}

    def clear(self) -> None:
        self._pool.clear()
        self.requests = 0


# Administrative distances (vendor-classic defaults).
AD_CONNECTED = 0
AD_STATIC = 1
AD_EBGP = 20
AD_OSPF = 110
AD_OSPF_E2 = 110
AD_IBGP = 200


class Origin(enum.IntEnum):
    """BGP origin attribute; lower is preferred."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True, slots=True)
class ConnectedRoute:
    prefix: Prefix
    interface: str
    protocol: Protocol = Protocol.CONNECTED
    admin_distance: int = AD_CONNECTED
    next_hop_ip: Optional[Ip] = None  # always None: directly attached

    def describe(self) -> str:
        return f"connected {self.prefix} via {self.interface}"


@dataclass(frozen=True, slots=True)
class StaticRouteEntry:
    prefix: Prefix
    next_hop_ip: Optional[Ip]
    next_hop_interface: Optional[str]
    admin_distance: int = AD_STATIC
    tag: int = 0
    protocol: Protocol = Protocol.STATIC

    @property
    def is_null_routed(self) -> bool:
        iface = (self.next_hop_interface or "").lower()
        return iface.startswith("null") or iface == "discard"

    def describe(self) -> str:
        target = self.next_hop_ip or self.next_hop_interface
        return f"static {self.prefix} -> {target} [{self.admin_distance}]"


class OspfRouteType(enum.IntEnum):
    """Preference order among OSPF route types: intra < inter < external."""

    INTRA_AREA = 0
    INTER_AREA = 1
    EXTERNAL_2 = 2


@dataclass(frozen=True, slots=True)
class OspfRoute:
    prefix: Prefix
    cost: int
    area: int
    next_hop_ip: Optional[Ip]
    next_hop_interface: str
    route_type: OspfRouteType = OspfRouteType.INTRA_AREA
    admin_distance: int = AD_OSPF

    @property
    def protocol(self) -> Protocol:
        return {
            OspfRouteType.INTRA_AREA: Protocol.OSPF,
            OspfRouteType.INTER_AREA: Protocol.OSPF_IA,
            OspfRouteType.EXTERNAL_2: Protocol.OSPF_E2,
        }[self.route_type]

    def describe(self) -> str:
        return (
            f"{self.protocol.value} {self.prefix} cost {self.cost} "
            f"via {self.next_hop_interface}"
        )


@dataclass(frozen=True, slots=True)
class BgpAttributes:
    """The interned bundle of BGP route properties (§4.1.3).

    Everything here is shared among the typically many routes that carry
    identical attribute combinations (e.g. multipath across DC tiers).
    """

    as_path: Tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP
    communities: Tuple[str, ...] = ()
    weight: int = 0
    originator_id: Optional[Ip] = None
    cluster_list: Tuple[Ip, ...] = ()
    admin_distance: int = AD_EBGP
    from_ibgp: bool = False
    source_protocol: Optional[Protocol] = None  # set when redistributed
    tag: int = 0
    atomic_aggregate: bool = False

    @staticmethod
    def make(**kwargs) -> "BgpAttributes":
        """Construct and intern an attribute bundle."""
        return _BGP_ATTR_POOL.intern(BgpAttributes(**kwargs))

    def with_changes(self, **kwargs) -> "BgpAttributes":
        """A (re-interned) copy with some properties replaced."""
        from dataclasses import replace

        return _BGP_ATTR_POOL.intern(replace(self, **kwargs))


_BGP_ATTR_POOL: InternPool[BgpAttributes] = InternPool("bgp-attributes")
_AS_PATH_POOL: InternPool[Tuple[int, ...]] = InternPool("as-paths")
_COMMUNITY_SET_POOL: InternPool[Tuple[str, ...]] = InternPool("community-sets")


def intern_as_path(path: Tuple[int, ...]) -> Tuple[int, ...]:
    """Intern an AS path tuple."""
    return _AS_PATH_POOL.intern(tuple(path))


def intern_communities(communities: Tuple[str, ...]) -> Tuple[str, ...]:
    """Intern a community set (kept sorted for canonical equality)."""
    return _COMMUNITY_SET_POOL.intern(tuple(sorted(set(communities))))


def interning_stats() -> Dict[str, Dict[str, int]]:
    """Statistics of all interning pools (for the memory ablation)."""
    return {
        pool.name: pool.stats()
        for pool in (_BGP_ATTR_POOL, _AS_PATH_POOL, _COMMUNITY_SET_POOL)
    }


def reset_interning() -> None:
    """Clear all pools (test isolation and ablation baselines)."""
    _BGP_ATTR_POOL.clear()
    _AS_PATH_POOL.clear()
    _COMMUNITY_SET_POOL.clear()


@dataclass(frozen=True, slots=True)
class BgpRoute:
    """A BGP route: prefix + next hop + a shared attribute bundle."""

    prefix: Prefix
    next_hop_ip: Ip
    attributes: BgpAttributes
    # The peer the route was learned from (None for locally originated).
    received_from: Optional[Ip] = None

    @property
    def protocol(self) -> Protocol:
        return Protocol.IBGP if self.attributes.from_ibgp else Protocol.BGP

    @property
    def admin_distance(self) -> int:
        return self.attributes.admin_distance

    @property
    def as_path(self) -> Tuple[int, ...]:
        return self.attributes.as_path

    @property
    def local_pref(self) -> int:
        return self.attributes.local_pref

    @property
    def communities(self) -> Tuple[str, ...]:
        return self.attributes.communities

    def describe(self) -> str:
        path = " ".join(str(asn) for asn in self.attributes.as_path) or "local"
        return (
            f"{self.protocol.value} {self.prefix} via {self.next_hop_ip} "
            f"lp {self.attributes.local_pref} path [{path}]"
        )


#: Any route the main RIB can hold.
AnyRoute = (ConnectedRoute, StaticRouteEntry, OspfRoute, BgpRoute)


def route_protocol(route) -> Protocol:
    """Protocol of any route object."""
    return route.protocol


def estimate_route_memory(num_routes: int, unique_bundles: int, interned: bool) -> int:
    """Rough memory model for the interning ablation (bytes).

    Per the paper, moving 13 properties into a single interned object
    saves 88 bytes per route; the bundle itself costs ~184 bytes but is
    shared across 10–20x routes.
    """
    bundle_bytes = 184
    route_with_inline_attrs = 88 + 96  # attributes inline + fixed part
    route_with_ref = 96  # fixed part + one reference
    if not interned:
        return num_routes * route_with_inline_attrs + num_routes * bundle_bytes
    return num_routes * route_with_ref + unique_bundles * bundle_bytes
