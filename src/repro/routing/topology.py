"""Layer-3 topology inference.

Batfish infers adjacency from configuration alone: two enabled,
addressed interfaces are L3-adjacent when they share an IP subnet. This
also yields the "do we have the remote end of the link?" signal used by
the usability heuristics for identifying host-facing interfaces
(§4.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.config.model import Snapshot
from repro.hdr.ip import Ip, Prefix


@dataclass(frozen=True, order=True)
class InterfaceId:
    """A (device, interface) pair — the unit of topology and of query
    locations."""

    node: str
    interface: str

    def __str__(self) -> str:
        return f"{self.node}[{self.interface}]"


@dataclass(frozen=True)
class Layer3Edge:
    """A directed L3 adjacency from ``tail`` to ``head``."""

    tail: InterfaceId
    head: InterfaceId
    tail_ip: Ip
    head_ip: Ip

    def reversed(self) -> "Layer3Edge":
        return Layer3Edge(self.head, self.tail, self.head_ip, self.tail_ip)


class Layer3Topology:
    """The set of inferred L3 adjacencies with lookup indices."""

    def __init__(self, edges: List[Layer3Edge]):
        self._edges = sorted(edges, key=lambda e: (e.tail, e.head))
        self._by_tail: Dict[InterfaceId, List[Layer3Edge]] = {}
        self._by_node: Dict[str, List[Layer3Edge]] = {}
        for edge in self._edges:
            self._by_tail.setdefault(edge.tail, []).append(edge)
            self._by_node.setdefault(edge.tail.node, []).append(edge)

    def edges(self) -> List[Layer3Edge]:
        return list(self._edges)

    def edges_from(self, interface: InterfaceId) -> List[Layer3Edge]:
        return list(self._by_tail.get(interface, []))

    def node_edges(self, node: str) -> List[Layer3Edge]:
        """Edges whose tail is on ``node``."""
        return list(self._by_node.get(node, []))

    def neighbors(self, node: str) -> List[str]:
        return sorted({edge.head.node for edge in self._by_node.get(node, [])})

    def has_remote_end(self, interface: InterfaceId) -> bool:
        """Whether the snapshot contains the other end of this link."""
        return bool(self._by_tail.get(interface))

    def owner_of_ip(self, ip: Ip) -> Optional[InterfaceId]:
        """The interface configured with exactly this address, if any."""
        return self._ip_owners.get(ip)

    # Populated by build_layer3_topology.
    _ip_owners: Dict[Ip, InterfaceId] = {}


def build_layer3_topology(snapshot: Snapshot) -> Layer3Topology:
    """Infer L3 edges: interfaces whose addresses lie in a shared subnet.

    Point-to-point links produce two directed edges; LAN segments with
    more than two attached interfaces produce a full mesh.
    """
    attached: Dict[Prefix, List[Tuple[InterfaceId, Ip]]] = {}
    ip_owners: Dict[Ip, InterfaceId] = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface_name, address, length in device.interface_ips():
            interface_id = InterfaceId(hostname, iface_name)
            prefix = Prefix(address, length)
            attached.setdefault(prefix, []).append((interface_id, address))
            ip_owners.setdefault(address, interface_id)
    edges: List[Layer3Edge] = []
    for prefix, members in attached.items():
        if len(members) < 2:
            continue
        for tail, tail_ip in members:
            for head, head_ip in members:
                if tail == head or tail.node == head.node:
                    continue
                edges.append(Layer3Edge(tail, head, tail_ip, head_ip))
    topology = Layer3Topology(edges)
    topology._ip_owners = ip_owners
    return topology


def duplicate_ips(
    snapshot: Snapshot, include_inactive: bool = False
) -> List[Tuple[Ip, List[InterfaceId]]]:
    """Addresses assigned to more than one interface (a Lesson 5 check).

    Administratively-shutdown interfaces are ignored by default: an
    address shared between a disabled interface and its replacement is
    routine (staged migration), not a conflict. Pass
    ``include_inactive=True`` to audit disabled interfaces too.
    """
    owners: Dict[Ip, List[InterfaceId]] = {}
    for hostname in snapshot.hostnames():
        device = snapshot.device(hostname)
        for iface_name, iface in sorted(device.interfaces.items()):
            if iface.address is None:
                continue
            if not iface.enabled and not include_inactive:
                continue
            owners.setdefault(iface.address, []).append(
                InterfaceId(hostname, iface_name)
            )
    return sorted(
        (ip, ifaces) for ip, ifaces in owners.items() if len(ifaces) > 1
    )
