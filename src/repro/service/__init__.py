"""`repro.service` — the long-running, concurrent snapshot-analysis
service (the deployment shape the paper's users actually run, §5).

The library surface stays :class:`repro.Session`; this package fronts
it for many concurrent callers:

* :class:`SnapshotStore` — named snapshots with typed errors, backed by
  the content-addressed cache so identical re-inits are free;
* :class:`JobQueue` — bounded queue + worker threads with per-job
  timeouts, cancellation, and request coalescing keyed on
  :attr:`Session.snapshot_key`;
* :class:`AnalysisService` — the stdlib HTTP JSON API plus graceful
  SIGTERM drain (``python -m repro.service`` / ``repro-service``).
"""

from repro.service.api import AnalysisService, ServiceConfig
from repro.service.errors import (
    AnalysisError,
    InvalidRequestError,
    JobNotFoundError,
    JobTimeoutError,
    NotFoundError,
    QueueFullError,
    ServiceError,
    ShuttingDownError,
    SnapshotConflictError,
    SnapshotNotFoundError,
    UnknownQuestionError,
    to_service_error,
)
from repro.service.jobs import Job, JobQueue, JobStatus
from repro.service.serialize import QUESTIONS, run_question
from repro.service.store import SnapshotRecord, SnapshotStore

__all__ = [
    "AnalysisService",
    "AnalysisError",
    "InvalidRequestError",
    "Job",
    "JobNotFoundError",
    "JobQueue",
    "JobStatus",
    "JobTimeoutError",
    "NotFoundError",
    "QUESTIONS",
    "QueueFullError",
    "ServiceConfig",
    "ServiceError",
    "ShuttingDownError",
    "SnapshotConflictError",
    "SnapshotNotFoundError",
    "SnapshotRecord",
    "SnapshotStore",
    "UnknownQuestionError",
    "run_question",
    "to_service_error",
]
